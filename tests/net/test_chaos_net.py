"""Probabilistic message-level faults inside the Network (ChaosProfile)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConnectionClosedError
from repro.net import Address, LatencyModel, Network
from repro.net.network import ChaosProfile


@pytest.fixture()
def net(rt):
    return Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0,
                                            per_kb_ms=0.0))


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_datagram_drop_probability_one_loses_everything(rt, net):
    a = net.bind_datagram(Address("hostA", 161))
    b = net.bind_datagram(Address("hostB", 161))
    net.set_chaos(ChaosProfile(datagram_drop=1.0),
                  rng=np.random.default_rng(0))

    def proc():
        for _ in range(5):
            a.send_to(Address("hostB", 161), {"op": "get"})
        return b.receive(timeout_ms=100.0)

    assert run(rt, proc) is None
    assert net.stats["dropped"] >= 5


def test_datagram_extra_delay_slows_delivery(rt, net):
    a = net.bind_datagram(Address("hostA", 161))
    b = net.bind_datagram(Address("hostB", 161))
    net.set_chaos(
        ChaosProfile(extra_delay_ms=50.0, delay_probability=1.0),
        rng=np.random.default_rng(1),
    )

    def proc():
        a.send_to(Address("hostB", 161), "ping")
        message = b.receive(timeout_ms=1_000.0)
        return message, rt.now()

    message, arrival = run(rt, proc)
    assert message is not None
    assert arrival > 1.0  # base latency alone would deliver at t=1ms


def test_stream_drop_resets_the_connection(rt, net):
    listener = net.listen(Address("server", 9))
    net.set_chaos(ChaosProfile(stream_drop=1.0),
                  rng=np.random.default_rng(2))

    def proc():
        client = net.connect("client", Address("server", 9))
        server_side = listener.accept(timeout_ms=100.0)
        net.clear_chaos()
        net.set_chaos(ChaosProfile(stream_drop=1.0),
                      rng=np.random.default_rng(2))
        client.send({"op": "ping"})
        # The dropped message becomes a TCP-style reset: both ends die.
        with pytest.raises(ConnectionClosedError):
            while True:
                client.receive(timeout_ms=50.0)
        return server_side

    run(rt, proc)
    assert net.stats["resets"] >= 1


def test_clear_chaos_restores_normal_delivery(rt, net):
    a = net.bind_datagram(Address("hostA", 161))
    b = net.bind_datagram(Address("hostB", 161))
    net.set_chaos(ChaosProfile(datagram_drop=1.0),
                  rng=np.random.default_rng(3))
    net.clear_chaos()

    def proc():
        a.send_to(Address("hostB", 161), "hello")
        return b.receive(timeout_ms=100.0)

    payload, sender = run(rt, proc)
    assert payload == "hello"


def test_chaos_drop_pattern_is_seed_deterministic(rt):
    def drops_for(seed):
        net = Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0,
                                               per_kb_ms=0.0))
        net.set_chaos(ChaosProfile(datagram_drop=0.5),
                      rng=np.random.default_rng(seed))
        return [net._chaos_drops(0.5) for _ in range(64)]

    assert drops_for(7) == drops_for(7)
    assert drops_for(7) != drops_for(8)
