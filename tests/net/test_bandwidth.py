"""Egress bandwidth contention model."""

from __future__ import annotations

import pytest

from repro.net import Address, LatencyModel, Network
from tests.conftest import run_in_sim

#: 1 KB/ms ≈ 8 Mb/s link, zero propagation latency, for easy arithmetic.
LINK = LatencyModel(base_ms=0.0, jitter_ms=0.0, per_kb_ms=0.0,
                    egress_kb_per_ms=1.0)


def test_single_message_pays_transmission_time(rt):
    net = Network(rt, latency=LINK)
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        a.send_to(Address("b", 1), b"x" * 10240)  # ~10 KB
        b.receive(timeout_ms=1000.0)
        return rt.now()

    # 10 KB at 1 KB/ms ≈ 10 ms (plus pickle overhead bytes).
    assert run_in_sim(rt, proc) == pytest.approx(10.0, rel=0.05)


def test_concurrent_sends_from_one_host_serialize(rt):
    net = Network(rt, latency=LINK)
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        for _ in range(3):
            a.send_to(Address("b", 1), b"x" * 10240)
        arrivals = []
        for _ in range(3):
            b.receive(timeout_ms=1000.0)
            arrivals.append(rt.now())
        return arrivals

    arrivals = run_in_sim(rt, proc)
    # Back-to-back transmissions: ~10, ~20, ~30 ms.
    assert arrivals[0] == pytest.approx(10.0, rel=0.1)
    assert arrivals[1] == pytest.approx(20.0, rel=0.1)
    assert arrivals[2] == pytest.approx(30.0, rel=0.1)


def test_different_hosts_do_not_contend(rt):
    net = Network(rt, latency=LINK)
    a = net.bind_datagram(Address("a", 1))
    c = net.bind_datagram(Address("c", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        a.send_to(Address("b", 1), b"x" * 10240)
        c.send_to(Address("b", 1), b"x" * 10240)
        b.receive(timeout_ms=1000.0)
        first = rt.now()
        b.receive(timeout_ms=1000.0)
        return first, rt.now()

    first, second = run_in_sim(rt, proc)
    # Independent egress links: both arrive ≈ together.
    assert second - first < 1.0


def test_bandwidth_disabled_by_default(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0,
                                           per_kb_ms=0.0))
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        a.send_to(Address("b", 1), b"x" * 102400)  # 100 KB, "free"
        b.receive(timeout_ms=100.0)
        return rt.now()

    assert run_in_sim(rt, proc) == pytest.approx(0.5)


def test_streams_share_the_host_egress(rt):
    net = Network(rt, latency=LINK)
    listener = net.listen(Address("s", 1))

    def proc():
        conn = net.connect("master", Address("s", 1))
        server = listener.accept(timeout_ms=100.0)
        conn.send(b"x" * 10240)
        conn.send(b"x" * 10240)
        server.receive(timeout_ms=1000.0)
        t1 = rt.now()
        server.receive(timeout_ms=1000.0)
        return t1, rt.now()

    t1, t2 = run_in_sim(rt, proc)
    assert t2 - t1 == pytest.approx(10.0, rel=0.1)


def test_master_egress_becomes_bottleneck_for_fanout(rt):
    """The deployment insight this model captures: a master pushing large
    task payloads to N workers serializes on its own uplink."""
    net = Network(rt, latency=LINK)
    master = net.bind_datagram(Address("master", 1))
    workers = [net.bind_datagram(Address(f"w{i}", 1)) for i in range(4)]

    def proc():
        for i in range(4):
            master.send_to(Address(f"w{i}", 1), b"x" * 10240)
        last = 0.0
        for worker in workers:
            worker.receive(timeout_ms=1000.0)
            last = max(last, rt.now())
        return last

    # 4 × 10 KB through one 1 KB/ms link ≈ 40 ms, not 10.
    assert run_in_sim(rt, proc) == pytest.approx(40.0, rel=0.1)
