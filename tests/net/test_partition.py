"""Network partition injection."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionRefusedError_
from repro.net import Address, LatencyModel, Network
from repro.snmp import HOST_RESOURCES, Mib, SnmpAgent, SnmpManager
from repro.errors import TimeoutError_
from tests.conftest import run_in_sim


@pytest.fixture()
def net(rt):
    return Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0))


def test_datagrams_to_isolated_host_vanish(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.isolate("b")
        a.send_to(Address("b", 1), "lost")
        first = b.receive(timeout_ms=20.0)
        net.heal("b")
        a.send_to(Address("b", 1), "delivered")
        second = b.receive(timeout_ms=20.0)
        return first, second[0]

    assert run_in_sim(rt, proc) == (None, "delivered")


def test_isolated_host_cannot_send_either(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.isolate("a")
        a.send_to(Address("b", 1), "x")
        return b.receive(timeout_ms=20.0)

    assert run_in_sim(rt, proc) is None
    assert net.stats["dropped"] == 1


def test_connect_to_partitioned_host_refused(rt, net):
    net.listen(Address("server", 1))

    def proc():
        net.isolate("server")
        with pytest.raises(ConnectionRefusedError_, match="partitioned"):
            net.connect("client", Address("server", 1))
        return True

    assert run_in_sim(rt, proc)


def test_established_stream_goes_silent_then_recovers(rt, net):
    listener = net.listen(Address("s", 1))

    def proc():
        client = net.connect("c", Address("s", 1))
        server = listener.accept(timeout_ms=50.0)
        client.send("before")
        assert server.receive(timeout_ms=50.0) == "before"
        net.isolate("c")
        client.send("during")            # vanishes on the wire
        lost = server.receive(timeout_ms=50.0)
        net.heal("c")
        client.send("after")
        recovered = server.receive(timeout_ms=50.0)
        return lost, recovered

    assert run_in_sim(rt, proc) == (None, "after")


def test_snmp_monitoring_sees_partition_as_timeouts(rt, net):
    """The monitoring agent's view of a partitioned worker: silence."""
    mib = Mib()
    mib.register(HOST_RESOURCES.HR_PROCESSOR_LOAD, 10)
    SnmpAgent(rt, net, "w", mib).start()
    manager = SnmpManager(rt, net, "mgr", timeout_ms=30.0, retries=1)

    def proc():
        before = manager.get_one("w", HOST_RESOURCES.HR_PROCESSOR_LOAD)
        net.isolate("w")
        with pytest.raises(TimeoutError_):
            manager.get_one("w", HOST_RESOURCES.HR_PROCESSOR_LOAD)
        net.heal("w")
        after = manager.get_one("w", HOST_RESOURCES.HR_PROCESSOR_LOAD)
        return before, after

    assert run_in_sim(rt, proc) == (10, 10)


def test_multicast_respects_partitions(rt, net):
    group = Address("224.0.0.1", 4160)
    members = [net.bind_datagram(Address(f"m{i}", 4160)) for i in range(2)]
    for m in members:
        net.join_multicast(group, m)
    sender = net.bind_datagram(Address("s", 1))

    def proc():
        net.isolate("m0")
        sender.send_to(group, "announce")
        return members[0].receive(timeout_ms=20.0), members[1].receive(timeout_ms=20.0)

    lost, received = run_in_sim(rt, proc)
    assert lost is None
    assert received[0] == "announce"


# -- directed partitions, pauses, gray failures (the nemesis kit) -----------


def test_directed_partition_is_asymmetric(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.partition("a", "b")
        a.send_to(Address("b", 1), "gone")
        lost = b.receive(timeout_ms=20.0)
        b.send_to(Address("a", 1), "back")        # reverse path still open
        reply = a.receive(timeout_ms=20.0)
        net.heal_partition("a", "b")
        a.send_to(Address("b", 1), "again")
        healed = b.receive(timeout_ms=20.0)
        return lost, reply[0], healed[0]

    assert run_in_sim(rt, proc) == (None, "back", "again")
    # Partition drops are tallied apart from lossy-link chaos drops.
    assert net.stats["partition_dropped"] == 1
    assert net.stats["dropped"] == 1


def test_wildcard_egress_cut_spares_ingress_and_loopback(rt, net):
    a = net.bind_datagram(Address("a", 1))
    a2 = net.bind_datagram(Address("a", 2))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.partition("a", "*")                   # a's NIC stops sending
        a.send_to(Address("b", 1), "x")
        lost = b.receive(timeout_ms=20.0)
        a.send_to(Address("a", 2), "self")        # loopback is exempt
        local = a2.receive(timeout_ms=20.0)
        b.send_to(Address("a", 1), "in")          # ingress still flows
        inbound = a.receive(timeout_ms=20.0)
        return lost, local[0], inbound[0]

    assert run_in_sim(rt, proc) == (None, "self", "in")
    assert net.is_partitioned("a", "b")
    assert not net.is_partitioned("b", "a")
    assert not net.is_partitioned("a", "a")


def test_partition_pair_cuts_both_directions(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))
    c = net.bind_datagram(Address("c", 1))

    def proc():
        net.partition_pair("a", "b")
        a.send_to(Address("b", 1), "x")
        b.send_to(Address("a", 1), "y")
        first = a.receive(timeout_ms=20.0)
        second = b.receive(timeout_ms=20.0)
        a.send_to(Address("c", 1), "bystander")   # rest of the segment fine
        third = c.receive(timeout_ms=20.0)
        net.heal_all_partitions()
        a.send_to(Address("b", 1), "ok")
        fourth = b.receive(timeout_ms=20.0)
        return first, second, third[0], fourth[0]

    assert run_in_sim(rt, proc) == (None, None, "bystander", "ok")


def test_partitioned_stream_send_counts_partition_drop(rt, net):
    listener = net.listen(Address("server", 1))

    def proc():
        conn = net.connect("client", Address("server", 1))
        server = listener.accept(timeout_ms=50.0)
        net.partition("client", "server")
        conn.send("lost")
        lost = server.receive(timeout_ms=20.0)
        return lost

    assert run_in_sim(rt, proc) is None
    assert net.stats["partition_dropped"] == 1


def test_pause_holds_traffic_and_resume_delivers_in_order(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.pause("b")
        a.send_to(Address("b", 1), "one")
        a.send_to(Address("b", 1), "two")
        held = b.receive(timeout_ms=50.0)         # stalled, nothing arrives
        net.resume("b")
        first = b.receive(timeout_ms=50.0)
        second = b.receive(timeout_ms=50.0)
        return held, first[0], second[0]

    # Unlike a partition, a pause loses nothing: the mail arrives late.
    assert run_in_sim(rt, proc) == (None, "one", "two")
    assert net.stats["dropped"] == 0


def test_paused_host_cannot_send_either(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.pause("a")
        a.send_to(Address("b", 1), "stalled")
        held = b.receive(timeout_ms=50.0)
        net.resume("a")
        late = b.receive(timeout_ms=50.0)
        return held, late[0]

    assert run_in_sim(rt, proc) == (None, "stalled")


def test_gray_slow_multiplies_latency(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))

    def proc():
        net.slow("b", 8.0)
        start = rt.now()
        a.send_to(Address("b", 1), "x")
        assert b.receive(timeout_ms=100.0) is not None
        slow_ms = rt.now() - start
        net.heal_slow("b")
        start = rt.now()
        a.send_to(Address("b", 1), "y")
        assert b.receive(timeout_ms=100.0) is not None
        return slow_ms, rt.now() - start

    slow_ms, fast_ms = run_in_sim(rt, proc)
    assert slow_ms == pytest.approx(fast_ms * 8.0)
