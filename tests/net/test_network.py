"""Tests for the simulated network substrate."""

from __future__ import annotations

import pytest

from repro.errors import (
    AddressInUseError,
    ConnectionClosedError,
    ConnectionRefusedError_,
    EntryError,
)
from repro.net import Address, LatencyModel, Network
from repro.net.latency import IDEAL
from repro.sim import RandomStreams
from repro.runtime import SimulatedRuntime


@pytest.fixture()
def net(rt):
    return Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0, per_kb_ms=0.0))


def run(rt: SimulatedRuntime, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run()
    return proc.result


# -- datagram ---------------------------------------------------------------------


def test_datagram_round_trip(rt, net):
    a = net.bind_datagram(Address("hostA", 161))
    b = net.bind_datagram(Address("hostB", 161))

    def proc():
        a.send_to(Address("hostB", 161), {"op": "get"})
        payload, sender = b.receive(timeout_ms=100.0)
        return payload, sender, rt.now()

    payload, sender, t = run(rt, proc)
    assert payload == {"op": "get"}
    assert sender == Address("hostA", 161)
    assert t == pytest.approx(1.0)


def test_datagram_to_unbound_address_silently_dropped(rt, net):
    a = net.bind_datagram(Address("hostA", 161))

    def proc():
        a.send_to(Address("nowhere", 9), "hello")
        return a.receive(timeout_ms=50.0)

    assert run(rt, proc) is None


def test_datagram_payload_is_isolated_copy(rt, net):
    a = net.bind_datagram(Address("a", 1))
    b = net.bind_datagram(Address("b", 1))
    original = {"values": [1, 2, 3]}

    def proc():
        a.send_to(Address("b", 1), original)
        payload, _ = b.receive(timeout_ms=100.0)
        payload["values"].append(99)
        return payload

    received = run(rt, proc)
    assert received["values"] == [1, 2, 3, 99]
    assert original["values"] == [1, 2, 3]


def test_duplicate_datagram_bind_rejected(rt, net):
    net.bind_datagram(Address("a", 1))
    with pytest.raises(AddressInUseError):
        net.bind_datagram(Address("a", 1))


def test_datagram_close_releases_address(rt, net):
    sock = net.bind_datagram(Address("a", 1))
    sock.close()
    net.bind_datagram(Address("a", 1))  # does not raise


def test_unserializable_payload_rejected(rt, net):
    a = net.bind_datagram(Address("a", 1))

    def proc():
        a.send_to(Address("b", 1), lambda: None)

    with pytest.raises(Exception) as exc_info:
        run(rt, proc)
    assert "serializable" in str(exc_info.value)


def test_datagram_loss(rt):
    lossy = Network(
        rt,
        latency=LatencyModel(base_ms=0.1, jitter_ms=0.0, loss_probability=1.0),
        rng=RandomStreams(0).stream("net"),
    )
    a = lossy.bind_datagram(Address("a", 1))
    b = lossy.bind_datagram(Address("b", 1))

    def proc():
        a.send_to(Address("b", 1), "x")
        return b.receive(timeout_ms=50.0)

    assert run(rt, proc) is None
    assert lossy.stats["dropped"] == 1


# -- multicast --------------------------------------------------------------------


def test_multicast_reaches_all_members(rt, net):
    group = Address("224.0.0.1", 4160)
    members = [net.bind_datagram(Address(f"m{i}", 4160)) for i in range(3)]
    for m in members:
        net.join_multicast(group, m)
    sender = net.bind_datagram(Address("s", 1))

    def proc():
        sender.send_to(group, "announce")
        return [m.receive(timeout_ms=100.0)[0] for m in members]

    assert run(rt, proc) == ["announce", "announce", "announce"]


def test_multicast_leave(rt, net):
    group = Address("224.0.0.1", 4160)
    m = net.bind_datagram(Address("m", 4160))
    net.join_multicast(group, m)
    net.leave_multicast(group, m)
    s = net.bind_datagram(Address("s", 1))

    def proc():
        s.send_to(group, "announce")
        return m.receive(timeout_ms=50.0)

    assert run(rt, proc) is None


# -- stream -----------------------------------------------------------------------


def test_stream_connect_and_exchange(rt, net):
    listener = net.listen(Address("server", 5000))

    def proc():
        client = net.connect("client", Address("server", 5000))
        server = listener.accept(timeout_ms=100.0)
        client.send({"register": "client-1"})
        request = server.receive(timeout_ms=100.0)
        server.send({"assigned_id": 7})
        reply = client.receive(timeout_ms=100.0)
        return request, reply

    request, reply = run(rt, proc)
    assert request == {"register": "client-1"}
    assert reply == {"assigned_id": 7}


def test_connect_refused_without_listener(rt, net):
    def proc():
        with pytest.raises(ConnectionRefusedError_):
            net.connect("client", Address("server", 5000))
        return True

    assert run(rt, proc)


def test_stream_messages_arrive_in_order_despite_jitter(rt):
    jittery = Network(
        rt,
        latency=LatencyModel(base_ms=0.5, jitter_ms=5.0, per_kb_ms=0.0),
        rng=RandomStreams(3).stream("net"),
    )
    listener = jittery.listen(Address("s", 1))

    def proc():
        client = jittery.connect("c", Address("s", 1))
        server = listener.accept(timeout_ms=100.0)
        for i in range(20):
            client.send(i)
        return [server.receive(timeout_ms=1000.0) for _ in range(20)]

    assert run(rt, proc) == list(range(20))


def test_stream_close_propagates_eof(rt, net):
    listener = net.listen(Address("s", 1))

    def proc():
        client = net.connect("c", Address("s", 1))
        server = listener.accept(timeout_ms=100.0)
        client.send("last")
        client.close()
        first = server.receive(timeout_ms=100.0)
        with pytest.raises(ConnectionClosedError):
            server.receive(timeout_ms=100.0)
        return first

    assert run(rt, proc) == "last"


def test_send_on_closed_socket_raises(rt, net):
    listener = net.listen(Address("s", 1))

    def proc():
        client = net.connect("c", Address("s", 1))
        listener.accept(timeout_ms=100.0)
        client.close()
        with pytest.raises(ConnectionClosedError):
            client.send("x")
        return True

    assert run(rt, proc)


def test_listener_accept_timeout(rt, net):
    listener = net.listen(Address("s", 1))

    def proc():
        return listener.accept(timeout_ms=25.0), rt.now()

    result, t = run(rt, proc)
    assert result is None
    assert t == pytest.approx(25.0)


def test_duplicate_listener_rejected(rt, net):
    net.listen(Address("s", 1))
    with pytest.raises(AddressInUseError):
        net.listen(Address("s", 1))


def test_ephemeral_addresses_unique(rt, net):
    a = net.ephemeral("host")
    b = net.ephemeral("host")
    assert a != b


def test_stats_counters(rt, net):
    a = net.bind_datagram(Address("a", 1))
    net.bind_datagram(Address("b", 1))

    def proc():
        a.send_to(Address("b", 1), "x" * 100)
        rt.sleep(10.0)

    run(rt, proc)
    assert net.stats["datagrams"] == 1
    assert net.stats["datagram_bytes"] > 100


def test_message_size_affects_delay(rt):
    sized = Network(rt, latency=LatencyModel(base_ms=0.0, jitter_ms=0.0, per_kb_ms=1.0))
    a = sized.bind_datagram(Address("a", 1))
    b = sized.bind_datagram(Address("b", 1))

    def proc():
        a.send_to(Address("b", 1), b"z" * 10240)  # ~10 KiB
        b.receive(timeout_ms=1000.0)
        return rt.now()

    t = run(rt, proc)
    assert t == pytest.approx(10.0, rel=0.05)
