"""Fault injection: worker crashes and transactional task recovery.

The paper (§3): "It also addresses fault-tolerance and data integrity
through transactions … In event of a partial failure, the transaction
either completes successfully or does not execute at all."  These tests
crash workers mid-computation and verify the bag of tasks survives.
"""

from __future__ import annotations

import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig
from repro.core.entries import ResultEntry, TaskEntry
from repro.node import testbed_small
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def test_crash_with_transactions_loses_nothing(rt):
    """A worker dying mid-task hands its task back to the pool."""
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=20, task_cost=300.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app,
        FrameworkConfig(poll_interval_ms=300.0, transactional_takes=True),
    )

    def killer():
        rt.sleep(2500.0)  # workers are mid-computation
        framework.worker_hosts[0].crash()

    def experiment():
        framework.start()
        rt.spawn(killer, name="killer")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(20))
    assert sum(report.results_by_worker.values()) == 20
    # The dead worker contributed some results before dying, but the
    # survivors finished the job.
    assert framework.worker_hosts[0].crashed
    survivors = {"worker2", "worker3"}
    assert survivors.issubset(report.results_by_worker.keys())


def test_multiple_crashes_still_complete(rt):
    cluster = testbed_small(rt, workers=4)
    app = SumOfSquares(n=24, task_cost=250.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app,
        FrameworkConfig(poll_interval_ms=300.0, transactional_takes=True),
    )

    def killer():
        rt.sleep(2000.0)
        framework.worker_hosts[0].crash()
        rt.sleep(1500.0)
        framework.worker_hosts[1].crash()

    def experiment():
        framework.start()
        rt.spawn(killer, name="killer")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(24))


def test_crash_without_transactions_loses_inflight_task(rt):
    """Baseline behaviour: a non-transactional take is gone forever."""
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=8, task_cost=500.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app,
        FrameworkConfig(poll_interval_ms=300.0, transactional_takes=False),
    )

    def experiment():
        framework.start()
        framework.start_all_workers()  # ensure both are mid-task quickly
        rt.sleep(2500.0)
        framework.worker_hosts[0].crash()
        rt.sleep(6000.0)  # let the survivor drain what's left
        tasks_left = framework.space.count(TaskEntry())
        results = framework.space.count(ResultEntry())
        framework.shutdown()
        return tasks_left, results

    tasks_left, results = drive(rt, experiment)
    # All task entries were taken, but the crashed worker's in-flight task
    # never produced a result: at most 7 of 8 results exist.
    assert tasks_left == 0
    assert results < 8


def test_crashed_worker_sends_no_result_after_death(rt):
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=10, task_cost=400.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app,
        FrameworkConfig(poll_interval_ms=300.0, transactional_takes=True),
    )

    def experiment():
        framework.start()
        rt.sleep(2500.0)
        victim = framework.worker_hosts[0]
        done_at_crash = victim.tasks_done
        victim.crash()
        rt.sleep(8000.0)
        framework.shutdown()
        return done_at_crash, victim.tasks_done

    done_at_crash, done_after = drive(rt, experiment)
    assert done_after == done_at_crash


def test_transactional_mode_produces_identical_results(rt):
    """Transactions are pure overhead-safety: same solution either way."""
    def run(transactional):
        from repro.runtime import SimulatedRuntime

        runtime = SimulatedRuntime()
        try:
            cluster = testbed_small(runtime, workers=3)
            framework = AdaptiveClusterFramework(
                runtime, cluster, SumOfSquares(n=12),
                FrameworkConfig(transactional_takes=transactional),
            )

            def body():
                framework.start()
                report = framework.run()
                framework.shutdown()
                return report.solution

            proc = runtime.kernel.spawn(body, name="body")
            runtime.kernel.run_until_idle()
            if proc.error is not None:
                raise proc.error
            return proc.result
        finally:
            runtime.shutdown()

    assert run(True) == run(False) == sum(i * i for i in range(12))
