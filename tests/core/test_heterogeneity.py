"""Heterogeneous clusters: worker-driven distribution self-balances.

Paper §3.1: "The model is naturally load-balanced.  Load distribution in
this model is worker driven" — faster machines take more tasks with no
scheduler logic at all.
"""

from __future__ import annotations

import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig
from repro.node.cluster import Cluster
from repro.node.machine import FAST_PC, SLOW_PC, MachineSpec
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def run_mixed(rt, specs, n_tasks=60, task_cost=400.0):
    cluster = Cluster(rt)
    for spec in specs:
        cluster.add_worker(spec)
    framework = AdaptiveClusterFramework(
        rt, cluster, SumOfSquares(n=n_tasks, task_cost=task_cost),
        FrameworkConfig(),
    )

    def experiment():
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    return drive(rt, experiment)


def test_fast_worker_takes_proportionally_more_tasks(rt):
    report = run_mixed(rt, [FAST_PC, SLOW_PC])  # 800 vs 300 MHz
    fast = report.results_by_worker.get("worker1", 0)
    slow = report.results_by_worker.get("worker2", 0)
    assert fast + slow == 60
    # Speed ratio is 800/300 ≈ 2.67; worker-driven pull tracks it.
    assert fast / max(slow, 1) == pytest.approx(800 / 300, rel=0.30)


def test_solution_correct_regardless_of_heterogeneity(rt):
    report = run_mixed(rt, [FAST_PC, SLOW_PC, SLOW_PC], n_tasks=30)
    assert report.solution == sum(i * i for i in range(30))


def test_very_slow_node_still_contributes_without_hurting(rt):
    ancient = MachineSpec(cpu_mhz=100.0, ram_mb=32)
    mixed = run_mixed(rt, [FAST_PC, FAST_PC, ancient], n_tasks=40)
    fast_only = run_mixed(rt, [FAST_PC, FAST_PC], n_tasks=40)
    # Adding even a 100 MHz museum piece must not slow the run down.
    assert mixed.parallel_ms <= fast_only.parallel_ms * 1.02
    assert mixed.results_by_worker.get("worker3", 0) >= 1
