"""End-to-end framework tests on the simulated cluster."""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptiveClusterFramework,
    FrameworkConfig,
    Signal,
    WorkerState,
)
from repro.node import LoadSimulator2, testbed_small
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished, "experiment blocked"
    return proc.result


def test_full_run_produces_correct_solution(rt):
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=12)
    framework = AdaptiveClusterFramework(rt, cluster, app)

    def experiment():
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(12))
    assert report.task_count == 12
    assert report.planning_ms > 0
    assert report.parallel_ms >= report.planning_ms


def test_tasks_distributed_across_workers(rt):
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=30, task_cost=200.0)
    framework = AdaptiveClusterFramework(rt, cluster, app)

    def experiment():
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert sum(report.results_by_worker.values()) == 30
    # With coarse tasks and three idle workers, everyone participates.
    assert len(report.results_by_worker) == 3


def test_workers_recruited_by_monitoring(rt):
    """No manual start: the first SNMP poll Start-signals idle workers."""
    cluster = testbed_small(rt, workers=2)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=6))

    def experiment():
        framework.start()
        report = framework.run()
        states = [h.state for h in framework.worker_hosts]
        framework.shutdown()
        return report, states

    report, states = drive(rt, experiment)
    assert all(state == WorkerState.RUNNING for state in states)
    starts = [e for e in framework.metrics.events_named("signal-sent")
              if e[1]["signal"] == "start"]
    assert len(starts) == 2


def test_monitoring_disabled_uses_manual_start(rt):
    cluster = testbed_small(rt, workers=2)
    framework = AdaptiveClusterFramework(
        rt, cluster, SumOfSquares(n=6), FrameworkConfig(monitoring=False)
    )

    def experiment():
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(6))
    assert framework.netmgmt is None


def test_loaded_worker_is_stopped_and_work_completes_elsewhere(rt):
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=20, task_cost=300.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app, FrameworkConfig(poll_interval_ms=300.0)
    )
    hog = LoadSimulator2(rt, cluster.workers[0])

    def experiment():
        hog.start()  # worker1 is busy from the outset
        framework.start()
        report = framework.run()
        states = {h.node.hostname: h.state for h in framework.worker_hosts}
        framework.shutdown()
        return report, states

    report, states = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(20))
    assert states["worker1"] == WorkerState.STOPPED
    assert "worker1" not in report.results_by_worker
    assert sum(report.results_by_worker.values()) == 20


def test_class_loading_happens_once_per_start(rt):
    cluster = testbed_small(rt, workers=2)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=8))

    def experiment():
        framework.start()
        framework.run()
        loads = [h.engine.loads for h in framework.worker_hosts]
        framework.shutdown()
        return loads

    assert drive(rt, experiment) == [1, 1]
    assert framework.code_server.stats["downloads"] == 2


def test_jini_lookup_resolves_space(rt):
    cluster = testbed_small(rt, workers=1)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=2))

    def experiment():
        framework.start()
        address = framework.resolve_space_via_jini("worker1")
        report = framework.run()
        framework.shutdown()
        return address, report

    address, report = drive(rt, experiment)
    assert address == framework.space_address
    assert report.solution == 1


def test_pause_resume_preserves_all_tasks(rt):
    """Pause mid-run, resume, and verify no task lost or duplicated."""
    cluster = testbed_small(rt, workers=1)
    app = SumOfSquares(n=10, task_cost=400.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app, FrameworkConfig(poll_interval_ms=200.0)
    )
    worker_node = cluster.workers[0]

    def loader():
        # Push the worker into the pause band mid-computation, then release.
        rt.sleep(2000.0)
        worker_node.cpu.set_background("user", 40.0)
        rt.sleep(2000.0)
        worker_node.cpu.clear_background("user")

    def experiment():
        framework.start()
        rt.spawn(loader, name="loader")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(10))
    host = framework.worker_hosts[0]
    assert host.tasks_done == 10
    signals = [e[1]["signal"] for e in framework.metrics.events_named("signal-sent")]
    assert "pause" in signals
    assert "resume" in signals


def test_report_timings_are_consistent(rt):
    cluster = testbed_small(rt, workers=2)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=10))

    def experiment():
        framework.start()
        report = framework.run()
        max_worker = framework.max_worker_time_ms()
        framework.shutdown()
        return report, max_worker

    report, max_worker = drive(rt, experiment)
    assert report.parallel_ms == pytest.approx(
        report.planning_ms + report.aggregation_ms
    )
    assert max_worker > 0
    assert report.max_task_overhead_ms > 0
