"""Pipelining is a pure optimisation: it must never change the answer.

Two properties, per ISSUE acceptance:

* For any (prefetch, seed/drain batch, rng seed), a pipelined job run
  produces a solution byte-identical to the unpipelined run of the same
  seed — batching may only change *when* work happens, never *what*.
* For any op sequence and fsync policy, the state recovered from a
  file-backed WAL after a clean close is byte-identical to what the
  ``always`` policy recovers — group commit trades the durability
  *window*, not the committed contents.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile

from hypothesis import given, settings, strategies as st

from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.node.cluster import testbed_small
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams
from repro.tuplespace.wal import FileWalStore, WriteAheadLog, op_take, op_write
from tests.core.toyapp import SumOfSquares


def _run_job(seed: int, prefetch: int, seed_batch: int,
             drain_batch: int, codec: str = "pickle") -> bytes:
    """One full job on the simulated cluster, serialized for comparison."""
    runtime = SimulatedRuntime()
    try:
        cluster = testbed_small(runtime, workers=3,
                                streams=RandomStreams(seed))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=12),
            FrameworkConfig(
                monitoring=False,
                compute_real=True,
                transactional_takes=True,
                worker_poll_ms=5_000.0,
                dead_letter_poll_ms=5_000.0,
                worker_prefetch=prefetch,
                master_seed_batch=seed_batch,
                master_drain_batch=drain_batch,
                codec=codec,
            ),
        )

        def body():
            framework.start()
            report = framework.run()
            framework.shutdown()
            return report

        proc = runtime.kernel.spawn(body, name="job")
        runtime.kernel.run_until_idle()
        if proc.error is not None:
            raise proc.error
        assert proc.finished, "job blocked"
        report = proc.result
        assert report.complete, "job did not complete"
        return json.dumps(
            {"solution": report.solution, "task_count": report.task_count,
             "dead_letters": sorted(report.dead_letters)},
            sort_keys=True,
        ).encode()
    finally:
        runtime.shutdown()


_baselines: dict[int, bytes] = {}


def _baseline(seed: int) -> bytes:
    if seed not in _baselines:
        _baselines[seed] = _run_job(seed, prefetch=1, seed_batch=1,
                                    drain_batch=1)
    return _baselines[seed]


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 3), prefetch=st.integers(1, 8),
       batch=st.integers(1, 8),
       codec=st.sampled_from(["pickle", "compact"]))
def test_pipelined_job_is_byte_identical_to_unpipelined(seed, prefetch,
                                                        batch, codec):
    # The unpipelined baseline runs codec="pickle" (the determinism
    # reference), so this also pins compact == pickle answers.
    pipelined = _run_job(seed, prefetch=prefetch, seed_batch=batch,
                         drain_batch=batch, codec=codec)
    assert pipelined == _baseline(seed)


# ------------------------------------------------------------ WAL policies --

# An op sequence: write(entry_id, payload_size) | take(entry_id)
_wal_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 9), st.integers(0, 200)),
        st.tuples(st.just("take"), st.integers(0, 9)),
    ),
    min_size=1,
    max_size=40,
)


def _recovered_state(op_list, fsync_policy: str, group_size: int) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "wal")
        store = FileWalStore(path, fsync_policy=fsync_policy,
                             group_size=group_size)
        wal = WriteAheadLog(store)
        for op in op_list:
            if op[0] == "write":
                _, entry_id, size = op
                wal.append((op_write(entry_id, b"p" * size, float("inf")),))
            else:
                wal.append((op_take(op[1]),))
        wal.sync()
        store.close()
        recovered = FileWalStore(path)
        try:
            return pickle.dumps(
                [(r.lsn, r.ops) for r in recovered.records],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        finally:
            recovered.close()


@settings(max_examples=25, deadline=None)
@given(op_list=_wal_ops, fsync_policy=st.sampled_from(["group", "os"]),
       group_size=st.integers(1, 16))
def test_fsync_policy_never_changes_recovered_state(op_list, fsync_policy,
                                                    group_size):
    baseline = _recovered_state(op_list, "always", group_size=64)
    candidate = _recovered_state(op_list, fsync_policy, group_size)
    assert candidate == baseline
