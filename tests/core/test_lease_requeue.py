"""Property test: lease-driven task requeue keeps jobs exactly-once.

A worker that takes a task under a finite-lease transaction and then
dies silently (no abort, no disconnect) must not strand the task: the
server-side lease watchdog aborts the transaction, the take rolls back,
and some healthy worker re-takes the entry.  Whatever crash pattern the
strategy draws, the job completes and every task is folded exactly once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entries import ResultEntry, TaskEntry
from repro.core.master import Master
from repro.core.metrics import Metrics
from repro.node import testbed_small
from repro.runtime import SimulatedRuntime
from repro.tuplespace.space import JavaSpace
from repro.tuplespace.transaction import TransactionManager
from tests.core.toyapp import SumOfSquares

LEASE_MS = 400.0
N = 6


def run_requeue(crash_flags: list[bool]) -> tuple:
    """One master + one worker whose i-th take crashes iff crash_flags[i]."""
    runtime = SimulatedRuntime()
    try:
        cluster = testbed_small(runtime, workers=1)
        app = SumOfSquares(n=N, task_cost=10.0)
        app.aggregate = lambda results: sum(results.values())  # type: ignore
        space = JavaSpace(runtime)
        metrics = Metrics(runtime)
        manager = TransactionManager(runtime, metrics=metrics)
        master = Master(runtime, cluster.master, space, app, metrics,
                        model_time=False, dead_letter_poll_ms=100.0)
        flags = list(crash_flags)
        abandoned = [0]

        def worker_loop():
            idle = 0
            while idle < 8:
                txn = manager.create(timeout_ms=LEASE_MS)
                entry = space.take(TaskEntry(app_id=app.app_id), txn=txn,
                                   timeout_ms=200.0)
                if entry is None:
                    txn.abort()
                    idle += 1
                    continue
                idle = 0
                if flags.pop(0) if flags else False:
                    # Silent death: walk away mid-transaction.  Only the
                    # lease watchdog can give this task back.
                    abandoned[0] += 1
                    continue
                runtime.sleep(50.0)
                space.write(ResultEntry(app_id=app.app_id,
                                        task_id=entry.task_id,
                                        payload=entry.payload * entry.payload,
                                        worker="w0"), txn=txn)
                txn.commit()

        def root():
            runtime.spawn(worker_loop, name="worker")
            return master.run()

        proc = runtime.kernel.spawn(root, name="requeue-root")
        runtime.kernel.run_until_idle()
        if proc.error is not None:
            raise proc.error
        assert proc.finished
        return proc.result, abandoned[0], manager, metrics
    finally:
        runtime.shutdown()


@settings(max_examples=10, deadline=None)
@given(st.lists(st.booleans(), min_size=0, max_size=10))
def test_job_completes_exactly_once_despite_silent_worker_deaths(crash_flags):
    report, abandoned, manager, metrics = run_requeue(crash_flags)
    assert report.complete
    assert report.solution == sum(i * i for i in range(N))
    # Exactly-once: one aggregation per task, nothing duplicated.
    assert sum(report.results_by_worker.values()) == N
    assert report.duplicate_results == 0
    assert report.dead_letters == {}
    # Every abandoned take was reclaimed by the watchdog, and only those.
    assert manager.aborted_by_lease == abandoned
    assert len(metrics.events_named("txn-lease-expired")) == abandoned


def test_task_is_invisible_until_the_lease_expires():
    report, abandoned, manager, _ = run_requeue([True])
    assert abandoned == 1
    assert report.complete
    assert manager.aborted_by_lease == 1
