"""Job-level parallelism baseline: correctness and migration behaviour."""

from __future__ import annotations

import pytest

from repro.core.joblevel import JobLevelConfig, JobLevelScheduler
from repro.node import LoadSimulator2, testbed_small
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def test_joblevel_computes_correct_solution(rt):
    cluster = testbed_small(rt, workers=3)
    scheduler = JobLevelScheduler(rt, cluster, SumOfSquares(n=12))

    def experiment():
        return scheduler.run()

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(12))
    assert report.migrations == 0
    assert report.checkpoints == 12


def test_joblevel_partitions_one_job_per_worker(rt):
    cluster = testbed_small(rt, workers=4)
    scheduler = JobLevelScheduler(rt, cluster, SumOfSquares(n=8))

    def experiment():
        return scheduler.run()

    report = drive(rt, experiment)
    assert len(report.per_job_ms) == 4


def test_eviction_triggers_migration_and_job_completes(rt):
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=8, task_cost=500.0)
    scheduler = JobLevelScheduler(rt, cluster, app,
                                  JobLevelConfig(poll_interval_ms=200.0))
    hog = LoadSimulator2(rt, cluster.workers[0])

    def loader():
        rt.sleep(700.0)   # let job 0 start on worker1, then evict it
        hog.start()
        rt.sleep(4000.0)
        hog.stop()

    def experiment():
        rt.spawn(loader, name="loader")
        return scheduler.run()

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(8))
    assert report.migrations >= 1


def test_migration_preserves_checkpointed_progress(rt):
    """No task is recomputed after migration: checkpoints == tasks."""
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=6, task_cost=500.0)
    scheduler = JobLevelScheduler(rt, cluster, app,
                                  JobLevelConfig(poll_interval_ms=200.0))
    hog = LoadSimulator2(rt, cluster.workers[0])

    def loader():
        rt.sleep(700.0)
        hog.start()

    def experiment():
        rt.spawn(loader, name="loader")
        return scheduler.run()

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(6))
    assert report.checkpoints == 6  # exactly once per task


def test_static_partitioning_is_slower_than_adaptive_under_skew(rt):
    """The ablation's headline: eviction hurts job-level more because the
    whole partition stalls instead of rebalancing task-by-task."""
    from repro.core import AdaptiveClusterFramework, FrameworkConfig

    app_factory = lambda: SumOfSquares(n=24, task_cost=400.0)  # noqa: E731

    cluster = testbed_small(rt, workers=3)
    hog = LoadSimulator2(rt, cluster.workers[0])
    hog.start()  # one worker busy the whole time

    framework = AdaptiveClusterFramework(
        rt, cluster, app_factory(), FrameworkConfig(poll_interval_ms=300.0)
    )

    def adaptive_experiment():
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report.parallel_ms

    adaptive_ms = drive(rt, adaptive_experiment)

    # Fresh runtime for the baseline run.
    from repro.runtime import SimulatedRuntime

    rt2 = SimulatedRuntime()
    try:
        cluster2 = testbed_small(rt2, workers=3)
        LoadSimulator2(rt2, cluster2.workers[0]).start()
        scheduler = JobLevelScheduler(
            rt2, cluster2, app_factory(), JobLevelConfig(poll_interval_ms=300.0)
        )
        proc = rt2.kernel.spawn(scheduler.run, name="joblevel")
        rt2.kernel.run_until_idle()
        if proc.error is not None:
            raise proc.error
        joblevel_ms = proc.result.parallel_ms
    finally:
        rt2.shutdown()

    assert adaptive_ms < joblevel_ms
