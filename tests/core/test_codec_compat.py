"""Codec compatibility: compact frames never change what a job computes.

``FrameworkConfig.codec`` selects the wire/storage encoding only; the
answer, its type, and the per-seed replay determinism must be invariant.
Pickle is the determinism *reference* codec — the compact runs here are
checked against it and against themselves.

CI's codec-compat matrix re-runs this file with ``REPRO_CODEC`` ∈
{pickle, compact} (default compact locally), the same
env-parametrization idiom as ``REPRO_SHARDS`` in the sharding suite.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.chaos import (
    chaos_experiment,
    verify_chaos_determinism,
)

CODEC = os.environ.get("REPRO_CODEC", "compact")


@pytest.mark.parametrize("seed", [0, 3])
def test_codec_solution_is_byte_identical_to_pickle_reference(seed):
    reference = chaos_experiment(seed=seed, codec="pickle")
    under_test = chaos_experiment(seed=seed, codec=CODEC)
    assert under_test.report.solution == reference.report.solution
    assert type(under_test.report.solution) is \
        type(reference.report.solution)
    assert under_test.correct and under_test.consistent


def test_codec_chaos_campaign_is_seed_deterministic():
    assert verify_chaos_determinism(seed=42, codec=CODEC)


def test_codec_sharded_campaign_is_seed_deterministic():
    assert verify_chaos_determinism(seed=42, shards=4, codec=CODEC)


def test_codec_pipelined_campaign_is_seed_deterministic():
    assert verify_chaos_determinism(seed=23, prefetch=4, codec=CODEC)
