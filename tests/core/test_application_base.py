"""Application base class: defaults and the sequential reference path."""

from __future__ import annotations

import pytest

from repro.core.application import Application, ClassLoadProfile, Task
from repro.core.entries import ResultEntry, TaskEntry
from repro.tuplespace import matches


class MinimalApp(Application):
    """Implements only the abstract surface; inherits every default."""

    app_id = "minimal"

    def plan(self):
        return [Task(task_id=i, payload=i) for i in range(3)]

    def execute(self, payload):
        return payload + 1

    def aggregate(self, results):
        return sorted(results.values())

    def task_cost_ms(self, task):
        return 1.0


def test_run_sequential_matches_decompose_compute_recompose():
    assert MinimalApp().run_sequential() == [1, 2, 3]


def test_default_cost_model_values():
    app = MinimalApp()
    task = app.plan()[0]
    assert app.planning_cost_ms(task) == 5.0
    assert app.aggregation_cost_ms(task.task_id, None) == 5.0
    profile = app.classload_profile()
    assert isinstance(profile, ClassLoadProfile)
    assert profile.work_ref_ms > 0
    assert 0 < profile.demand_percent <= 100


def test_task_is_frozen():
    task = Task(task_id=1, payload="x")
    with pytest.raises(AttributeError):
        task.payload = "y"


def test_entry_templates_select_by_app_id():
    task = TaskEntry("minimal", 3, "payload")
    assert matches(TaskEntry(app_id="minimal"), task)
    assert not matches(TaskEntry(app_id="other"), task)
    assert matches(TaskEntry(app_id="minimal", task_id=3), task)
    assert not matches(TaskEntry(task_id=4), task)


def test_result_entry_carries_provenance():
    result = ResultEntry("minimal", 3, 42, worker="w7", compute_ms=12.5)
    assert matches(ResultEntry(app_id="minimal"), result)
    assert result.worker == "w7"
    assert result.compute_ms == 12.5
    # Provenance fields are wildcardable in templates.
    assert matches(ResultEntry(worker="w7"), result)
    assert not matches(ResultEntry(worker="w8"), result)
