"""Trap-driven monitoring mode end-to-end."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig, WorkerState
from repro.node import LoadSimulator2, testbed_small
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def test_trap_mode_recruits_and_completes(rt):
    cluster = testbed_small(rt, workers=3)
    framework = AdaptiveClusterFramework(
        rt, cluster, SumOfSquares(n=12),
        FrameworkConfig(monitoring_mode="trap"),
    )

    def experiment():
        framework.start()
        report = framework.run()
        states = [h.state for h in framework.worker_hosts]
        framework.shutdown()
        return report, states

    report, states = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(12))
    assert all(s == WorkerState.RUNNING for s in states)
    assert framework.netmgmt.stats["traps_received"] >= 3  # announcements
    assert framework.netmgmt.stats["polls"] == 0           # no polling at all


def test_trap_mode_never_recruits_preloaded_worker(rt):
    """A node already loaded at announcement time is left alone."""
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=12, task_cost=200.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app, FrameworkConfig(monitoring_mode="trap"),
    )
    LoadSimulator2(rt, cluster.workers[0]).start()

    def experiment():
        framework.start()
        report = framework.run()
        state = framework.worker_hosts[0].state
        framework.shutdown()
        return report, state

    report, state = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(12))
    assert state == WorkerState.STOPPED  # initial state: never started
    assert "worker1" not in report.results_by_worker


def test_trap_mode_stops_worker_on_transient_load(rt):
    """A load burst mid-run Stops the worker via trap; release re-Starts it."""
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=80, task_cost=300.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app, FrameworkConfig(monitoring_mode="trap"),
    )
    hog = LoadSimulator2(rt, cluster.workers[0])

    def loader():
        rt.sleep(3000.0)
        hog.start()
        rt.sleep(4000.0)
        hog.stop()

    def experiment():
        framework.start()
        rt.spawn(loader, name="loader")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(80))
    w1_signals = [
        e[1]["signal"] for e in framework.metrics.events_named("signal-sent")
        if e[1]["worker"] == "worker1"
    ]
    assert "stop" in w1_signals
    assert w1_signals.count("start") >= 2  # recruited, stopped, re-recruited


def test_trap_mode_faster_and_cheaper_than_slow_polls(rt):
    """The extension's selling point: band-change traps react within the
    local sampling window while sending almost no datagrams."""
    from repro.experiments import (
        adaptation_experiment,
        make_raytrace_app,
        raytrace_cluster,
    )

    # Reuse the adaptation harness with a custom framework config through
    # its poll interval; trap mode is exercised by the framework tests
    # above, and the trap-vs-poll bench quantifies the trade — here we
    # just pin the poll baseline that the bench compares against.
    result = adaptation_experiment(make_raytrace_app, raytrace_cluster,
                                   poll_interval_ms=2000.0)
    stop = result.reaction_for("stop")
    assert stop.at_ms - 8000.0 <= 2000.0 + 1500.0


def test_invalid_monitoring_mode_rejected(rt):
    from repro.core.metrics import Metrics
    from repro.core.netmgmt import NetworkManagementModule
    from repro.net import Network

    with pytest.raises(ValueError):
        NetworkManagementModule(rt, Network(rt), "m", Metrics(rt), mode="push")
