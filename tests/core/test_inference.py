"""Inference engine: the threshold rule base is a pure function."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.inference import InferenceEngine
from repro.core.signals import Signal, ThresholdPolicy
from repro.core.states import WorkerState, WorkerStateMachine


@pytest.fixture()
def engine():
    return InferenceEngine()


# The paper's rule table, exhaustively.
RULES = [
    (WorkerState.STOPPED, 10.0, Signal.START),
    (WorkerState.STOPPED, 25.0, Signal.START),   # boundary: 0-25 inclusive
    (WorkerState.PAUSED, 10.0, Signal.RESUME),
    (WorkerState.RUNNING, 10.0, None),
    (WorkerState.RUNNING, 40.0, Signal.PAUSE),
    (WorkerState.RUNNING, 50.0, Signal.PAUSE),   # boundary: 25-50
    (WorkerState.PAUSED, 40.0, None),
    (WorkerState.STOPPED, 40.0, None),
    (WorkerState.RUNNING, 80.0, Signal.STOP),
    (WorkerState.RUNNING, 51.0, Signal.STOP),
    (WorkerState.PAUSED, 90.0, Signal.STOP),
    (WorkerState.STOPPED, 90.0, None),
]


@pytest.mark.parametrize("state,load,expected", RULES)
def test_rule_table(engine, state, load, expected):
    assert engine.decide(state, load) == expected


@given(
    state=st.sampled_from(list(WorkerState)),
    load=st.floats(0.0, 100.0, allow_nan=False),
)
def test_decision_signals_are_always_legal_transitions(state, load):
    """Property: the inference engine never emits an illegal signal."""
    signal = InferenceEngine().decide(state, load)
    if signal is not None:
        WorkerStateMachine(initial=state).apply(signal)  # must not raise


@given(load=st.floats(0.0, 100.0, allow_nan=False))
def test_decision_is_deterministic(load):
    a = InferenceEngine().decide(WorkerState.RUNNING, load)
    b = InferenceEngine().decide(WorkerState.RUNNING, load)
    assert a == b


def test_custom_thresholds_shift_bands():
    engine = InferenceEngine(ThresholdPolicy(idle_below=10.0, stop_above=80.0))
    assert engine.decide(WorkerState.STOPPED, 9.0) == Signal.START
    assert engine.decide(WorkerState.RUNNING, 50.0) == Signal.PAUSE
    assert engine.decide(WorkerState.RUNNING, 81.0) == Signal.STOP


def test_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        ThresholdPolicy(idle_below=60.0, stop_above=50.0)
    with pytest.raises(ValueError):
        ThresholdPolicy(idle_below=-1.0)


def test_registration_assigns_unique_increasing_ids(engine):
    a = engine.register("host-a")
    b = engine.register("host-b")
    assert (a.worker_id, b.worker_id) == (1, 2)
    assert engine.worker(1).hostname == "host-a"
    assert len(engine.workers()) == 2


def test_observe_tracks_state_and_history(engine):
    record = engine.register("w")
    assert engine.observe(record.worker_id, 5.0, now_ms=100.0) == Signal.START
    assert record.assumed_state == WorkerState.RUNNING
    assert engine.observe(record.worker_id, 5.0, now_ms=200.0) is None
    assert engine.observe(record.worker_id, 40.0, now_ms=300.0) == Signal.PAUSE
    assert record.assumed_state == WorkerState.PAUSED
    assert engine.observe(record.worker_id, 90.0, now_ms=400.0) == Signal.STOP
    assert record.assumed_state == WorkerState.STOPPED
    assert record.load_history == [(100.0, 5.0), (200.0, 5.0), (300.0, 40.0), (400.0, 90.0)]


def test_paper_load_cycle_produces_paper_signal_sequence(engine):
    """Idle → loadsim2 (100 %) → idle → loadsim1 (46 %) → idle (Figs 9–11)."""
    record = engine.register("w")
    loads = [5.0, 100.0, 5.0, 46.0, 5.0]
    signals = [engine.observe(record.worker_id, load, now_ms=i * 1000.0)
               for i, load in enumerate(loads)]
    assert signals == [Signal.START, Signal.STOP, Signal.START, Signal.PAUSE,
                       Signal.RESUME]


def test_unregister(engine):
    record = engine.register("w")
    engine.unregister(record.worker_id)
    assert engine.workers() == []
