"""Network management module unit tests (poll_once, registration, stats)."""

from __future__ import annotations

import pytest

from repro.core.metrics import Metrics
from repro.core.netmgmt import NetworkManagementModule
from repro.core.signals import Signal
from repro.core.states import WorkerState
from repro.net import Network
from repro.node.machine import FAST_PC, Node
from tests.conftest import run_in_sim


@pytest.fixture()
def env(rt):
    net = Network(rt)
    node = Node(rt, net, "w1", FAST_PC)
    node.start_agent()
    module = NetworkManagementModule(rt, net, "master", Metrics(rt),
                                     poll_interval_ms=500.0)
    record = module.inference.register("w1")
    return net, node, module, record


def test_poll_once_idle_node_sends_start(rt, env):
    net, node, module, record = env

    def proc():
        return module.poll_once(record)

    assert run_in_sim(rt, proc) == Signal.START
    assert record.assumed_state == WorkerState.RUNNING
    assert module.stats["polls"] == 1
    assert module.stats["signals_sent"] == 1


def test_poll_once_running_idle_node_no_signal(rt, env):
    net, node, module, record = env
    record.assumed_state = WorkerState.RUNNING

    def proc():
        return module.poll_once(record)

    assert run_in_sim(rt, proc) is None


def test_poll_once_loaded_node_sends_stop(rt, env):
    net, node, module, record = env
    record.assumed_state = WorkerState.RUNNING

    def proc():
        node.cpu.set_background("user", 90.0)
        rt.sleep(1100.0)  # let the 1 s averaging window fill
        return module.poll_once(record)

    assert run_in_sim(rt, proc) == Signal.STOP


def test_poll_once_busy_band_sends_pause(rt, env):
    net, node, module, record = env
    record.assumed_state = WorkerState.RUNNING

    def proc():
        node.cpu.set_background("user", 40.0)
        rt.sleep(1100.0)
        return module.poll_once(record)

    assert run_in_sim(rt, proc) == Signal.PAUSE


def test_poll_failure_counts_and_returns_none(rt, env):
    net, node, module, record = env
    node.stop_agent()  # unreachable worker
    module.snmp.timeout_ms = 20.0
    module.snmp.retries = 0

    def proc():
        return module.poll_once(record)

    assert run_in_sim(rt, proc) is None
    assert module.stats["poll_failures"] == 1


def test_external_metric_ignores_worker_own_compute(rt, env):
    """The framework's own task never triggers Pause/Stop on its worker."""
    net, node, module, record = env
    record.assumed_state = WorkerState.RUNNING

    def proc():
        rt.spawn(lambda: node.cpu.execute(2000.0), name="compute")
        rt.sleep(1100.0)  # foreign task at 100 % total
        return module.poll_once(record)

    assert run_in_sim(rt, proc) is None  # external load still 0


def test_total_load_metric_would_evict_computing_worker(rt, env):
    """Ablation wiring: monitoring hrProcessorLoad (total) misreads the
    worker's own compute as user load — the reason the inference engine
    polls the external-load OID by default."""
    net, node, module, record = env
    total_module = NetworkManagementModule(
        rt, net, "master2", Metrics(rt), load_metric="total"
    )
    total_record = total_module.inference.register("w1")
    total_record.assumed_state = WorkerState.RUNNING

    def proc():
        rt.spawn(lambda: node.cpu.execute(2000.0), name="compute")
        rt.sleep(1100.0)
        return total_module.poll_once(total_record)

    assert run_in_sim(rt, proc) == Signal.STOP


def test_invalid_load_metric_rejected(rt, env):
    net, *_ = env
    with pytest.raises(ValueError):
        NetworkManagementModule(rt, net, "m", Metrics(rt), load_metric="bogus")


def test_load_history_recorded_per_worker(rt, env):
    net, node, module, record = env

    def proc():
        module.poll_once(record)
        rt.sleep(500.0)
        module.poll_once(record)

    run_in_sim(rt, proc)
    assert len(record.load_history) == 2
    assert f"load/w1" in module.metrics.series
