"""Coordinator-fault acceptance: survive the space primary and the master.

Across seeds, killing the primary space server (hot-standby failover)
and/or the master (checkpoint/resume) mid-run must still complete every
task exactly-once, and the whole recovery trace must replay
byte-identically from the same seed.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.chaos import (
    coordination_chaos_experiment,
    verify_coordination_determinism,
)

SEEDS = [1, 2, 3]
_env_seed = os.environ.get("CHAOS_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_space_primary_kill_fails_over_and_completes_exactly_once(seed):
    result = coordination_chaos_experiment(
        seed=seed, faults=("kill-primary-space",))
    assert result.faults_injected == 1
    assert result.exactly_once, result.format_summary()
    names = {n for _, n, _ in result.trace}
    assert {"space-primary-killed", "primary-heartbeat-miss",
            "standby-promoted", "failover-complete",
            "proxy-rediscovered"} <= names, result.format_summary()


@pytest.mark.parametrize("seed", SEEDS)
def test_master_kill_resumes_from_checkpoint_exactly_once(seed):
    result = coordination_chaos_experiment(seed=seed, faults=("kill-master",))
    assert result.faults_injected == 1
    assert result.master_restarts == 1
    assert result.exactly_once, result.format_summary()
    assert result.report.resumed_from_seq >= 1
    names = {n for _, n, _ in result.trace}
    assert {"master-kill-injected", "master-killed", "master-restarted",
            "master-checkpoint", "master-resumed"} <= names, \
        result.format_summary()


def test_both_coordinator_faults_in_one_run():
    result = coordination_chaos_experiment(
        seed=3, faults=("kill-primary-space", "kill-master"))
    assert result.faults_injected == 2
    assert result.exactly_once, result.format_summary()
    names = {n for _, n, _ in result.trace}
    assert "failover-complete" in names
    assert "master-resumed" in names


@pytest.mark.parametrize("faults", [("kill-primary-space",), ("kill-master",)])
def test_same_seed_replays_identical_coordination_trace(faults):
    seed = int(os.environ.get("CHAOS_SEED", "42"))
    assert verify_coordination_determinism(seed=seed, faults=faults)


# ---------------------------------------------------------------------------
# Mid-batch coordinator faults (pipelined data path, prefetch > 1).
#
# With prefetch=4 each worker holds several tasks under one transaction
# and retires them with a single batched write-back RPC, so the kill
# lands while a multi-task batch is in flight: the batch must revert or
# commit as a unit — never half-apply — for exactly-once to hold.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_primary_kill_mid_batch_preserves_exactly_once(seed):
    result = coordination_chaos_experiment(
        seed=seed, faults=("kill-primary-space",), prefetch=4)
    assert result.faults_injected == 1
    assert result.exactly_once, result.format_summary()
    names = {n for _, n, _ in result.trace}
    assert {"space-primary-killed", "standby-promoted",
            "failover-complete"} <= names, result.format_summary()


@pytest.mark.parametrize("seed", SEEDS)
def test_master_kill_mid_batch_preserves_exactly_once(seed):
    result = coordination_chaos_experiment(
        seed=seed, faults=("kill-master",), prefetch=4)
    assert result.faults_injected == 1
    assert result.master_restarts == 1
    assert result.exactly_once, result.format_summary()
    names = {n for _, n, _ in result.trace}
    assert {"master-killed", "master-restarted",
            "master-resumed"} <= names, result.format_summary()


def test_both_faults_mid_batch_and_deterministic_replay():
    result = coordination_chaos_experiment(
        seed=2, faults=("kill-primary-space", "kill-master"), prefetch=4)
    assert result.faults_injected == 2
    assert result.exactly_once, result.format_summary()
    assert verify_coordination_determinism(
        seed=2, faults=("kill-primary-space", "kill-master"), prefetch=4)


# ---------------------------------------------------------------------------
# Nemesis faults (partition / pause / gray-slow).
#
# Unlike the kill-* faults above, these never announce themselves to the
# victim: a partitioned or paused primary keeps believing it is primary.
# Correctness rests entirely on lease fencing (the supervisor waits out
# the last renewal it put on the wire; the primary self-fences when no
# renewal arrives) — and the per-op history checker audits every run.
# ---------------------------------------------------------------------------

def test_partition_campaign_stays_consistent():
    # Unsharded: the supervisor is co-located with the primary, so the
    # egress cut cannot sever supervision (loopback is exempt) — workers
    # simply ride out the cut and the history stays clean.
    result = coordination_chaos_experiment(seed=7, faults=("partition",))
    assert result.faults_injected == 1
    assert result.correct, result.format_summary()
    assert result.consistent, result.history_report.summary()
    names = {n for _, n, _ in result.trace}
    assert "fault-healed" in names, result.format_summary()


def test_sharded_partition_campaign_promotes_one_shard():
    result = coordination_chaos_experiment(
        seed=7, shards=4, faults=("partition:shard:1",))
    assert result.faults_injected == 1
    assert result.correct, result.format_summary()
    assert result.consistent, result.history_report.summary()
    names = {n for _, n, _ in result.trace}
    assert {"failover-complete", "standby-rejoining"} <= names, \
        result.format_summary()


def test_pause_campaign_fences_the_revived_primary():
    result = coordination_chaos_experiment(seed=7, faults=("pause",))
    assert result.correct, result.format_summary()
    assert result.consistent, result.history_report.summary()
    # The paused primary wakes after promotion: its stale RPCs must have
    # been turned away by the fence, and it must have rejoined as a
    # standby that caught back up.
    assert result.fenced_rpcs >= 1, result.format_summary()
    names = {n for _, n, _ in result.trace}
    assert {"failover-complete", "primary-fenced",
            "standby-rejoining"} <= names, result.format_summary()


def test_gray_slow_campaign_completes_consistently():
    result = coordination_chaos_experiment(seed=7, faults=("gray-slow",))
    assert result.faults_injected == 1
    assert result.correct, result.format_summary()
    assert result.consistent, result.history_report.summary()


@pytest.mark.parametrize("faults", [("partition",), ("pause",)])
def test_nemesis_campaigns_replay_deterministically(faults):
    # Byte-identical trace/solution/aggregations across the stall or cut.
    assert verify_coordination_determinism(seed=7, faults=faults)
