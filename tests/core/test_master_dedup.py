"""Property test: exactly-once aggregation under eager-scheduling races.

Simulated workers take task entries and return results after arbitrary
delays; slow ones trip the master's straggler replication, so the same
task can be computed several times.  Whatever the interleaving, the
master must fold each task exactly once, account for every duplicate,
and leave nothing stuck in the space.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entries import ResultEntry, TaskEntry
from repro.core.master import Master
from repro.core.metrics import Metrics
from repro.node import testbed_small
from repro.runtime import SimulatedRuntime
from repro.tuplespace.space import JavaSpace
from tests.core.toyapp import SumOfSquares

STRAGGLER_MS = 300.0


def run_race(delays: list[float]) -> tuple:
    """One master + scripted per-take delays; returns (report, writes, leftovers)."""
    runtime = SimulatedRuntime()
    try:
        cluster = testbed_small(runtime, workers=1)
        app = SumOfSquares(n=len(delays), task_cost=10.0)
        app.aggregate = lambda results: sum(results.values())  # type: ignore
        space = JavaSpace(runtime)
        master = Master(
            runtime, cluster.master, space, app, Metrics(runtime),
            eager_scheduling=True, straggler_timeout_ms=STRAGGLER_MS,
            model_time=False,
        )
        writes = [0]
        queue = list(delays)  # i-th *take* (original or replica) waits delays[i]

        def consumer():
            idle = 0
            while idle < 3:
                entry = space.take(TaskEntry(app_id=app.app_id),
                                   timeout_ms=200.0)
                if entry is None:
                    idle += 1
                    continue
                idle = 0
                delay = queue.pop(0) if queue else 0.0

                def respond(e=entry, d=delay):
                    runtime.sleep(d)
                    writes[0] += 1
                    space.write(ResultEntry(
                        app_id=app.app_id, task_id=e.task_id,
                        payload=e.payload * e.payload,
                        worker=f"w{e.task_id % 3}",
                    ))

                runtime.spawn(respond, name=f"respond-{entry.task_id}")

        def root():
            runtime.spawn(consumer, name="consumer")
            return master.run()

        proc = runtime.kernel.spawn(root, name="race-root")
        runtime.kernel.run_until_idle()
        if proc.error is not None:
            raise proc.error
        assert proc.finished
        report = proc.result
        leftovers = 0
        while space.take_if_exists(ResultEntry(app_id=app.app_id)) is not None:
            leftovers += 1
        return report, writes[0], leftovers
    finally:
        runtime.shutdown()


@settings(max_examples=10, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=4 * STRAGGLER_MS),
                min_size=2, max_size=8))
def test_exactly_once_aggregation_under_replica_races(delays):
    n = len(delays)
    report, writes, leftovers = run_race(delays)
    assert report.complete
    assert report.solution == sum(i * i for i in range(n))
    # Exactly-once: one result counted per task, no matter the racing.
    assert sum(report.results_by_worker.values()) == n
    # Every extra computation is accounted for: consumed as a duplicate
    # by the master or still in the space after it stopped (a result that
    # landed after aggregation ended) — never folded into the solution.
    assert report.duplicate_results + leftovers == writes - n
    assert report.dead_letters == {}


def test_replication_fires_only_for_taken_but_silent_tasks():
    """A task still queued in the space is never replicated."""
    report, writes, leftovers = run_race([4 * STRAGGLER_MS, 0.0, 0.0])
    assert report.complete
    assert report.replicated_tasks >= 1
    assert report.solution == 0 + 1 + 4
