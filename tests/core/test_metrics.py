"""Metrics collector unit tests."""

from __future__ import annotations

from repro.core.metrics import Metrics
from tests.conftest import run_in_sim


def test_record_series_with_timestamps(rt):
    metrics = Metrics(rt)

    def proc():
        metrics.record("load", 10.0)
        rt.sleep(100.0)
        metrics.record("load", 20.0)

    run_in_sim(rt, proc)
    assert metrics.series["load"] == [(0.0, 10.0), (100.0, 20.0)]


def test_event_payloads(rt):
    metrics = Metrics(rt)

    def proc():
        metrics.event("signal-sent", worker="w1", signal="start")
        rt.sleep(5.0)
        metrics.event("signal-sent", worker="w2", signal="stop")
        metrics.event("other", x=1)

    run_in_sim(rt, proc)
    sent = metrics.events_named("signal-sent")
    assert len(sent) == 2
    assert sent[0] == (0.0, {"worker": "w1", "signal": "start"})
    assert metrics.events_named("missing") == []


def test_scalars_overwrite(rt):
    metrics = Metrics(rt)
    metrics.scalar("planning_ms", 100.0)
    metrics.scalar("planning_ms", 200.0)
    assert metrics.scalars["planning_ms"] == 200.0


def test_last_and_max(rt):
    metrics = Metrics(rt)
    for value in (3.0, 9.0, 5.0):
        metrics.record("x", value)
    assert metrics.last("x") == 5.0
    assert metrics.max("x") == 9.0
    assert metrics.last("missing") is None
    assert metrics.max("missing") is None
