"""Multi-tenant contention campaign: admission, fair share, preemption.

Small-scale versions of the ISSUE 8 acceptance runs plus the two
robustness properties: isolation (victim throughput survives an
aggressor flooding 10x its quota) and exactly-once accounting under
preemption composed with kill/pause nemesis faults.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.experiments.chaos import (
    AGGRESSOR,
    VICTIM,
    contention_chaos_experiment,
    contention_isolation,
    verify_contention_determinism,
)
from repro.faults import FaultEvent, FaultKind, FaultPlan

import pytest


def test_contention_every_tenant_correct_and_consistent():
    r = contention_chaos_experiment(seed=42, tenants=8)
    assert r.correct
    assert r.consistent
    # The flood was actually refused, not absorbed.
    assert r.admission_totals["rejected"] > 0
    assert r.aggressor_admission["rejected"] > 0
    # Every tenant got space grants through the DRR dispatcher.
    assert VICTIM in r.grants and r.grants[VICTIM] >= 24


def test_contention_sharded_scatter_stays_exactly_once():
    # Partial admission over a scatter write must not duplicate the
    # admitted sub-group on retry (AdmissionError.admitted_entries).
    r = contention_chaos_experiment(seed=7, tenants=6, shards=2)
    assert r.correct
    assert r.consistent


def test_rejected_ops_left_no_side_effects():
    r = contention_chaos_experiment(seed=42, tenants=8)
    assert r.history_report is not None
    assert r.history_report.by_status.get("rejected", 0) > 0
    assert r.history_report.ok  # checker check 4: no rejected-write effects


def test_victim_keeps_its_throughput_under_flood():
    baseline, contended, ratio = contention_isolation(seed=42, tenants=8)
    assert baseline.correct and contended.correct
    assert ratio >= 0.8, (
        f"victim degraded to {ratio:.2f}x of its isolated throughput"
    )


def test_contention_campaign_is_deterministic():
    assert verify_contention_determinism(seed=42, tenants=8)


def test_preemption_fires_and_preserves_accounting():
    # Fast governor poll + slow aggressor tasks: the low-priority
    # pipeline is caught holding a batch while urgent backlog queues.
    r = contention_chaos_experiment(seed=3, tenants=6,
                                    preemption_poll_ms=100.0,
                                    bystander_task_cost=400.0)
    assert r.preemptions > 0
    assert r.tasks_released > 0
    assert any(name == "tenant-preempted" for _, name, _ in r.trace)
    assert r.correct
    assert r.consistent


def test_aggressor_failure_is_recorded_not_raised():
    r = contention_chaos_experiment(seed=42, tenants=8,
                                    give_up_after_ms=4_000.0)
    # Whatever happened to the aggressor, the victims' run must not
    # have been unwound by it.
    assert r.correct
    assert AGGRESSOR in r.errors or AGGRESSOR in r.reports


def test_contention_needs_two_tenants():
    with pytest.raises(ValueError):
        contention_chaos_experiment(tenants=1)


_fault_plans = st.sampled_from(["crash", "pause"])


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 9_999),
    kind=_fault_plans,
    worker=st.integers(1, 4),
    at_ms=st.sampled_from([800.0, 1_500.0, 2_500.0]),
)
def test_preemption_exactly_once_under_nemesis_faults(seed, kind, worker,
                                                      at_ms):
    """Preemption (fast poll) composed with a worker crash or pause must
    never lose or double-count a task: every non-aggressor tenant's
    solution stays exact and the op history checks out."""
    plan = FaultPlan()
    if kind == "crash":
        plan.add(FaultEvent(at_ms, FaultKind.WORKER_CRASH,
                            target=f"worker{worker}"))
    else:
        plan.add(FaultEvent(at_ms, FaultKind.PAUSE,
                            target=f"worker{worker}",
                            duration_ms=1_200.0))
    r = contention_chaos_experiment(
        seed=seed, tenants=5, preemption_poll_ms=100.0,
        bystander_task_cost=400.0, fault_plan=plan,
    )
    assert r.faults_injected == 1
    assert r.correct, f"tenant lost work under {kind}@{at_ms} (seed {seed})"
    assert r.consistent
