"""Self-healing runtime: partitions, server restarts, poison quarantine.

The scenarios the robustness layer exists for — each one killed the old
fail-stop worker or hung the master before the recovery policy, the
transaction ``finally`` and the dead-letter drain were added.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig
from repro.core.entries import TaskEntry
from repro.core.states import WorkerState
from repro.node import testbed_small
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


class PoisonApp(SumOfSquares):
    """SumOfSquares whose designated task always raises."""

    def __init__(self, n: int = 12, poison: int = 5, **kwargs: Any) -> None:
        super().__init__(n=n, **kwargs)
        self.poison = poison

    def execute(self, payload: Any) -> Any:
        if payload == self.poison:
            raise ValueError(f"poison task {payload}")
        return payload * payload

    def aggregate(self, results: dict[int, Any]) -> Any:
        return sum(results.values())  # partial-tolerant


def robust_config(**overrides: Any) -> FrameworkConfig:
    defaults = dict(
        monitoring=False,
        transactional_takes=True,
        rpc_timeout_ms=400.0,
        reconnect_base_ms=25.0,
        reconnect_max_ms=400.0,
        dead_letter_poll_ms=500.0,
    )
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


def test_partition_during_take_task_reappears_and_worker_rejoins(rt):
    """Satellite: isolate a worker mid-RPC.  Its in-flight transaction
    aborts, the task entry reappears for the others, and after the heal
    the reconnecting proxy brings the worker back into the pool."""
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=16, task_cost=400.0)
    framework = AdaptiveClusterFramework(rt, cluster, app, robust_config())

    def chaos():
        rt.sleep(1_000.0)            # worker1 is mid-cycle
        cluster.network.isolate("worker1")
        rt.sleep(2_000.0)
        cluster.network.heal("worker1")

    def experiment():
        framework.start()
        rt.spawn(chaos, name="chaos")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.complete
    assert report.solution == sum(i * i for i in range(16))
    assert sum(report.results_by_worker.values()) == 16   # exactly once
    # The partitioned worker detected the outage and recovered.
    recovered = framework.metrics.events_named("worker-recovered")
    assert any(p["worker"] == "worker1" for _, p in recovered)
    # It kept contributing after the heal instead of staying dead.
    assert report.results_by_worker.get("worker1", 0) > 0


def test_space_server_restart_mid_run_recovers(rt):
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=18, task_cost=400.0)
    framework = AdaptiveClusterFramework(rt, cluster, app, robust_config())

    def chaos():
        rt.sleep(1_500.0)
        framework.space_server.crash()
        rt.sleep(600.0)
        framework.space_server.start()

    def experiment():
        framework.start()
        rt.spawn(chaos, name="chaos")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.complete
    assert report.solution == sum(i * i for i in range(18))
    assert framework.space_server.restarts == 1
    assert framework.metrics.events_named("proxy-reconnected")


def test_poison_task_is_quarantined_not_fatal(rt):
    """Satellite (txn-leak regression): an application exception aborts
    the cycle's transaction instead of stranding it, the poison task is
    retried then dead-lettered, and the master still terminates."""
    cluster = testbed_small(rt, workers=2)
    app = PoisonApp(n=12, poison=5, task_cost=150.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app, robust_config(max_task_attempts=2),
    )

    def experiment():
        framework.start()
        report = framework.run()
        leftover = framework.space.take_if_exists(
            TaskEntry(app_id=app.app_id))
        framework.shutdown()
        return report, leftover

    report, leftover = drive(rt, experiment)
    assert not report.complete
    assert list(report.dead_letters) == [5]
    assert "poison task 5" in report.dead_letters[5]
    assert report.solution == sum(i * i for i in range(12) if i != 5)
    # The failed attempts never leaked their transaction: no TaskEntry is
    # stuck invisible under an open txn, and none remains queued.
    assert leftover is None
    requeues = framework.metrics.events_named("task-requeued")
    assert len(requeues) == 1      # attempt 1 → requeue, attempt 2 → dead
    assert framework.metrics.events_named("dead-letter")
    # Both workers stayed alive through the poison and did real work.
    assert sum(report.results_by_worker.values()) == 11


def test_unexpected_worker_error_is_recorded_not_silent(rt, monkeypatch):
    """Satellite: a non-connection crash inside the loop must record a
    worker-error event and leave the state machine stopped, not unwind
    the host silently while it still claims to be Running."""
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=10, task_cost=100.0)
    framework = AdaptiveClusterFramework(rt, cluster, app, robust_config())

    def experiment():
        framework.start()
        broken = framework.worker_hosts[0]
        monkeypatch.setattr(
            broken, "_one_task",
            lambda proxy, template: (_ for _ in ()).throw(
                RuntimeError("corrupt reply")),
        )
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.complete                  # the healthy worker finished
    assert report.solution == sum(i * i for i in range(10))
    errors = framework.metrics.events_named("worker-error")
    assert any("corrupt reply" in p["error"] for _, p in errors)
    assert framework.worker_hosts[0].state == WorkerState.STOPPED
