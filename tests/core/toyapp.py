"""A tiny deterministic application used by core framework tests."""

from __future__ import annotations

from typing import Any

from repro.core.application import Application, ClassLoadProfile, Task


class SumOfSquares(Application):
    """Computes sum of i² for i < n, split into one task per i."""

    app_id = "toy-squares"

    def __init__(self, n: int = 10, task_cost: float = 50.0,
                 planning_cost: float = 5.0, aggregation_cost: float = 2.0) -> None:
        self.n = n
        self._task_cost = task_cost
        self._planning_cost = planning_cost
        self._aggregation_cost = aggregation_cost

    def plan(self) -> list[Task]:
        return [Task(task_id=i, payload=i) for i in range(self.n)]

    def execute(self, payload: Any) -> Any:
        return payload * payload

    def aggregate(self, results: dict[int, Any]) -> Any:
        assert len(results) == self.n
        return sum(results.values())

    def task_cost_ms(self, task: Task) -> float:
        return self._task_cost

    def planning_cost_ms(self, task: Task) -> float:
        return self._planning_cost

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        return self._aggregation_cost

    def classload_profile(self) -> ClassLoadProfile:
        return ClassLoadProfile(work_ref_ms=200.0, demand_percent=80.0,
                                bundle_bytes=50_000)
