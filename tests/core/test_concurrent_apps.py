"""Two applications sharing one cluster (separate framework deployments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig
from repro.node import testbed_small
from tests.core.toyapp import SumOfSquares


class SumOfCubes(SumOfSquares):
    app_id = "toy-cubes"

    def execute(self, payload):
        return payload ** 3


def test_two_frameworks_share_a_cluster(rt):
    cluster = testbed_small(rt, workers=3)
    squares = AdaptiveClusterFramework(
        rt, cluster, SumOfSquares(n=10, task_cost=80.0),
        FrameworkConfig(port_offset=0),
    )
    cubes = AdaptiveClusterFramework(
        rt, cluster, SumOfCubes(n=10, task_cost=80.0),
        FrameworkConfig(port_offset=1000, monitoring=False),
    )

    results = {}

    def run_squares():
        squares.start()
        results["squares"] = squares.run().solution

    def run_cubes():
        cubes.start()
        cubes.start_all_workers()
        results["cubes"] = cubes.run().solution

    def coordinator():
        a = rt.spawn(run_squares, name="squares")
        b = rt.spawn(run_cubes, name="cubes")
        a.join()
        b.join()
        squares.shutdown()
        cubes.shutdown()

    proc = rt.kernel.spawn(coordinator, name="coordinator")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished

    assert results["squares"] == sum(i * i for i in range(10))
    assert results["cubes"] == sum(i ** 3 for i in range(10))


def test_entries_never_cross_app_boundaries(rt):
    """A worker of app A must never take app B's tasks (template app_id)."""
    cluster = testbed_small(rt, workers=2)
    squares = AdaptiveClusterFramework(
        rt, cluster, SumOfSquares(n=8, task_cost=50.0),
        FrameworkConfig(monitoring=False),
    )
    cubes = AdaptiveClusterFramework(
        rt, cluster, SumOfCubes(n=8, task_cost=50.0),
        FrameworkConfig(port_offset=1000, monitoring=False),
    )

    results = {}

    def run(framework, key):
        framework.start()
        framework.start_all_workers()
        results[key] = framework.run().solution

    def coordinator():
        a = rt.spawn(lambda: run(squares, "squares"), name="a")
        b = rt.spawn(lambda: run(cubes, "cubes"), name="b")
        a.join()
        b.join()
        squares.shutdown()
        cubes.shutdown()

    proc = rt.kernel.spawn(coordinator, name="coordinator")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error

    # Cross-contamination would corrupt one of the sums.
    assert results["squares"] == sum(i * i for i in range(8))
    assert results["cubes"] == sum(i ** 3 for i in range(8))
