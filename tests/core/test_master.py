"""Master module unit tests (direct space, no workers needed)."""

from __future__ import annotations

import pytest

from repro.core.entries import ResultEntry, TaskEntry
from repro.core.master import Master
from repro.core.metrics import Metrics
from repro.net import Network
from repro.node.machine import FAST_PC, Node
from repro.tuplespace import JavaSpace
from tests.core.toyapp import SumOfSquares


def make_master(rt, app):
    net = Network(rt)
    node = Node(rt, net, "master", FAST_PC)
    space = JavaSpace(rt)
    return Master(rt, node, space, app, Metrics(rt)), space, node


def echo_worker(rt, space, app):
    """Minimal in-process worker: takes tasks, writes results."""
    def loop():
        template = TaskEntry(app_id=app.app_id)
        while True:
            task = space.take(template, timeout_ms=500.0)
            if task is None:
                return
            space.write(
                ResultEntry(app.app_id, task.task_id, app.execute(task.payload),
                            worker="echo")
            )

    rt.spawn(loop, name="echo-worker")


def test_master_plans_all_tasks_into_space(rt):
    app = SumOfSquares(n=5, task_cost=0.0)
    master, space, _ = make_master(rt, app)
    echo_worker(rt, space, app)

    proc = rt.kernel.spawn(master.run, name="master")
    rt.kernel.run_until_idle()
    report = proc.result
    assert report.task_count == 5
    assert report.solution == sum(i * i for i in range(5))
    assert space.count(TaskEntry()) == 0        # all consumed
    assert space.count(ResultEntry()) == 0      # all aggregated


def test_master_charges_planning_cpu(rt):
    app = SumOfSquares(n=10, planning_cost=50.0, aggregation_cost=0.0)
    master, space, node = make_master(rt, app)
    echo_worker(rt, space, app)

    proc = rt.kernel.spawn(master.run, name="master")
    rt.kernel.run_until_idle()
    report = proc.result
    # 10 tasks × 50 ms planning on the 800 MHz master.
    assert report.planning_ms == pytest.approx(500.0, rel=0.05)
    assert node.cpu.busy_ms >= 500.0


def test_master_aggregation_waits_for_results(rt):
    app = SumOfSquares(n=3, task_cost=0.0, planning_cost=0.0,
                       aggregation_cost=0.0)
    master, space, _ = make_master(rt, app)

    def slow_worker():
        template = TaskEntry(app_id=app.app_id)
        for _ in range(3):
            task = space.take(template, timeout_ms=None)
            rt.sleep(200.0)  # slow compute
            space.write(ResultEntry(app.app_id, task.task_id,
                                    app.execute(task.payload), worker="slow"))

    rt.spawn(slow_worker, name="slow")
    proc = rt.kernel.spawn(master.run, name="master")
    rt.kernel.run_until_idle()
    report = proc.result
    assert report.aggregation_ms >= 550.0  # dominated by worker pace


def test_report_attributes_results_to_workers(rt):
    app = SumOfSquares(n=4, task_cost=0.0)
    master, space, _ = make_master(rt, app)
    echo_worker(rt, space, app)

    proc = rt.kernel.spawn(master.run, name="master")
    rt.kernel.run_until_idle()
    assert proc.result.results_by_worker == {"echo": 4}


def test_max_task_overhead_reflects_costliest_phase_item(rt):
    app = SumOfSquares(n=4, planning_cost=10.0, aggregation_cost=80.0)
    master, space, _ = make_master(rt, app)
    echo_worker(rt, space, app)

    proc = rt.kernel.spawn(master.run, name="master")
    rt.kernel.run_until_idle()
    assert proc.result.max_task_overhead_ms == pytest.approx(80.0, rel=0.1)


def test_planning_plus_aggregation_property(rt):
    app = SumOfSquares(n=4)
    master, space, _ = make_master(rt, app)
    echo_worker(rt, space, app)

    proc = rt.kernel.spawn(master.run, name="master")
    rt.kernel.run_until_idle()
    report = proc.result
    assert report.planning_plus_aggregation_ms == pytest.approx(
        report.planning_ms + report.aggregation_ms
    )
    assert report.parallel_ms == pytest.approx(
        report.planning_plus_aggregation_ms
    )
