"""Worker pipelining: prefetched batches complete, drain, and release.

A prefetching worker holds several taken tasks at once (plus, in steady
state, a carried next batch from the combined write-back RPC).  The
contract under Pause/Stop is *drain, never abandon*: every taken task is
either computed or put back where another worker can take it.
"""

from __future__ import annotations

import pytest

from repro.core.codeserver import CODE_SERVER_PORT, CodeServer
from repro.core.entries import ResultEntry, TaskEntry
from repro.core.metrics import Metrics
from repro.core.signals import Signal
from repro.core.states import WorkerState
from repro.core.worker import WorkerHost
from repro.net import Address, Network
from repro.node.machine import FAST_PC, Node
from repro.tuplespace import JavaSpace, SpaceServer
from tests.core.toyapp import SumOfSquares

SPACE_ADDR = Address("master", 4155)


@pytest.fixture()
def env(rt):
    net = Network(rt)
    space = JavaSpace(rt)
    SpaceServer(rt, space, net, SPACE_ADDR).start()
    app = SumOfSquares(n=12, task_cost=100.0)
    code = CodeServer(rt, net, "master")
    code.publish(app.app_id, app.classload_profile())
    code.start()

    def make_host(prefetch, transactional=False):
        node = Node(rt, net, "w1", FAST_PC)
        return WorkerHost(
            rt, node, app,
            space_address=SPACE_ADDR,
            code_server=Address("master", CODE_SERVER_PORT),
            netmgmt_address=None,
            metrics=Metrics(rt),
            worker_poll_ms=50.0,
            prefetch=prefetch,
            transactional=transactional,
        )

    return net, space, app, make_host


def fill_tasks(space, app, n):
    for i in range(n):
        space.write(TaskEntry(app.app_id, i, i))


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="driver")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


@pytest.mark.parametrize("transactional", [False, True])
def test_prefetched_worker_completes_every_task(rt, env, transactional):
    net, space, app, make_host = env
    host = make_host(prefetch=4, transactional=transactional)
    host.running = True

    def body():
        fill_tasks(space, app, 12)
        host.handle_signal(Signal.START)
        rt.sleep(6_000.0)
        results = space.count(ResultEntry())
        host.stop()
        return results, host.tasks_done

    results, done = drive(rt, body)
    assert results == 12
    assert done == 12


@pytest.mark.parametrize("transactional", [False, True])
def test_stop_mid_batch_conserves_every_task(rt, env, transactional):
    net, space, app, make_host = env
    host = make_host(prefetch=4, transactional=transactional)
    host.running = True

    def body():
        fill_tasks(space, app, 12)
        host.handle_signal(Signal.START)
        rt.sleep(600.0)                  # mid-batch: several tasks in hand
        host.handle_signal(Signal.STOP)
        rt.sleep(2_000.0)                # give the drain time to land
        remaining = space.count(TaskEntry())
        results = space.count(ResultEntry())
        return host.state, remaining, results

    state, remaining, results = drive(rt, body)
    assert state == WorkerState.STOPPED
    # Conservation: the prefetched batch was drained or put back — no
    # task is stuck invisibly on a stopped worker.
    assert remaining + results == 12
    assert 0 < results < 12              # stopped mid-run, not at either end


def test_pause_freezes_progress_without_losing_the_carry(rt, env):
    net, space, app, make_host = env
    host = make_host(prefetch=4, transactional=True)
    host.running = True

    def body():
        fill_tasks(space, app, 12)
        host.handle_signal(Signal.START)
        rt.sleep(600.0)
        host.handle_signal(Signal.PAUSE)
        rt.sleep(1_000.0)
        frozen = host.tasks_done
        visible = space.count(TaskEntry()) + space.count(ResultEntry())
        rt.sleep(1_000.0)
        still = host.tasks_done
        host.handle_signal(Signal.RESUME)
        rt.sleep(6_000.0)
        host.stop()
        return frozen, still, visible, host.tasks_done

    frozen, still, visible, done = drive(rt, body)
    assert frozen == still               # no progress while paused
    # While paused, any carried-but-uncomputed tasks were released back
    # to the space: everything is accounted for in public state.
    assert visible == 12
    assert done == 12                    # resume finishes the job


def test_prefetch_takes_tasks_in_multi_entry_batches(rt, env):
    net, space, app, make_host = env

    def batch_sizes(prefetch):
        host = make_host(prefetch=prefetch)
        host.running = True
        sizes = []
        original = space.take_multiple

        def spy(*a, **kw):
            taken = original(*a, **kw)
            if taken:
                sizes.append(len(taken))
            return taken

        space.take_multiple = spy

        def body():
            fill_tasks(space, app, 12)
            host.handle_signal(Signal.START)
            rt.sleep(6_000.0)
            host.stop()
            return space.count(ResultEntry())

        results = drive(rt, body)
        space.take_multiple = original
        assert results >= 12
        return sizes

    assert batch_sizes(1) == []          # prefetch=1 keeps the single-take path
    pipelined = batch_sizes(4)
    assert pipelined and max(pipelined) > 1
    assert sum(pipelined) == 12          # batches cover the job exactly once
