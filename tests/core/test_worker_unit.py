"""Worker host unit tests: signal handling without a network management
module (signals injected directly via ``handle_signal``)."""

from __future__ import annotations

import pytest

from repro.core.application import ClassLoadProfile
from repro.core.codeserver import CODE_SERVER_PORT, CodeServer
from repro.core.entries import ResultEntry, TaskEntry
from repro.core.metrics import Metrics
from repro.core.signals import Signal
from repro.core.states import WorkerState
from repro.core.worker import WorkerHost
from repro.net import Address, Network
from repro.node.machine import FAST_PC, Node
from repro.tuplespace import JavaSpace, SpaceServer
from tests.core.toyapp import SumOfSquares

SPACE_ADDR = Address("master", 4155)


@pytest.fixture()
def env(rt):
    net = Network(rt)
    space = JavaSpace(rt)
    SpaceServer(rt, space, net, SPACE_ADDR).start()
    app = SumOfSquares(n=6, task_cost=100.0)
    code = CodeServer(rt, net, "master")
    code.publish(app.app_id, app.classload_profile())
    code.start()
    node = Node(rt, net, "w1", FAST_PC)
    host = WorkerHost(
        rt, node, app,
        space_address=SPACE_ADDR,
        code_server=Address("master", CODE_SERVER_PORT),
        netmgmt_address=None,           # unmanaged: direct signal injection
        metrics=Metrics(rt),
        worker_poll_ms=50.0,
    )
    host.running = True
    return net, space, app, host


def fill_tasks(space, app, n):
    for i in range(n):
        space.write(TaskEntry(app.app_id, i, i))


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="driver")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_start_signal_spawns_worker_that_computes(rt, env):
    net, space, app, host = env

    def body():
        fill_tasks(space, app, 6)
        host.handle_signal(Signal.START)
        rt.sleep(3000.0)
        results = space.count(ResultEntry())
        host.stop()
        return results, host.tasks_done, host.state

    results, done, state = drive(rt, body)
    assert results == 6
    assert done == 6
    assert state == WorkerState.RUNNING


def test_illegal_signal_recorded_and_ignored(rt, env):
    net, space, app, host = env

    def body():
        host.handle_signal(Signal.RESUME)   # illegal in STOPPED
        return host.state

    assert drive(rt, body) == WorkerState.STOPPED
    events = host.metrics.events_named("illegal-signal")
    assert len(events) == 1
    assert events[0][1]["signal"] == "resume"


def test_pause_blocks_between_tasks_and_resume_continues(rt, env):
    net, space, app, host = env

    def body():
        fill_tasks(space, app, 6)
        host.handle_signal(Signal.START)
        rt.sleep(700.0)                  # a few tasks in
        host.handle_signal(Signal.PAUSE)
        rt.sleep(1000.0)
        paused_done = host.tasks_done
        rt.sleep(1000.0)
        still_done = host.tasks_done     # no progress while paused
        host.handle_signal(Signal.RESUME)
        rt.sleep(2000.0)
        host.stop()
        return paused_done, still_done, host.tasks_done

    paused_done, still_done, final_done = drive(rt, body)
    assert paused_done == still_done     # frozen while paused
    assert final_done == 6               # all completed after resume


def test_stop_lets_current_task_finish(rt, env):
    net, space, app, host = env

    def body():
        fill_tasks(space, app, 6)
        host.handle_signal(Signal.START)
        rt.sleep(600.0)                 # worker mid-task
        before = host.tasks_done
        host.handle_signal(Signal.STOP)
        rt.sleep(500.0)
        after = host.tasks_done
        return before, after, host.state, space.count(ResultEntry())

    before, after, state, results = drive(rt, body)
    assert state == WorkerState.STOPPED
    assert after >= before              # possibly +1: the in-flight task
    assert after <= before + 1
    assert results == after             # every finished task produced a result


def test_stop_start_cycle_reloads_classes(rt, env):
    net, space, app, host = env

    def body():
        fill_tasks(space, app, 6)
        host.handle_signal(Signal.START)
        rt.sleep(800.0)
        host.handle_signal(Signal.STOP)
        rt.sleep(500.0)
        host.handle_signal(Signal.START)
        rt.sleep(3000.0)
        host.stop()
        return host.engine.loads, host.tasks_done

    loads, done = drive(rt, body)
    assert loads == 2
    assert done == 6


def test_worker_time_spans_first_take_to_last_result(rt, env):
    net, space, app, host = env

    def body():
        fill_tasks(space, app, 3)
        host.handle_signal(Signal.START)
        rt.sleep(2000.0)
        host.stop()
        return host.worker_time_ms(), host.first_take_ms, host.last_result_ms

    span, first, last = drive(rt, body)
    assert first is not None and last is not None
    assert span == pytest.approx(last - first)
    assert span >= 3 * 100.0            # at least the compute time


def test_worker_time_none_before_any_task(rt, env):
    net, space, app, host = env
    assert host.worker_time_ms() is None


def test_compute_real_false_writes_placeholder_results(rt, env):
    net, space, app, host = env
    host.compute_real = False

    def body():
        fill_tasks(space, app, 2)
        host.handle_signal(Signal.START)
        rt.sleep(1500.0)
        results = [space.take(ResultEntry(), timeout_ms=0.0) for _ in range(2)]
        host.stop()
        return [r.payload for r in results if r is not None]

    assert drive(rt, body) == [None, None]
