"""Stale-data guard: stop trusting load samples the agent stopped sending.

Unit half: :meth:`InferenceEngine.observe_failure` as a pure rule.
Integration half: a worker whose SNMP agent dies keeps computing on a
node the master can no longer see — after ``staleness_ms`` the module
stops it instead of guessing.
"""

from __future__ import annotations

import pytest

from repro.core.inference import InferenceEngine
from repro.core.metrics import Metrics
from repro.core.netmgmt import NetworkManagementModule
from repro.core.signals import Signal
from repro.core.states import WorkerState
from repro.net import Network
from repro.node.machine import FAST_PC, Node
from tests.conftest import run_in_sim

STALENESS_MS = 2_000.0


# -- the rule ----------------------------------------------------------------


def test_guard_disabled_by_default():
    engine = InferenceEngine()
    record = engine.register("w1")
    record.assumed_state = WorkerState.RUNNING
    assert engine.observe_failure(record.worker_id, 1e9) is None
    assert record.assumed_state == WorkerState.RUNNING


def test_running_worker_with_stale_sample_is_stopped():
    engine = InferenceEngine(staleness_ms=1_000.0)
    record = engine.register("w1")
    engine.observe(record.worker_id, 5.0, now_ms=0.0)      # idle → Start
    assert record.assumed_state == WorkerState.RUNNING
    assert engine.observe_failure(record.worker_id, 500.0) is None   # fresh
    assert engine.observe_failure(record.worker_id, 1_500.0) == Signal.STOP
    assert record.assumed_state == WorkerState.STOPPED
    # Already stopped: a still-failing agent fires nothing further.
    assert engine.observe_failure(record.worker_id, 3_000.0) is None


def test_paused_worker_with_stale_sample_is_stopped():
    engine = InferenceEngine(staleness_ms=1_000.0)
    record = engine.register("w1")
    record.assumed_state = WorkerState.PAUSED
    record.last_sample_ms = 0.0
    assert engine.observe_failure(record.worker_id, 2_000.0) == Signal.STOP


def test_never_sampled_stopped_worker_fires_nothing():
    engine = InferenceEngine(staleness_ms=1_000.0)
    record = engine.register("w1")
    assert engine.observe_failure(record.worker_id, 5_000.0) is None
    assert record.assumed_state == WorkerState.STOPPED


def test_guard_resets_the_hysteresis_streak():
    """After a stale Stop, recovery decisions restart their debounce."""
    engine = InferenceEngine(hysteresis_samples=2, staleness_ms=1_000.0)
    record = engine.register("w1")
    engine.observe(record.worker_id, 5.0, now_ms=0.0)
    engine.observe(record.worker_id, 5.0, now_ms=100.0)    # streak fires Start
    assert record.assumed_state == WorkerState.RUNNING
    assert engine.observe_failure(record.worker_id, 2_000.0) == Signal.STOP
    # One fresh idle sample is not enough to restart the worker…
    assert engine.observe(record.worker_id, 5.0, now_ms=2_100.0) is None
    # …two in the same band are.
    assert engine.observe(record.worker_id, 5.0, now_ms=2_200.0) == Signal.START


# -- the module --------------------------------------------------------------


@pytest.fixture()
def env(rt):
    net = Network(rt)
    node = Node(rt, net, "w1", FAST_PC)
    node.start_agent()
    module = NetworkManagementModule(rt, net, "master", Metrics(rt),
                                     poll_interval_ms=500.0,
                                     staleness_ms=STALENESS_MS)
    record = module.inference.register("w1")
    return net, node, module, record


def test_dead_agent_eventually_stops_the_worker(rt, env):
    net, node, module, record = env

    def proc():
        assert module.poll_once(record) == Signal.START    # healthy + idle
        node.stop_agent()
        first = module.poll_once(record)                   # still fresh
        rt.sleep(STALENESS_MS + 500.0)
        second = module.poll_once(record)                  # now stale
        return first, second

    first, second = run_in_sim(rt, proc)
    assert first is None
    assert second == Signal.STOP
    assert record.assumed_state == WorkerState.STOPPED
    assert module.stats["stale_stops"] == 1
    assert module.stats["poll_failures"] == 2
    events = module.metrics.events_named("stale-sample")
    assert len(events) == 1
    assert events[0][1]["worker"] == "w1"


def test_recovered_agent_restarts_the_worker(rt, env):
    net, node, module, record = env

    def proc():
        assert module.poll_once(record) == Signal.START
        node.stop_agent()
        rt.sleep(STALENESS_MS + 500.0)
        assert module.poll_once(record) == Signal.STOP
        node.start_agent()
        rt.sleep(500.0)
        return module.poll_once(record)                    # fresh idle sample

    assert run_in_sim(rt, proc) == Signal.START
    assert record.assumed_state == WorkerState.RUNNING
