"""Master checkpoint/resume: crash the coordinator, finish exactly-once.

The checkpoint is a :class:`MasterCheckpointEntry` in the space itself —
the same survivability story the paper gives worker state, applied to
the coordinator's progress record.
"""

from __future__ import annotations

import pytest

from repro.core.entries import MasterCheckpointEntry, ResultEntry, TaskEntry
from repro.core.master import Master
from repro.core.metrics import Metrics
from repro.errors import MasterCrashedError
from repro.node import testbed_small
from repro.runtime import SimulatedRuntime
from repro.tuplespace.space import JavaSpace
from tests.core.toyapp import SumOfSquares

N = 12
EXPECTED = sum(i * i for i in range(N))


@pytest.fixture
def runtime():
    rt = SimulatedRuntime()
    yield rt
    rt.shutdown()


def make_master(runtime, space, metrics, **kwargs):
    cluster = testbed_small(runtime, workers=1)
    app = SumOfSquares(n=N, task_cost=10.0)
    app.aggregate = lambda results: sum(results.values())  # type: ignore
    kwargs.setdefault("checkpoint_ms", 100.0)
    kwargs.setdefault("dead_letter_poll_ms", 100.0)
    return Master(runtime, cluster.master, space, app, metrics,
                  model_time=False, **kwargs)


def consumer(runtime, space, app_id, delay_ms=50.0, computed=None):
    """A scripted worker: takes tasks, writes squares after ``delay_ms``."""
    idle = 0
    while idle < 5:
        entry = space.take(TaskEntry(app_id=app_id), timeout_ms=200.0)
        if entry is None:
            idle += 1
            continue
        idle = 0
        runtime.sleep(delay_ms)
        if computed is not None:
            computed.append(entry.task_id)
        space.write(ResultEntry(app_id=app_id, task_id=entry.task_id,
                                payload=entry.payload * entry.payload,
                                worker="w0"))


def drive(runtime, root):
    proc = runtime.kernel.spawn(root, name="checkpoint-root")
    runtime.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def checkpoints_in(space, app_id="toy-squares"):
    return space.contents(MasterCheckpointEntry(app_id=app_id))


def test_checkpoint_swap_keeps_exactly_the_newest(runtime):
    """Write seq+1 before taking seq: after each cycle exactly the newest
    checkpoint is in the space, and a crash mid-swap leaves at least one."""
    space = JavaSpace(runtime)
    master = make_master(runtime, space, Metrics(runtime))
    tasks = master.app.plan()

    def scenario():
        master._write_checkpoint(tasks, {0: 0}, {}, {})
        assert [c.seq for c in checkpoints_in(space)] == [1]
        master._write_checkpoint(tasks, {0: 0, 1: 1}, {}, {})
        assert [c.seq for c in checkpoints_in(space)] == [2]
        assert master.checkpoints_written == 2
        # Crash-window shape: both seqs present → resume adopts the max.
        master._write(MasterCheckpointEntry(
            app_id=master.app.app_id, seq=3, results={},
            dead={}, by_worker={}, outstanding=[]))
        assert master._adopt_checkpoint().seq == 3

    drive(runtime, scenario)


def test_completed_run_clears_every_checkpoint(runtime):
    space = JavaSpace(runtime)
    metrics = Metrics(runtime)
    master = make_master(runtime, space, metrics)

    def root():
        runtime.spawn(lambda: consumer(runtime, space, master.app.app_id),
                      name="consumer")
        return master.run()

    report = drive(runtime, root)
    assert report.complete
    assert report.solution == EXPECTED
    assert report.checkpoints_written >= 2        # ~600ms run, 100ms cadence
    assert checkpoints_in(space) == []            # settled: all retired
    assert metrics.events_named("master-checkpoint")


def test_resume_adopts_highest_seq_and_reseeds_only_untraced_tasks(runtime):
    """A cold master facing surviving checkpoints must adopt the newest,
    skip its settled tasks, and re-plan only the ones with no trace."""
    space = JavaSpace(runtime)
    master = make_master(runtime, space, Metrics(runtime))
    app_id = master.app.app_id
    settled = {0: 0, 1: 1, 2: 4}
    computed = []

    def root():
        # Two surviving checkpoints — the crash-mid-swap worst case.
        space.write(MasterCheckpointEntry(
            app_id=app_id, seq=1, results={0: 0}, dead={},
            by_worker={"w0": 1}, outstanding=list(range(1, N))))
        space.write(MasterCheckpointEntry(
            app_id=app_id, seq=2, results=dict(settled), dead={},
            by_worker={"w0": 3}, outstanding=list(range(3, N))))
        runtime.spawn(lambda: consumer(runtime, space, app_id,
                                       computed=computed),
                      name="consumer")
        return master.run()

    report = drive(runtime, root)
    assert report.complete
    assert report.resumed_from_seq == 2
    assert report.solution == EXPECTED
    # The settled prefix was never recomputed — only re-seeded tasks ran.
    assert sorted(computed) == list(range(3, N))
    assert checkpoints_in(space) == []


def test_killed_master_resumes_and_aggregates_exactly_once(runtime):
    """Kill the master after ≥1 checkpoint; its successor must finish the
    job with zero duplicate aggregations (judged per final incarnation)."""
    space = JavaSpace(runtime)
    metrics1, metrics2 = Metrics(runtime), Metrics(runtime)
    first = make_master(runtime, space, metrics1)
    second = make_master(runtime, space, metrics2)
    app_id = first.app.app_id

    def root():
        runtime.spawn(lambda: consumer(runtime, space, app_id),
                      name="consumer")
        runtime.call_later(400.0, first.crash)
        with pytest.raises(MasterCrashedError):
            first.run()
        assert first.checkpoints_written >= 1
        assert checkpoints_in(space)          # progress survived the kill
        return second.run()

    report = drive(runtime, root)
    assert report.complete
    assert report.solution == EXPECTED
    assert report.resumed_from_seq >= 1
    # Exactly-once at the survivor: no task folded twice.
    folded = [p["task_id"] for _, p in metrics2.events_named("result-aggregated")]
    assert len(folded) == len(set(folded))
    assert checkpoints_in(space) == []


def test_checkpoint_lease_ages_out_abandoned_runs(runtime):
    """An abandoned run's checkpoint must not outlive its lease — a later
    unrelated run starts clean instead of adopting stale progress."""
    space = JavaSpace(runtime)
    master = make_master(runtime, space, Metrics(runtime),
                         checkpoint_lease_ms=500.0)
    tasks = master.app.plan()

    def scenario():
        master._write_checkpoint(tasks, {0: 0}, {}, {})
        assert checkpoints_in(space)
        runtime.sleep(1_000.0)
        assert checkpoints_in(space) == []
        assert master._adopt_checkpoint() is None

    drive(runtime, scenario)
