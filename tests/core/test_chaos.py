"""The robustness acceptance scenario, across seeds.

A seeded fault campaign (worker crash + link flap + space-server restart)
plus one poison task must still produce the correct partial solution,
dead-letter the poison task in the MasterReport, and replay an identical
recovery-event trace from the same seed.  CI parametrizes the whole
fault-tolerance suite over several seeds via the ``CHAOS_SEED`` env var.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.chaos import chaos_experiment, default_chaos_plan

SEEDS = [1, 2, 3]
_env_seed = os.environ.get("CHAOS_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_campaign_completes_with_correct_partial_solution(seed):
    result = chaos_experiment(seed=seed)
    report = result.report
    # Every injectable failure mode actually fired during the run.
    assert result.faults_injected == 3
    assert result.faults_healed == 2            # crash is permanent
    # Correct solution over the non-poison tasks, exactly once each.
    assert result.correct, result.format_summary()
    assert sum(report.results_by_worker.values()) == 23
    # The poison task is reported dead, not silently lost.
    assert not report.complete
    assert list(report.dead_letters) == [7]
    assert "poison task 7" in report.dead_letters[7]
    # The crashed worker never contributes after its death.
    crash_t = next(t for t, n, p in result.trace
                   if n == "fault-injected" and dict(p)["kind"] == "worker-crash")
    assert crash_t == 2_500.0
    # Recovery observability: the outages are visible in the trace.
    names = {n for _, n, _ in result.trace}
    assert {"fault-injected", "fault-healed", "proxy-reconnected",
            "worker-reconnect", "worker-recovered", "dead-letter",
            "dead-letter-received", "task-requeued"} <= names


def test_same_seed_replays_identical_trace():
    seed = int(os.environ.get("CHAOS_SEED", "42"))
    first = chaos_experiment(seed=seed)
    second = chaos_experiment(seed=seed)
    assert first.trace == second.trace
    assert first.report.solution == second.report.solution
    assert first.report.dead_letters == second.report.dead_letters


def test_random_plans_differ_across_seeds_but_replay_within_one():
    a = chaos_experiment(seed=5, random_plan=True)
    b = chaos_experiment(seed=5, random_plan=True)
    c = chaos_experiment(seed=6, random_plan=True)
    assert a.trace == b.trace
    assert a.trace != c.trace
    assert a.correct and c.correct


def test_default_plan_covers_all_failure_modes():
    plan = default_chaos_plan(["w1", "w2", "w3"])
    kinds = [e.kind for e in plan]
    assert kinds == ["worker-crash", "link-flap", "server-restart"]
