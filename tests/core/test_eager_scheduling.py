"""Eager scheduling (Charlotte-style straggler replication, Table 1)."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig
from repro.node import testbed_small
from tests.core.toyapp import SumOfSquares


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def test_straggler_rescued_by_replica(rt):
    """A crashed worker's in-flight task (no transactions!) gets
    re-executed by a replica instead of hanging the master forever."""
    cluster = testbed_small(rt, workers=3)
    app = SumOfSquares(n=30, task_cost=400.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app,
        FrameworkConfig(eager_scheduling=True, straggler_timeout_ms=2_000.0,
                        transactional_takes=False),
    )

    def killer():
        rt.sleep(1_200.0)  # mid-computation
        framework.worker_hosts[0].crash()

    def experiment():
        framework.start()
        rt.spawn(killer, name="killer")
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(30))
    assert framework.master.replicated_tasks >= 1


def test_no_replication_on_healthy_run(rt):
    cluster = testbed_small(rt, workers=3)
    framework = AdaptiveClusterFramework(
        rt, cluster, SumOfSquares(n=12, task_cost=100.0),
        FrameworkConfig(eager_scheduling=True, straggler_timeout_ms=5_000.0),
    )

    def experiment():
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    report = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(12))
    assert framework.master.replicated_tasks == 0
    assert framework.master.duplicate_results == 0


def test_duplicate_results_ignored_and_drained(rt):
    """If the straggler eventually finishes too, its duplicate result is
    consumed without corrupting the aggregate, and the space ends clean."""
    cluster = testbed_small(rt, workers=2)
    app = SumOfSquares(n=8, task_cost=400.0)
    framework = AdaptiveClusterFramework(
        rt, cluster, app,
        FrameworkConfig(eager_scheduling=True, straggler_timeout_ms=1_500.0,
                        poll_interval_ms=400.0),
    )
    slow_node = cluster.workers[0]

    def slowdown():
        # Pause-band load makes worker1 a straggler mid-task, then releases
        # it so both the original and the replica eventually finish.
        rt.sleep(1_800.0)
        slow_node.cpu.set_background("user", 74.0)
        rt.sleep(6_000.0)
        slow_node.cpu.clear_background("user")

    def experiment():
        framework.start()
        rt.spawn(slowdown, name="slowdown")
        report = framework.run()
        rt.sleep(4_000.0)  # let the released straggler finish its write
        from repro.core.entries import ResultEntry, TaskEntry

        leftovers = (framework.space.count(TaskEntry()),
                     framework.space.count(ResultEntry()))
        framework.shutdown()
        return report, leftovers

    report, leftovers = drive(rt, experiment)
    assert report.solution == sum(i * i for i in range(8))


def test_replication_capped(rt):
    """A task is replicated at most max_replicas times."""
    from repro.core.entries import ResultEntry, TaskEntry
    from repro.core.master import Master
    from repro.core.metrics import Metrics
    from repro.net import Network
    from repro.node.machine import FAST_PC, Node
    from repro.tuplespace import JavaSpace

    net = Network(rt)
    node = Node(rt, net, "master", FAST_PC)
    space = JavaSpace(rt)
    app = SumOfSquares(n=2, task_cost=0.0)
    master = Master(rt, node, space, app, Metrics(rt),
                    eager_scheduling=True, straggler_timeout_ms=200.0,
                    max_replicas=2)

    def black_hole_worker():
        # Takes every task and never returns results.
        template = TaskEntry(app_id=app.app_id)
        while True:
            if space.take(template, timeout_ms=500.0) is None:
                return

    def experiment():
        rt.spawn(black_hole_worker, name="void")
        rt.spawn(master.run, name="master")  # can never finish
        rt.sleep(5_000.0)
        replicated = master.replicated_tasks
        master.cancel()  # unblock the doomed run
        return replicated

    proc = rt.kernel.spawn(experiment, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    # 2 tasks × max 2 replicas each.
    assert proc.result == 4
