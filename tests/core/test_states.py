"""Worker state machine (Fig. 5): exhaustive transition coverage."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import IllegalTransitionError
from repro.core.signals import Signal
from repro.core.states import WorkerState, WorkerStateMachine


LEGAL = {
    (WorkerState.STOPPED, Signal.START): WorkerState.RUNNING,
    (WorkerState.RUNNING, Signal.STOP): WorkerState.STOPPED,
    (WorkerState.RUNNING, Signal.PAUSE): WorkerState.PAUSED,
    (WorkerState.PAUSED, Signal.RESUME): WorkerState.RUNNING,
    (WorkerState.PAUSED, Signal.STOP): WorkerState.STOPPED,
}


def test_initial_state_is_stopped():
    assert WorkerStateMachine().state == WorkerState.STOPPED


@pytest.mark.parametrize("state,signal", LEGAL.keys())
def test_legal_transitions(state, signal):
    machine = WorkerStateMachine(initial=state)
    assert machine.apply(signal) == LEGAL[(state, signal)]


@pytest.mark.parametrize(
    "state,signal",
    [
        (s, sig)
        for s in WorkerState
        for sig in Signal
        if (s, sig) not in LEGAL
    ],
)
def test_illegal_transitions_rejected(state, signal):
    machine = WorkerStateMachine(initial=state)
    assert not machine.can_apply(signal)
    with pytest.raises(IllegalTransitionError):
        machine.apply(signal)
    assert machine.state == state  # unchanged after rejection


def test_paper_scenario_start_stop_restart_pause_resume():
    """The exact signal sequence of the Figs 9–11 experiments."""
    machine = WorkerStateMachine()
    sequence = [Signal.START, Signal.STOP, Signal.START, Signal.PAUSE, Signal.RESUME]
    states = [machine.apply(s) for s in sequence]
    assert states == [
        WorkerState.RUNNING,
        WorkerState.STOPPED,
        WorkerState.RUNNING,
        WorkerState.PAUSED,
        WorkerState.RUNNING,
    ]


def test_history_records_transitions():
    machine = WorkerStateMachine()
    machine.apply(Signal.START)
    machine.apply(Signal.PAUSE)
    assert machine.history == [
        (WorkerState.STOPPED, Signal.START, WorkerState.RUNNING),
        (WorkerState.RUNNING, Signal.PAUSE, WorkerState.PAUSED),
    ]


def test_transition_callback_invoked():
    seen = []
    machine = WorkerStateMachine(
        on_transition=lambda old, sig, new: seen.append((old, sig, new))
    )
    machine.apply(Signal.START)
    assert seen == [(WorkerState.STOPPED, Signal.START, WorkerState.RUNNING)]


@given(signals=st.lists(st.sampled_from(list(Signal)), max_size=30))
def test_state_always_consistent_with_fig5(signals):
    """Property: applying any signal soup never leaves the Fig. 5 graph."""
    machine = WorkerStateMachine()
    for signal in signals:
        if machine.can_apply(signal):
            machine.apply(signal)
        else:
            with pytest.raises(IllegalTransitionError):
                machine.apply(signal)
    # Replaying history from the initial state reproduces the final state.
    replay = WorkerStateMachine()
    for _, signal, _ in machine.history:
        replay.apply(signal)
    assert replay.state == machine.state
