"""Inference-engine hysteresis: debouncing signal flapping."""

from __future__ import annotations

import pytest

from repro.core.inference import InferenceEngine
from repro.core.signals import Signal


def observe_all(engine, worker_id, loads):
    return [engine.observe(worker_id, load, now_ms=i * 1000.0)
            for i, load in enumerate(loads)]


def test_flapping_load_generates_signal_storm_without_hysteresis():
    engine = InferenceEngine()
    record = engine.register("w")
    # Load oscillates across the 25 % idle threshold every sample.
    loads = [10.0, 30.0] * 6
    signals = [s for s in observe_all(engine, record.worker_id, loads) if s]
    # start, then pause/resume churn on every flip.
    assert signals[0] == Signal.START
    assert signals.count(Signal.PAUSE) >= 5
    assert signals.count(Signal.RESUME) >= 5


def test_hysteresis_suppresses_flapping():
    engine = InferenceEngine(hysteresis_samples=3)
    record = engine.register("w")
    loads = [10.0, 30.0] * 6
    signals = [s for s in observe_all(engine, record.worker_id, loads) if s]
    # No band ever persists 3 samples: not even a Start fires.
    assert signals == []


def test_hysteresis_passes_sustained_changes():
    engine = InferenceEngine(hysteresis_samples=2)
    record = engine.register("w")
    signals = observe_all(
        engine, record.worker_id,
        [5.0, 5.0,          # sustained idle → Start (on 2nd sample)
         40.0, 40.0,        # sustained busy → Pause
         90.0, 90.0,        # sustained load → Stop
         5.0, 5.0],         # sustained idle → Start again
    )
    assert [s for s in signals if s] == [
        Signal.START, Signal.PAUSE, Signal.STOP, Signal.START,
    ]


def test_hysteresis_delays_by_exactly_n_minus_one_samples():
    engine = InferenceEngine(hysteresis_samples=3)
    record = engine.register("w")
    signals = observe_all(engine, record.worker_id, [5.0, 5.0, 5.0])
    assert signals == [None, None, Signal.START]


def test_streaks_tracked_per_worker():
    engine = InferenceEngine(hysteresis_samples=2)
    a = engine.register("a")
    b = engine.register("b")
    assert engine.observe(a.worker_id, 5.0, 0.0) is None
    assert engine.observe(b.worker_id, 5.0, 0.0) is None   # b's own streak
    assert engine.observe(a.worker_id, 5.0, 1000.0) == Signal.START


def test_invalid_hysteresis_rejected():
    with pytest.raises(ValueError):
        InferenceEngine(hysteresis_samples=0)
