"""Framework-level sharding: result equivalence, determinism, kill-shard.

Partitioning the space is a transport-layer change — the job's result
must be byte-identical to the single-space run, per seed, chaos and all;
and killing one shard's primary must fail over that shard alone while
the campaign still completes exactly-once.

CI's shard matrix re-runs this file with ``REPRO_SHARDS`` ∈ {1, 4, 16}
(default 4 locally), the same env-parametrization idiom as
``CHAOS_SEED`` in the fault-tolerance suite.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.chaos import (
    chaos_experiment,
    coordination_chaos_experiment,
    verify_chaos_determinism,
)

SHARDS = int(os.environ.get("REPRO_SHARDS", "4"))
#: A shard index that exists at any matrix point (1, 4, or 16 shards).
KILL_SHARD = min(1, SHARDS - 1)


@pytest.mark.parametrize("seed", [0, 3])
def test_sharded_solution_is_byte_identical_to_unsharded(seed):
    unsharded = chaos_experiment(seed=seed)
    sharded = chaos_experiment(seed=seed, shards=SHARDS)
    assert sharded.report.solution == unsharded.report.solution
    assert type(sharded.report.solution) is type(unsharded.report.solution)


def test_sharded_chaos_campaign_is_seed_deterministic():
    assert verify_chaos_determinism(seed=42, shards=SHARDS)


@pytest.mark.parametrize("seed", [1, 2])
def test_kill_shard_fails_over_that_shard_and_completes(seed):
    result = coordination_chaos_experiment(
        seed=seed, faults=(f"kill-shard:{KILL_SHARD}",), shards=SHARDS)
    assert result.correct
    assert result.faults_injected == 1
    names = [name for _, name, _ in result.trace]
    assert "space-shard-killed" in names
    assert "standby-promoted" in names
    # No duplicate aggregation: every task settled exactly once.
    task_ids = [task_id for _, task_id in result.aggregations]
    assert len(task_ids) == len(set(task_ids))
