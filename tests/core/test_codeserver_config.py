"""Code server + remote node configuration engine."""

from __future__ import annotations

import pytest

from repro.core.application import ClassLoadProfile
from repro.core.codeserver import CodeServer, download_bundle
from repro.core.config_engine import RemoteNodeConfigurationEngine
from repro.core.signals import Signal
from repro.errors import FrameworkError
from repro.net import Address, LatencyModel, Network
from repro.node.machine import FAST_PC, Node
from tests.conftest import run_in_sim

PROFILE = ClassLoadProfile(work_ref_ms=400.0, demand_percent=60.0,
                           bundle_bytes=100_000)


@pytest.fixture()
def env(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0,
                                           per_kb_ms=0.05))
    server = CodeServer(rt, net, "master")
    server.publish("my-app", PROFILE)
    server.start()
    node = Node(rt, net, "w1", FAST_PC)
    return net, server, node


def test_download_returns_profile_and_counts(rt, env):
    net, server, _ = env

    def proc():
        return download_bundle(net, "w1", server.address, "my-app")

    profile = run_in_sim(rt, proc)
    assert profile == PROFILE
    assert server.stats["downloads"] == 1
    assert server.stats["bytes_served"] == 100_000


def test_download_unknown_bundle_fails(rt, env):
    net, server, _ = env

    def proc():
        with pytest.raises(FrameworkError, match="no bundle"):
            download_bundle(net, "w1", server.address, "ghost")
        return True

    assert run_in_sim(rt, proc)


def test_bundle_transfer_pays_for_its_size(rt, env):
    net, server, _ = env

    def proc():
        t0 = rt.now()
        download_bundle(net, "w1", server.address, "my-app")
        return rt.now() - t0

    # ~100 KB at 0.05 ms/KB ≈ 5 ms of transfer plus base latencies.
    assert run_in_sim(rt, proc) >= 5.0


def test_engine_load_classes_charges_cpu_spike(rt, env):
    net, server, node = env
    engine = RemoteNodeConfigurationEngine(rt, net, node, server.address)

    def proc():
        t0 = rt.now()
        engine.load_classes("my-app")
        elapsed = rt.now() - t0
        return elapsed, engine.classes_loaded, engine.loads

    elapsed, loaded, loads = run_in_sim(rt, proc)
    # 400 ref-ms at 60 % demand on an 800 MHz node ≈ 667 ms of loading.
    assert elapsed >= 400.0 / 0.6
    assert loaded
    assert loads == 1


def test_engine_unload_and_reload_counts(rt, env):
    net, server, node = env
    engine = RemoteNodeConfigurationEngine(rt, net, node, server.address)

    def proc():
        engine.load_classes("my-app")
        engine.unload_classes()
        engine.load_classes("my-app")
        return engine.loads

    assert run_in_sim(rt, proc) == 2


def test_signal_mailbox_pause_resume_stop_flags(rt, env):
    net, server, node = env
    engine = RemoteNodeConfigurationEngine(rt, net, node, server.address)

    def proc():
        engine.deliver(Signal.PAUSE)
        paused = engine.paused
        engine.deliver(Signal.RESUME)
        resumed = not engine.paused
        engine.deliver(Signal.STOP)
        return paused, resumed, engine.stop_requested

    assert run_in_sim(rt, proc) == (True, True, True)


def test_stop_wakes_paused_worker(rt, env):
    net, server, node = env
    engine = RemoteNodeConfigurationEngine(rt, net, node, server.address)
    honored = []

    def worker():
        engine.deliver(Signal.PAUSE)
        return engine.wait_for_clearance(lambda s: honored.append(str(s)))

    def stopper():
        rt.sleep(100.0)
        engine.deliver(Signal.STOP)

    rt.spawn(stopper, name="stopper")
    proc = rt.kernel.spawn(worker, name="worker")
    rt.kernel.run_until_idle()
    assert proc.result is False          # clearance denied: stop
    assert honored == ["pause"]          # paused was honored; no resume


def test_take_pending_pops_once(rt, env):
    net, server, node = env
    engine = RemoteNodeConfigurationEngine(rt, net, node, server.address)

    def proc():
        engine.deliver(Signal.PAUSE)
        first = engine.take_pending()
        second = engine.take_pending()
        return first[0], second

    signal, empty = run_in_sim(rt, proc)
    assert signal == Signal.PAUSE
    assert empty is None


def test_reset_for_start_clears_state(rt, env):
    net, server, node = env
    engine = RemoteNodeConfigurationEngine(rt, net, node, server.address)

    def proc():
        engine.deliver(Signal.STOP)
        engine.reset_for_start()
        return engine.stop_requested, engine.paused, engine.take_pending()

    assert run_in_sim(rt, proc) == (False, False, None)
