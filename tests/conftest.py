"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import SimulatedRuntime


@pytest.fixture()
def rt():
    """A fresh simulated runtime, shut down after the test."""
    runtime = SimulatedRuntime()
    yield runtime
    runtime.shutdown()


def run_in_sim(runtime: SimulatedRuntime, fn, *, until=None):
    """Spawn ``fn`` as the root simulated process and run to completion.

    Uses ``run_until_idle`` so forever-blocked server loops (space servers,
    SNMP agents) don't trip deadlock detection.  Returns the process
    result; re-raises any error recorded by the kernel.
    """
    proc = runtime.kernel.spawn(fn, name="test-root")
    if until is not None:
        runtime.kernel.run(until=until)
    else:
        runtime.kernel.run_until_idle()
    if proc.error is not None:  # pragma: no cover - kernel re-raises first
        raise proc.error
    assert proc.finished, "root test process never completed (blocked forever?)"
    return proc.result
