"""Service discovery manager: cache freshness and add/remove events."""

from __future__ import annotations

import pytest

from repro.net import Address, Network
from repro.jini import (
    JoinManager,
    LookupService,
    ServiceDiscoveryManager,
    ServiceItem,
)
from repro.jini.join import LookupClient
from repro.tuplespace.lease import FOREVER

REGISTRAR = Address("registrar", 4162)


@pytest.fixture()
def env(rt):
    net = Network(rt)
    lookup = LookupService(rt, net, REGISTRAR)
    lookup.start()
    return net, lookup


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_refresh_populates_cache(rt, env):
    net, lookup = env
    lookup.register(ServiceItem("svc-1", "proxy-1", {"type": "JavaSpaces"}))
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "JavaSpaces"})

    def proc():
        sdm.refresh_once()
        found = sdm.services()
        sdm.stop()
        return [s.service_id for s in found]

    assert run(rt, proc) == ["svc-1"]


def test_query_filters_cache(rt, env):
    net, lookup = env
    lookup.register(ServiceItem("space", None, {"type": "JavaSpaces"}))
    lookup.register(ServiceItem("printer", None, {"type": "printer"}))
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "printer"})

    def proc():
        sdm.refresh_once()
        found = sdm.services()
        sdm.stop()
        return [s.service_id for s in found]

    assert run(rt, proc) == ["printer"]


def test_added_and_removed_callbacks_fire(rt, env):
    net, lookup = env
    events = []
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "JavaSpaces"},
                                  refresh_interval_ms=300.0)
    sdm.on_added(lambda item: events.append(("added", item.service_id)))
    sdm.on_removed(lambda item: events.append(("removed", item.service_id)))

    def proc():
        sdm.start()
        rt.sleep(100.0)                       # first refresh: empty registry
        registration = lookup.register(
            ServiceItem("space", None, {"type": "JavaSpaces"}), lease_ms=FOREVER
        )
        rt.sleep(400.0)                       # next refresh sees it
        lookup.cancel(registration.registration_id)
        rt.sleep(400.0)                       # and then sees it vanish
        sdm.stop()
        return list(events)

    assert run(rt, proc) == [("added", "space"), ("removed", "space")]


def test_lease_expiry_surfaces_as_removal(rt, env):
    net, lookup = env
    removed = []
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "JavaSpaces"},
                                  refresh_interval_ms=200.0)
    sdm.on_removed(lambda item: removed.append(item.service_id))

    def proc():
        lookup.register(ServiceItem("ephemeral", None, {"type": "JavaSpaces"}),
                        lease_ms=300.0)
        sdm.start()
        rt.sleep(900.0)   # lease lapses; a later refresh notices
        sdm.stop()
        return list(removed)

    assert run(rt, proc) == ["ephemeral"]


def test_lookup_one_waits_for_service(rt, env):
    net, lookup = env
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "JavaSpaces"},
                                  refresh_interval_ms=150.0)

    def late_registration():
        rt.sleep(200.0)
        lookup.register(ServiceItem("late", "addr", {"type": "JavaSpaces"}))

    def proc():
        sdm.start()
        rt.spawn(late_registration, name="late")
        item = sdm.lookup_one(wait_ms=1_000.0)
        sdm.stop()
        return item.service_id if item else None

    assert run(rt, proc) == "late"


def test_lookup_one_times_out_quietly(rt, env):
    net, _ = env
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "nothing"},
                                  refresh_interval_ms=100.0)

    def proc():
        sdm.start()
        item = sdm.lookup_one(wait_ms=300.0)
        sdm.stop()
        return item

    assert run(rt, proc) is None


def test_multiple_registrars_merged(rt, env):
    net, lookup = env
    second = LookupService(rt, net, Address("registrar2", 4162))
    second.start()
    lookup.register(ServiceItem("a", None, {"type": "x"}))
    second.register(ServiceItem("b", None, {"type": "x"}))
    sdm = ServiceDiscoveryManager(rt, net, "client", {"type": "x"})

    def proc():
        sdm.refresh_once()
        found = sorted(s.service_id for s in sdm.services())
        sdm.stop()
        second.stop()
        return found

    assert run(rt, proc) == ["a", "b"]
