"""Discovery / join / lookup protocol tests."""

from __future__ import annotations

import pytest

from repro.net import Address, LatencyModel, Network
from repro.jini import DiscoveryClient, JoinManager, LookupService, ServiceItem
from repro.jini.join import LookupClient

REGISTRAR = Address("registrar", 4162)


@pytest.fixture()
def env(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.2, jitter_ms=0.0, per_kb_ms=0.0))
    lookup = LookupService(rt, net, REGISTRAR)
    lookup.start()
    return net, lookup


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_discovery_finds_registrar(rt, env):
    net, _ = env

    def proc():
        client = DiscoveryClient(rt, net, "workerhost")
        return client.discover(timeout_ms=50.0, expected=1)

    assert run(rt, proc) == [REGISTRAR]


def test_discovery_finds_multiple_registrars(rt, env):
    net, _ = env
    second = LookupService(rt, net, Address("registrar2", 4162))
    second.start()

    def proc():
        client = DiscoveryClient(rt, net, "workerhost")
        return sorted(client.discover(timeout_ms=50.0), key=str)

    found = run(rt, proc)
    assert len(found) == 2


def test_discovery_times_out_quietly_with_no_registrar(rt):
    net = Network(rt)

    def proc():
        client = DiscoveryClient(rt, net, "h")
        return client.discover(timeout_ms=20.0)

    assert run(rt, proc) == []


def test_register_and_lookup_by_attributes(rt, env):
    net, lookup = env

    def proc():
        client = LookupClient(net, "master", REGISTRAR)
        client.register(
            ServiceItem("space-1", Address("master", 4155),
                        {"type": "JavaSpaces", "name": "compute"})
        )
        client.register(
            ServiceItem("printer-1", Address("hall", 9100), {"type": "printer"})
        )
        spaces = client.lookup({"type": "JavaSpaces"})
        printers = client.lookup({"type": "printer"})
        everything = client.lookup({})
        nothing = client.lookup({"type": "JavaSpaces", "name": "other"})
        client.close()
        return (
            [s.service_id for s in spaces],
            [s.service_id for s in printers],
            len(everything),
            nothing,
        )

    spaces, printers, total, nothing = run(rt, proc)
    assert spaces == ["space-1"]
    assert printers == ["printer-1"]
    assert total == 2
    assert nothing == []


def test_lookup_returns_usable_service_address(rt, env):
    net, _ = env

    def proc():
        client = LookupClient(net, "master", REGISTRAR)
        client.register(ServiceItem("svc", Address("master", 4155), {"type": "JavaSpaces"}))
        item = client.lookup({"type": "JavaSpaces"})[0]
        client.close()
        return item.service

    assert run(rt, proc) == Address("master", 4155)


def test_registration_lease_expires(rt, env):
    net, _ = env

    def proc():
        client = LookupClient(net, "m", REGISTRAR)
        client.register(ServiceItem("ephemeral", None, {"t": "x"}), lease_ms=100.0)
        before = len(client.lookup({"t": "x"}))
        rt.sleep(200.0)
        after = len(client.lookup({"t": "x"}))
        client.close()
        return before, after

    assert run(rt, proc) == (1, 0)


def test_cancel_removes_registration(rt, env):
    net, _ = env

    def proc():
        client = LookupClient(net, "m", REGISTRAR)
        reply = client.register(ServiceItem("svc", None, {"t": "x"}))
        client.cancel(reply["registration_id"])
        remaining = client.lookup({})
        client.close()
        return remaining

    assert run(rt, proc) == []


def test_join_manager_keeps_registration_alive(rt, env):
    net, _ = env

    def proc():
        manager = JoinManager(
            rt, net, "master", REGISTRAR,
            ServiceItem("space", None, {"type": "JavaSpaces"}),
            lease_ms=100.0,
        )
        manager.start()
        rt.sleep(450.0)  # several lease periods
        client = LookupClient(net, "probe", REGISTRAR)
        alive = len(client.lookup({"type": "JavaSpaces"}))
        manager.stop()
        rt.sleep(150.0)
        gone = len(client.lookup({"type": "JavaSpaces"}))
        client.close()
        return alive, gone

    assert run(rt, proc) == (1, 0)


def test_renew_unknown_registration_fails(rt, env):
    net, _ = env

    def proc():
        client = LookupClient(net, "m", REGISTRAR)
        from repro.errors import LookupError_
        with pytest.raises(LookupError_):
            client.renew(999, 100.0)
        client.close()
        return True

    assert run(rt, proc)


def test_full_stack_discover_then_lookup_then_connect(rt, env):
    """End-to-end: discover registrar → find space service → talk to it."""
    net, _ = env
    from repro.tuplespace import JavaSpace, SpaceProxy, SpaceServer
    from tests.tuplespace.entries import TaskEntry

    space_address = Address("master", 4155)
    space = JavaSpace(rt)
    SpaceServer(rt, space, net, space_address).start()

    def proc():
        from repro.tuplespace.lease import FOREVER

        # Master joins the federation (permanent lease: no renewal loop,
        # so the simulation drains naturally).
        JoinManager(
            rt, net, "master", REGISTRAR,
            ServiceItem("space", space_address, {"type": "JavaSpaces"}),
            lease_ms=FOREVER,
        ).start()
        # Worker discovers and uses it.
        registrars = DiscoveryClient(rt, net, "worker").discover(expected=1)
        client = LookupClient(net, "worker", registrars[0])
        item = client.lookup({"type": "JavaSpaces"})[0]
        client.close()
        proxy = SpaceProxy(net, "worker", item.service)
        proxy.write(TaskEntry("e2e", 1, "hello"))
        entry = proxy.take(TaskEntry(), timeout_ms=100.0)
        proxy.close()
        return entry.payload

    assert run(rt, proc) == "hello"
