"""Unicast discovery (LookupLocator)."""

from __future__ import annotations

import pytest

from repro.net import Address, Network
from repro.jini import LookupService, ServiceItem
from repro.jini.discovery import LookupLocator
from repro.jini.join import LookupClient

REGISTRAR = Address("registrar", 4162)


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_locator_probe_finds_live_registrar(rt):
    net = Network(rt)
    LookupService(rt, net, REGISTRAR).start()

    def proc():
        locator = LookupLocator(rt, net, "client", REGISTRAR)
        return locator.probe(), locator.get_registrar()

    ok, registrar = run(rt, proc)
    assert ok
    assert registrar == REGISTRAR


def test_locator_probe_fails_without_registrar(rt):
    net = Network(rt)

    def proc():
        locator = LookupLocator(rt, net, "client", REGISTRAR)
        return locator.probe(), locator.get_registrar()

    ok, registrar = run(rt, proc)
    assert not ok
    assert registrar is None


def test_unicast_path_reaches_services_without_multicast(rt):
    """A client on a 'different segment' (no multicast) still finds the
    space via a configured locator."""
    net = Network(rt)
    lookup = LookupService(rt, net, REGISTRAR)
    lookup.start()
    lookup.register(ServiceItem("space", Address("master", 4155),
                                {"type": "JavaSpaces"}))

    def proc():
        locator = LookupLocator(rt, net, "remote-client", REGISTRAR)
        registrar = locator.get_registrar()
        client = LookupClient(net, "remote-client", registrar)
        items = client.lookup({"type": "JavaSpaces"})
        client.close()
        return [item.service_id for item in items]

    assert run(rt, proc) == ["space"]
