"""The README's quickstart snippet must actually run.

Extracts the first fenced ``python`` block from README.md and executes
it — documentation that drifts from the API fails the suite.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

README = Path(__file__).resolve().parent.parent / "README.md"


def extract_first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README has no python code block"
    return match.group(1)


def test_readme_quickstart_snippet_runs():
    code = extract_first_python_block(README.read_text())
    namespace: dict = {}
    exec(compile(code, str(README), "exec"), namespace)  # noqa: S102
    image = namespace["image"]
    assert isinstance(image, np.ndarray)
    assert image.shape == (600, 600, 3)
    # It really rendered the scene, not a blank frame.
    assert image.std() > 10
    namespace["runtime"].shutdown()
