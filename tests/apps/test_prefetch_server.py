"""Web-server access-time model: pre-fetching must pay off."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.prefetch import (
    ServerTimings,
    WebServerModel,
    generate_cluster,
    pagerank_power,
    simulate_browsing_session,
    stochastic_matrix,
)


@pytest.fixture(scope="module")
def web():
    cluster = generate_cluster(n_pages=200, seed=3)
    ranks, _ = pagerank_power(stochastic_matrix(cluster))
    return cluster, ranks


def test_serve_charges_fetch_then_cache(web):
    cluster, ranks = web
    server = WebServerModel(cluster, ranks,
                            timings=ServerTimings(cache_ms=2.0, fetch_ms=50.0))
    url = cluster.page(0).url
    first = server.serve(url)
    second = server.serve(url)
    assert first == 50.0   # cold miss
    assert second == 2.0   # cached now
    assert server.stats.requests == 2
    assert server.stats.hits == 1


def test_stats_aggregate_consistently(web):
    cluster, ranks = web
    server = WebServerModel(cluster, ranks)
    stats = simulate_browsing_session(server, ranks, n_requests=100)
    assert stats.requests == 100
    assert stats.total_ms == pytest.approx(sum(stats.per_request_ms))
    assert 0.0 <= stats.hit_rate <= 1.0
    assert stats.mean_ms == pytest.approx(stats.total_ms / 100)


def test_prefetching_cuts_mean_access_time(web):
    """The paper's objective, quantified: rank-driven pre-fetching beats a
    plain LRU cache on mean user-visible latency."""
    cluster, ranks = web
    with_prefetch = simulate_browsing_session(
        WebServerModel(cluster, ranks), ranks
    )
    without = simulate_browsing_session(
        WebServerModel(cluster, ranks=None), ranks
    )
    assert with_prefetch.hit_rate > without.hit_rate
    assert with_prefetch.mean_ms < without.mean_ms


def test_sessions_are_reproducible(web):
    cluster, ranks = web
    a = simulate_browsing_session(WebServerModel(cluster, ranks), ranks, seed=9)
    b = simulate_browsing_session(WebServerModel(cluster, ranks), ranks, seed=9)
    assert a.per_request_ms == b.per_request_ms


def test_more_rank_following_users_benefit_more(web):
    """The premise: prefetching helps most when users click important links."""
    cluster, ranks = web

    def mean_ms(follow):
        return simulate_browsing_session(
            WebServerModel(cluster, ranks), ranks,
            follow_rank_probability=follow, n_requests=400,
        ).mean_ms

    assert mean_ms(0.9) < mean_ms(0.1)
