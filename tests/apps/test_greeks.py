"""Pathwise Monte Carlo Greeks vs Black–Scholes closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.options import OptionContract, OptionType
from repro.apps.options.black_scholes import black_scholes_greeks
from repro.apps.options.mc import european_mc_greeks

CALL = OptionContract(OptionType.CALL, spot=100, strike=105, rate=0.05,
                      volatility=0.25, maturity_years=1.0)
PUT = OptionContract(OptionType.PUT, spot=100, strike=95, rate=0.05,
                     volatility=0.25, maturity_years=1.0)


@pytest.mark.parametrize("contract", [CALL, PUT], ids=["call", "put"])
def test_pathwise_greeks_match_closed_form(contract):
    rng = np.random.default_rng(11)
    mc = european_mc_greeks(contract, n_paths=400_000, rng=rng)
    exact = black_scholes_greeks(contract)
    assert mc["price"] == pytest.approx(exact["price"], rel=0.02)
    assert mc["delta"] == pytest.approx(exact["delta"], abs=0.01)
    assert mc["vega"] == pytest.approx(exact["vega"], rel=0.05)


def test_call_delta_bounds_and_put_parity():
    rng = np.random.default_rng(3)
    call = european_mc_greeks(CALL, 100_000, rng)
    assert 0.0 < call["delta"] < 1.0
    put_same_strike = OptionContract(OptionType.PUT, 100, 105, 0.05, 0.25, 1.0)
    rng = np.random.default_rng(3)
    put = european_mc_greeks(put_same_strike, 100_000, rng)
    # Delta parity: Δcall − Δput = 1.
    assert call["delta"] - put["delta"] == pytest.approx(1.0, abs=0.02)


def test_vega_positive_for_both_types():
    rng = np.random.default_rng(4)
    assert european_mc_greeks(CALL, 50_000, rng)["vega"] > 0
    rng = np.random.default_rng(4)
    assert european_mc_greeks(PUT, 50_000, rng)["vega"] > 0


def test_deep_itm_call_delta_near_one():
    deep = OptionContract(OptionType.CALL, spot=200, strike=50, rate=0.05,
                          volatility=0.2, maturity_years=0.5)
    rng = np.random.default_rng(5)
    assert european_mc_greeks(deep, 50_000, rng)["delta"] == pytest.approx(
        1.0, abs=0.01
    )


def test_closed_form_rejects_zero_vol():
    flat = OptionContract(OptionType.CALL, 100, 100, 0.05, 0.0, 1.0)
    with pytest.raises(ValueError):
        black_scholes_greeks(flat)
