"""Web prefetching: graph, PageRank, cache, predictor, framework app."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.prefetch import (
    PageRankPrefetcher,
    PrefetchApplication,
    PrefetchCache,
    WebPage,
    WebPageCluster,
    generate_cluster,
    matvec_strip,
    pagerank_power,
    power_iteration_step,
    stochastic_matrix,
)


def tiny_cluster() -> WebPageCluster:
    """A 4-page cluster with known structure."""
    pages = [
        WebPage(0, "http://x.com/home", links=[1, 2, 3]),
        WebPage(1, "http://x.com/a", links=[0]),
        WebPage(2, "http://x.com/b", links=[0, 1]),
        WebPage(3, "http://x.com/c", links=[0]),
    ]
    return WebPageCluster("x.com", pages)


# -- web graph ----------------------------------------------------------------------


def test_generate_cluster_shape_and_urls():
    cluster = generate_cluster(n_pages=100, seed=1)
    assert len(cluster) == 100
    assert cluster.contains_url("http://www.example.com/page42.html")
    assert not cluster.contains_url("http://other.com/")
    assert cluster.by_url("http://www.example.com/page7.html").page_id == 7


def test_generated_pages_always_have_links_no_self_loops():
    cluster = generate_cluster(n_pages=80, seed=3)
    for page in cluster.pages:
        assert page.links, "no dangling pages"
        assert page.page_id not in page.links


def test_generation_is_reproducible():
    a = generate_cluster(n_pages=50, seed=9)
    b = generate_cluster(n_pages=50, seed=9)
    assert all(pa.links == pb.links for pa, pb in zip(a.pages, b.pages))


def test_preferential_attachment_skews_indegree():
    cluster = generate_cluster(n_pages=300, seed=5)
    adjacency = cluster.adjacency()
    indegree = adjacency.sum(axis=1)
    # Early pages should collect far more links than late ones.
    assert indegree[:30].mean() > 2.0 * indegree[-30:].mean()


# -- stochastic matrix / pagerank -------------------------------------------------------


def test_stochastic_matrix_follows_paper_construction():
    matrix = stochastic_matrix(tiny_cluster())
    # Page 0 has 3 successors: column 0 puts 1/3 on rows 1, 2, 3.
    assert matrix[1, 0] == pytest.approx(1 / 3)
    assert matrix[2, 0] == pytest.approx(1 / 3)
    assert matrix[3, 0] == pytest.approx(1 / 3)
    assert matrix[0, 0] == 0.0
    # Page 2 has successors {0, 1}: column 2 gives each 1/2.
    assert matrix[0, 2] == pytest.approx(0.5)
    assert matrix[1, 2] == pytest.approx(0.5)


def test_matrix_columns_are_stochastic():
    matrix = stochastic_matrix(generate_cluster(n_pages=60, seed=2))
    assert np.allclose(matrix.sum(axis=0), 1.0)


def test_pagerank_converges_and_sums_to_one():
    matrix = stochastic_matrix(generate_cluster(n_pages=100, seed=4))
    ranks, iterations = pagerank_power(matrix)
    assert iterations < 200
    assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
    assert (ranks > 0).all()


def test_pagerank_is_fixed_point():
    matrix = stochastic_matrix(generate_cluster(n_pages=80, seed=6))
    ranks, _ = pagerank_power(matrix, tol=1e-12)
    again = power_iteration_step(matrix, ranks)
    assert np.allclose(again, ranks, atol=1e-9)


def test_home_page_outranks_average():
    cluster = generate_cluster(n_pages=200, seed=7)
    ranks, _ = pagerank_power(stochastic_matrix(cluster))
    assert ranks[0] > ranks.mean() * 2


def test_strips_reproduce_full_step_exactly():
    """Invariant: the parallel decomposition equals the sequential step."""
    matrix = stochastic_matrix(generate_cluster(n_pages=100, seed=8))
    x = np.random.default_rng(0).random(100)
    x /= x.sum()
    full = power_iteration_step(matrix, x)
    strips = [
        matvec_strip(matrix[r : r + 20], x, 0.85, 100) for r in range(0, 100, 20)
    ]
    assert np.allclose(np.concatenate(strips), full, atol=1e-14)


# -- cache ---------------------------------------------------------------------------


def test_cache_put_get_and_stats():
    cache = PrefetchCache(capacity=2)
    cache.put("a")
    assert cache.get("a") is not None
    assert cache.get("b") is None
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5


def test_cache_lru_eviction_order():
    cache = PrefetchCache(capacity=2)
    cache.put("a")
    cache.put("b")
    cache.get("a")       # touch a: b becomes LRU
    cache.put("c")       # evicts b
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PrefetchCache(capacity=0)


# -- predictor ------------------------------------------------------------------------


def test_prefetcher_fetches_highest_ranked_links():
    cluster = tiny_cluster()
    ranks = np.array([0.5, 0.1, 0.3, 0.1])
    prefetcher = PageRankPrefetcher(cluster, ranks, top_k=2)
    predicted = prefetcher.predicted_next("http://x.com/b")  # links to 0, 1
    assert predicted == ["http://x.com/home", "http://x.com/a"]


def test_prefetching_turns_next_request_into_hit():
    cluster = tiny_cluster()
    ranks, _ = pagerank_power(stochastic_matrix(cluster))
    prefetcher = PageRankPrefetcher(cluster, ranks, top_k=3)
    assert prefetcher.handle_request("http://x.com/a") is False  # cold
    # /a links to /home which is now prefetched.
    assert prefetcher.handle_request("http://x.com/home") is True
    assert prefetcher.prefetches > 0


def test_prefetcher_ignores_foreign_urls():
    cluster = tiny_cluster()
    prefetcher = PageRankPrefetcher(cluster, np.full(4, 0.25))
    assert prefetcher.handle_request("http://elsewhere.com/") is False
    assert prefetcher.prefetches == 0


def test_prefetcher_validates_rank_size():
    with pytest.raises(ValueError):
        PageRankPrefetcher(tiny_cluster(), np.ones(3))


def test_prefetching_improves_hit_rate_on_rank_driven_walk():
    """End-to-end: a browsing session following high-rank links hits cache."""
    cluster = generate_cluster(n_pages=100, seed=11)
    ranks, _ = pagerank_power(stochastic_matrix(cluster))
    prefetcher = PageRankPrefetcher(cluster, ranks,
                                    cache=PrefetchCache(capacity=64), top_k=3)
    rng = np.random.default_rng(1)
    url = cluster.page(0).url
    for _ in range(60):
        prefetcher.handle_request(url)
        page = cluster.by_url(url)
        # Users tend to click important links (the paper's premise).
        ranked = sorted(page.links, key=lambda p: ranks[p], reverse=True)
        pick = ranked[0] if rng.random() < 0.7 else int(rng.choice(page.links))
        url = cluster.page(pick).url
    assert prefetcher.cache.hit_rate > 0.5


# -- the framework application --------------------------------------------------------


def test_app_plans_25_strip_tasks():
    app = PrefetchApplication()
    tasks = app.plan()
    assert len(tasks) == 25
    assert all(t.payload["rows"].shape == (20, 500) for t in tasks)
    assert all(t.payload["x"].shape == (500,) for t in tasks)


def test_app_round_equals_sequential_power_step():
    app = PrefetchApplication(n_pages=100, strip_size=20, seed=3)
    solution = app.run_sequential()
    expected = power_iteration_step(app.matrix, app.x, app.damping)
    assert np.allclose(solution, expected, atol=1e-14)


def test_app_chained_rounds_converge_to_pagerank():
    app = PrefetchApplication(n_pages=100, strip_size=20, seed=3)
    reference, _ = pagerank_power(app.matrix, tol=1e-12)
    for _ in range(100):
        app.advance(app.run_sequential())
    assert np.allclose(app.x, reference, atol=1e-8)


def test_app_rejects_bad_strip_size():
    with pytest.raises(ValueError):
        PrefetchApplication(n_pages=500, strip_size=30)


def test_app_cost_model_matches_paper_characterization():
    app = PrefetchApplication()
    task = app.plan()[0]
    # Low planning overhead, aggregation-dominated (Table 2 / Fig. 8).
    assert app.planning_cost_ms(task) < app.aggregation_cost_ms(0, None)
    assert app.classload_profile().demand_percent == 75.0
