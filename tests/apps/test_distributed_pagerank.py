"""DistributedPageRank: convergence through chained framework rounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.prefetch import (
    DistributedPageRank,
    PrefetchApplication,
    generate_cluster,
    pagerank_power,
)
from repro.core.framework import FrameworkConfig
from repro.node.cluster import testbed_small


def drive(rt, fn):
    proc = rt.kernel.spawn(fn, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def test_converges_to_sequential_pagerank(rt):
    web = generate_cluster(n_pages=100, seed=4)
    app = PrefetchApplication(cluster=web, strip_size=20)
    reference, _ = pagerank_power(app.matrix, tol=1e-12)
    cluster = testbed_small(rt, workers=3)
    driver = DistributedPageRank(rt, cluster, app, tol=1e-9, max_rounds=80)

    run = drive(rt, driver.run)
    assert run.converged
    assert np.allclose(run.ranks, reference, atol=1e-7)
    assert run.rounds == len(run.per_round_ms)
    assert run.total_parallel_ms == pytest.approx(sum(run.per_round_ms))


def test_round_budget_respected(rt):
    web = generate_cluster(n_pages=100, seed=4)
    app = PrefetchApplication(cluster=web, strip_size=20)
    cluster = testbed_small(rt, workers=2)
    driver = DistributedPageRank(rt, cluster, app, tol=0.0, max_rounds=3)

    run = drive(rt, driver.run)
    assert not run.converged  # tol=0 can never be met
    assert run.rounds == 3


def test_each_round_costs_similar_virtual_time(rt):
    web = generate_cluster(n_pages=100, seed=4)
    app = PrefetchApplication(cluster=web, strip_size=20)
    cluster = testbed_small(rt, workers=3)
    driver = DistributedPageRank(rt, cluster, app, tol=1e-12, max_rounds=5)

    run = drive(rt, driver.run)
    later = run.per_round_ms[1:]
    assert max(later) - min(later) < 0.3 * max(later)
