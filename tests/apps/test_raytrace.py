"""Ray tracer: geometry, shading, strip decomposition correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.raytrace import (
    Camera,
    CheckerPlane,
    Light,
    Material,
    RayTracingApplication,
    Scene,
    Sphere,
    default_scene,
    render_image,
    render_rows,
)

MAT = Material(color=(1.0, 0.0, 0.0))


def unit(v):
    v = np.asarray(v, dtype=float)
    return v / np.linalg.norm(v)


def test_sphere_intersection_head_on():
    sphere = Sphere(center=(0, 0, 5), radius=1.0, material=MAT)
    origins = np.array([[0.0, 0.0, 0.0]])
    directions = np.array([[0.0, 0.0, 1.0]])
    t = sphere.intersect(origins, directions)
    assert t[0] == pytest.approx(4.0)


def test_sphere_miss_returns_inf():
    sphere = Sphere(center=(0, 0, 5), radius=1.0, material=MAT)
    origins = np.array([[0.0, 3.0, 0.0]])
    directions = np.array([[0.0, 0.0, 1.0]])
    assert np.isinf(sphere.intersect(origins, directions)[0])


def test_sphere_from_inside_hits_far_wall():
    sphere = Sphere(center=(0, 0, 0), radius=2.0, material=MAT)
    origins = np.array([[0.0, 0.0, 0.0]])
    directions = np.array([[0.0, 0.0, 1.0]])
    assert sphere.intersect(origins, directions)[0] == pytest.approx(2.0)


def test_sphere_behind_ray_ignored():
    sphere = Sphere(center=(0, 0, -5), radius=1.0, material=MAT)
    origins = np.array([[0.0, 0.0, 0.0]])
    directions = np.array([[0.0, 0.0, 1.0]])
    assert np.isinf(sphere.intersect(origins, directions)[0])


def test_sphere_normals_are_unit_outward():
    sphere = Sphere(center=(0, 0, 0), radius=2.0, material=MAT)
    points = np.array([[2.0, 0.0, 0.0], [0.0, -2.0, 0.0]])
    normals = sphere.normals(points)
    assert np.allclose(normals, [[1, 0, 0], [0, -1, 0]])
    assert np.allclose(np.linalg.norm(normals, axis=1), 1.0)


def test_plane_intersection_and_checker():
    plane = CheckerPlane(height=0.0, material=MAT, square=1.0)
    origins = np.array([[0.5, 2.0, 0.5], [1.5, 2.0, 0.5]])
    directions = np.array([[0.0, -1.0, 0.0], [0.0, -1.0, 0.0]])
    t = plane.intersect(origins, directions)
    assert np.allclose(t, 2.0)
    hits = origins + directions * t[:, None]
    colors = plane.colors(hits)
    assert not np.allclose(colors[0], colors[1])  # adjacent squares differ


def test_plane_parallel_ray_misses():
    plane = CheckerPlane(height=0.0, material=MAT)
    origins = np.array([[0.0, 1.0, 0.0]])
    directions = np.array([[1.0, 0.0, 0.0]])
    assert np.isinf(plane.intersect(origins, directions)[0])


def test_scene_nearest_hit_picks_closest():
    near = Sphere(center=(0, 0, 3), radius=0.5, material=MAT)
    far = Sphere(center=(0, 0, 10), radius=0.5, material=MAT)
    scene = Scene(objects=(far, near), lights=(Light(position=(0, 5, 0)),))
    obj, t = scene.nearest_hit(np.array([[0.0, 0.0, 0.0]]),
                               np.array([[0.0, 0.0, 1.0]]))
    assert obj[0] == 1  # `near` is at index 1
    assert t[0] == pytest.approx(2.5)


def test_occlusion_detects_blocker():
    blocker = Sphere(center=(0, 0, 5), radius=1.0, material=MAT)
    scene = Scene(objects=(blocker,), lights=())
    points = np.array([[0.0, 0.0, 0.0]])
    directions = np.array([[0.0, 0.0, 1.0]])
    assert scene.occluded(points, directions, np.array([10.0]))[0]
    assert not scene.occluded(points, directions, np.array([2.0]))[0]


def test_camera_rays_unit_norm_and_count():
    camera = Camera()
    origins, directions = camera.rays_for_rows(10, 20, 64, 48)
    assert origins.shape == (10 * 64, 3)
    assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)


def test_camera_rejects_bad_rows():
    with pytest.raises(ValueError):
        Camera().rays_for_rows(10, 5, 64, 48)
    with pytest.raises(ValueError):
        Camera().rays_for_rows(0, 100, 64, 48)


def test_render_produces_nontrivial_image():
    image = render_image(default_scene(), Camera(), 64, 64)
    assert image.shape == (64, 64, 3)
    assert image.dtype == np.uint8
    assert image.std() > 10  # spheres, shadows and checkerboard → variety


def test_render_is_deterministic():
    a = render_image(default_scene(), Camera(), 48, 48)
    b = render_image(default_scene(), Camera(), 48, 48)
    assert np.array_equal(a, b)


def test_strips_compose_to_full_frame():
    """The parallel decomposition must be exact: strips == full render."""
    scene, camera = default_scene(), Camera()
    full = render_image(scene, camera, 60, 60)
    strips = [render_rows(scene, camera, y, y + 15, 60, 60) for y in (0, 15, 30, 45)]
    assert np.array_equal(np.vstack(strips), full)


def test_shadows_darken_pixels():
    light = Light(position=(0.0, 10.0, 4.0), intensity=1.0)
    floor = CheckerPlane(height=0.0, material=Material(color=(1, 1, 1),
                                                       reflectivity=0.0))
    blocker = Sphere(center=(0.0, 2.0, 4.0), radius=1.0,
                     material=Material(color=(1, 0, 0)))
    with_blocker = Scene(objects=(floor, blocker), lights=(light,))
    without = Scene(objects=(floor,), lights=(light,))
    camera = Camera(position=(0.0, 3.0, -2.0))
    img_shadow = render_image(with_blocker, camera, 40, 40, max_depth=0)
    img_clear = render_image(without, camera, 40, 40, max_depth=0)
    assert int(img_shadow.sum()) < int(img_clear.sum())


def test_reflection_changes_mirror_pixels():
    base = default_scene()
    no_reflect = Scene(
        objects=tuple(
            type(o)(**{**o.__dict__,
                       "material": Material(color=o.material.color,
                                            diffuse=o.material.diffuse,
                                            specular=o.material.specular,
                                            shininess=o.material.shininess,
                                            reflectivity=0.0)})
            for o in base.objects
        ),
        lights=base.lights,
    )
    reflective = render_image(base, Camera(), 48, 48, max_depth=3)
    flat = render_image(no_reflect, Camera(), 48, 48, max_depth=3)
    assert not np.array_equal(reflective, flat)


# -- the framework application -------------------------------------------------------


def test_app_plans_24_strip_tasks():
    app = RayTracingApplication()
    tasks = app.plan()
    assert len(tasks) == 24
    regions = [t.payload["region"] for t in tasks]
    assert regions[0] == (0, 0, 600, 25)
    assert regions[-1] == (0, 575, 600, 600)
    # Strips tile the image exactly.
    assert {r[1] for r in regions} == set(range(0, 600, 25))


def test_app_execute_and_aggregate_small():
    app = RayTracingApplication(width=48, height=48, strip_rows=12)
    solution = app.run_sequential()
    reference = render_image(app.scene, app.camera, 48, 48)
    assert np.array_equal(solution, reference)


def test_app_rejects_nondividing_strips():
    with pytest.raises(ValueError):
        RayTracingApplication(height=600, strip_rows=23)


def test_app_cost_model():
    app = RayTracingApplication()
    task = app.plan()[0]
    assert app.task_cost_ms(task) == 2500.0
    # Total planning ≈ 24 × 20 = 480 ms ≈ the paper's constant 500 ms.
    assert sum(app.planning_cost_ms(t) for t in app.plan()) == pytest.approx(480.0)
    assert app.classload_profile().demand_percent == 42.0
