"""Scene JSON (de)serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.raytrace import (
    Camera,
    Material,
    Sphere,
    default_scene,
    load_scene,
    render_image,
    save_scene,
    scene_from_dict,
    scene_to_dict,
)


def test_default_scene_round_trips():
    scene = default_scene()
    rebuilt = scene_from_dict(scene_to_dict(scene))
    assert rebuilt == scene  # frozen dataclasses: structural equality


def test_round_trip_renders_identically():
    scene = default_scene()
    rebuilt = scene_from_dict(scene_to_dict(scene))
    a = render_image(scene, Camera(), 32, 32)
    b = render_image(rebuilt, Camera(), 32, 32)
    assert np.array_equal(a, b)


def test_file_round_trip(tmp_path):
    path = tmp_path / "scene.json"
    save_scene(default_scene(), path)
    assert load_scene(path) == default_scene()
    # And it is genuine JSON a human could edit.
    text = path.read_text()
    assert '"objects"' in text and '"lights"' in text


def test_hand_written_minimal_scene():
    scene = scene_from_dict({
        "objects": [
            {"type": "sphere", "center": [0, 0, 5], "radius": 1,
             "material": {"color": [1, 0, 0]}},
        ],
        "lights": [{"position": [0, 5, 0]}],
    })
    assert len(scene.objects) == 1
    assert isinstance(scene.objects[0], Sphere)
    assert scene.lights[0].intensity == 1.0
    image = render_image(scene, Camera(), 24, 24)
    assert image.shape == (24, 24, 3)


def test_material_defaults_omitted_but_overrides_kept():
    material = Material(color=(0.5, 0.5, 0.5), transparency=0.4,
                        refractive_index=1.33)
    data = scene_to_dict(
        default_scene().__class__(
            objects=(Sphere((0, 0, 3), 1.0, material),),
            lights=(),
        )
    )
    spec = data["objects"][0]["material"]
    assert spec["transparency"] == 0.4
    assert spec["refractive_index"] == 1.33
    assert "diffuse" not in spec  # default omitted


def test_unknown_object_type_rejected():
    with pytest.raises(ValueError, match="unknown object type"):
        scene_from_dict({"objects": [{"type": "torus", "material":
                                      {"color": [1, 1, 1]}}], "lights": []})
