"""Personalized PageRank (teleport distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.prefetch import (
    generate_cluster,
    pagerank_power,
    stochastic_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    return stochastic_matrix(generate_cluster(n_pages=120, seed=6))


def test_uniform_teleport_equals_classic(matrix):
    n = matrix.shape[0]
    classic, _ = pagerank_power(matrix, tol=1e-12)
    uniform, _ = pagerank_power(matrix, tol=1e-12, teleport=np.full(n, 1.0 / n))
    assert np.allclose(classic, uniform, atol=1e-10)


def test_personalization_boosts_focus_pages(matrix):
    n = matrix.shape[0]
    focus = 100  # a page that is unremarkable globally
    teleport = np.zeros(n)
    teleport[focus] = 1.0
    classic, _ = pagerank_power(matrix, tol=1e-12)
    personal, _ = pagerank_power(matrix, tol=1e-12, teleport=teleport)
    assert personal[focus] > 3.0 * classic[focus]
    assert personal.sum() == pytest.approx(1.0, abs=1e-8)


def test_personalization_boosts_focus_neighbourhood():
    cluster = generate_cluster(n_pages=120, seed=6)
    matrix = stochastic_matrix(cluster)
    n = len(cluster)
    focus = 100
    teleport = np.zeros(n)
    teleport[focus] = 1.0
    classic, _ = pagerank_power(matrix, tol=1e-12)
    personal, _ = pagerank_power(matrix, tol=1e-12, teleport=teleport)
    successors = cluster.successors(focus)
    gains = [personal[s] / classic[s] for s in successors]
    # Pages the focus links to gain rank mass relative to classic.
    assert np.mean(gains) > 1.0


def test_invalid_teleport_rejected(matrix):
    n = matrix.shape[0]
    with pytest.raises(ValueError):
        pagerank_power(matrix, teleport=np.ones(n))          # not normalized
    with pytest.raises(ValueError):
        pagerank_power(matrix, teleport=np.full(n - 1, 1.0 / (n - 1)))
    bad = np.full(n, 1.0 / n)
    bad[0] = -bad[0]
    bad[1] += 2.0 / n
    with pytest.raises(ValueError):
        pagerank_power(matrix, teleport=bad)


def test_personalized_still_converges(matrix):
    n = matrix.shape[0]
    teleport = np.zeros(n)
    teleport[:5] = 0.2
    ranks, iterations = pagerank_power(matrix, tol=1e-12, teleport=teleport)
    assert iterations < 200
    assert (ranks >= 0).all()
