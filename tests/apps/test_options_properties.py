"""Deeper validation of the option-pricing stack."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.options import (
    OptionContract,
    OptionType,
    bg_tree_estimate,
    black_scholes_price,
    european_mc_price,
)
from repro.apps.options.model import PAPER_CONTRACT


contracts = st.builds(
    OptionContract,
    option_type=st.sampled_from(list(OptionType)),
    spot=st.floats(50.0, 150.0),
    strike=st.floats(50.0, 150.0),
    rate=st.floats(0.0, 0.10),
    volatility=st.floats(0.05, 0.6),
    maturity_years=st.floats(0.25, 2.0),
)


@given(contract=contracts)
def test_black_scholes_within_no_arbitrage_bounds(contract):
    price = black_scholes_price(contract)
    s, k = contract.spot, contract.strike
    discount = math.exp(-contract.rate * contract.maturity_years)
    assert price >= -1e-9
    if contract.option_type == OptionType.CALL:
        assert price >= max(0.0, s - k * discount) - 1e-9
        assert price <= s + 1e-9
    else:
        assert price >= max(0.0, k * discount - s) - 1e-9
        assert price <= k * discount + 1e-9


@given(contract=contracts)
def test_put_call_parity_holds(contract):
    call = OptionContract(OptionType.CALL, contract.spot, contract.strike,
                          contract.rate, contract.volatility,
                          contract.maturity_years)
    put = OptionContract(OptionType.PUT, contract.spot, contract.strike,
                         contract.rate, contract.volatility,
                         contract.maturity_years)
    lhs = black_scholes_price(call) - black_scholes_price(put)
    rhs = contract.spot - contract.strike * math.exp(
        -contract.rate * contract.maturity_years
    )
    assert lhs == pytest.approx(rhs, abs=1e-9)


def test_vega_positive():
    """More volatility → more option value (both types)."""
    base = dict(spot=100.0, strike=100.0, rate=0.05, maturity_years=1.0)
    for option_type in OptionType:
        low = black_scholes_price(OptionContract(option_type, volatility=0.1, **base))
        high = black_scholes_price(OptionContract(option_type, volatility=0.4, **base))
        assert high > low


def test_mc_standard_error_shrinks_with_sqrt_n():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    contract = OptionContract(OptionType.CALL, 100, 100, 0.05, 0.2, 1.0)
    _, se_small = european_mc_price(contract, 10_000, rng1)
    _, se_large = european_mc_price(contract, 160_000, rng2)
    assert se_large == pytest.approx(se_small / 4.0, rel=0.25)


def test_bg_more_branches_tighten_the_bracket():
    """The Broadie–Glasserman bias shrinks as branching grows."""
    def gap(branches):
        high = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=1500,
                                branches=branches, seed=2)
        low = bg_tree_estimate(PAPER_CONTRACT, "low", n_sims=1500,
                               branches=branches, seed=3)
        return high.mean - low.mean

    assert gap(branches=8) < gap(branches=2)


def test_bg_single_exercise_date_equals_european_mc():
    """With one exercise date the 'tree' is a plain European MC."""
    euro = OptionContract(OptionType.CALL, 100, 100, 0.05, 0.2, 1.0,
                          exercise_dates=1)
    high = bg_tree_estimate(euro, "high", n_sims=4000, branches=5, seed=9)
    exact = black_scholes_price(euro)
    assert high.mean == pytest.approx(exact, abs=4 * high.stderr)


def test_deep_itm_call_close_to_forward_intrinsic():
    contract = OptionContract(OptionType.CALL, spot=200, strike=50,
                              rate=0.05, volatility=0.2, maturity_years=1.0)
    price = black_scholes_price(contract)
    intrinsic = 200 - 50 * math.exp(-0.05)
    assert price == pytest.approx(intrinsic, rel=1e-4)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_bg_estimates_always_nonnegative(seed):
    estimate = bg_tree_estimate(PAPER_CONTRACT, "low", n_sims=50, seed=seed)
    assert estimate.mean >= 0.0
    assert estimate.sum_squares >= 0.0
