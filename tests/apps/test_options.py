"""Option pricing: model, MC, Broadie–Glasserman correctness."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.options import (
    OptionContract,
    OptionPricingApplication,
    OptionType,
    bg_tree_estimate,
    black_scholes_price,
    european_mc_price,
    simulate_gbm_terminal,
)
from repro.apps.options.broadie_glasserman import bg_price_interval
from repro.apps.options.model import PAPER_CONTRACT

EURO_CALL = OptionContract(OptionType.CALL, spot=100, strike=100, rate=0.05,
                           volatility=0.2, maturity_years=1.0)
EURO_PUT = OptionContract(OptionType.PUT, spot=100, strike=100, rate=0.05,
                          volatility=0.2, maturity_years=1.0)


def test_contract_validation():
    with pytest.raises(ValueError):
        OptionContract(OptionType.CALL, spot=-1, strike=100, rate=0.05,
                       volatility=0.2, maturity_years=1.0)
    with pytest.raises(ValueError):
        OptionContract(OptionType.CALL, spot=100, strike=100, rate=0.05,
                       volatility=0.2, maturity_years=1.0, exercise_dates=0)


def test_payoff_shapes_and_values():
    prices = np.array([80.0, 100.0, 130.0])
    assert np.allclose(EURO_CALL.payoff(prices), [0.0, 0.0, 30.0])
    assert np.allclose(EURO_PUT.payoff(prices), [20.0, 0.0, 0.0])


def test_black_scholes_known_value():
    # Standard textbook value: S=K=100, r=5%, sigma=20%, T=1 → C ≈ 10.4506
    assert black_scholes_price(EURO_CALL) == pytest.approx(10.4506, abs=1e-3)
    # Put-call parity: C - P = S - K e^{-rT}
    parity = black_scholes_price(EURO_CALL) - black_scholes_price(EURO_PUT)
    assert parity == pytest.approx(100 - 100 * math.exp(-0.05), abs=1e-9)


def test_black_scholes_zero_vol_is_discounted_intrinsic():
    flat = OptionContract(OptionType.CALL, spot=100, strike=90, rate=0.05,
                          volatility=0.0, maturity_years=1.0)
    expected = math.exp(-0.05) * (100 * math.exp(0.05) - 90)
    assert black_scholes_price(flat) == pytest.approx(expected, abs=1e-9)


def test_gbm_terminal_moments():
    rng = np.random.default_rng(1)
    terminal = simulate_gbm_terminal(EURO_CALL, 200_000, rng)
    # E[S_T] = S0 e^{rT}
    assert terminal.mean() == pytest.approx(100 * math.exp(0.05), rel=0.01)
    assert (terminal > 0).all()


def test_european_mc_converges_to_black_scholes():
    rng = np.random.default_rng(7)
    price, stderr = european_mc_price(EURO_CALL, 100_000, rng)
    exact = black_scholes_price(EURO_CALL)
    assert abs(price - exact) < 4 * stderr
    assert abs(price - exact) < 0.25


def test_antithetic_reduces_stderr():
    rng1 = np.random.default_rng(3)
    rng2 = np.random.default_rng(3)
    _, se_plain = european_mc_price(EURO_CALL, 50_000, rng1, antithetic=False)
    _, se_anti = european_mc_price(EURO_CALL, 50_000, rng2, antithetic=True)
    assert se_anti < se_plain


def test_bg_high_estimator_exceeds_low():
    high = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=400, branches=5, seed=1)
    low = bg_tree_estimate(PAPER_CONTRACT, "low", n_sims=400, branches=5, seed=2)
    assert high.mean > low.mean


def test_bg_brackets_european_value_for_call_on_nondividend_stock():
    """Early exercise of a call on non-dividend stock is never optimal,
    so the Bermudan price equals the European (Black–Scholes) price and
    the BG interval must cover it."""
    high = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=3000, branches=5, seed=11)
    low = bg_tree_estimate(PAPER_CONTRACT, "low", n_sims=3000, branches=5, seed=12)
    exact = black_scholes_price(
        OptionContract(OptionType.CALL, 100, 100, 0.05, 0.2, 1.0)
    )
    _, ci_low, ci_high = bg_price_interval(high, low)
    assert ci_low <= exact <= ci_high
    # And the bracket is reasonably tight.
    assert ci_high - ci_low < 2.5


def test_bg_put_shows_early_exercise_premium():
    """For an American-style put the BG estimate must exceed European."""
    put = OptionContract(OptionType.PUT, spot=100, strike=110, rate=0.10,
                         volatility=0.2, maturity_years=1.0, exercise_dates=4)
    low = bg_tree_estimate(put, "low", n_sims=3000, branches=5, seed=3)
    european = black_scholes_price(
        OptionContract(OptionType.PUT, 100, 110, 0.10, 0.2, 1.0)
    )
    # Even the LOW-biased estimator beats the European value by a margin.
    assert low.mean > european + 0.3


def test_bg_estimates_are_reproducible():
    a = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=100, seed=5)
    b = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=100, seed=5)
    assert a == b


def test_bg_merge_pools_statistics():
    a = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=100, seed=1)
    b = bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=100, seed=2)
    merged = a.merge(b)
    assert merged.n_sims == 200
    assert merged.mean == pytest.approx((a.sum_values + b.sum_values) / 200)
    with pytest.raises(ValueError):
        a.merge(bg_tree_estimate(PAPER_CONTRACT, "low", n_sims=10, seed=1))


def test_bg_rejects_bad_arguments():
    with pytest.raises(ValueError):
        bg_tree_estimate(PAPER_CONTRACT, "middle", n_sims=10)
    with pytest.raises(ValueError):
        bg_tree_estimate(PAPER_CONTRACT, "high", n_sims=10, branches=1)


# -- the framework application ---------------------------------------------------


def test_app_plans_100_subtasks_high_low_pairs():
    app = OptionPricingApplication()
    tasks = app.plan()
    assert len(tasks) == 100
    estimators = [t.payload["estimator"] for t in tasks]
    assert estimators.count("high") == 50
    assert estimators.count("low") == 50
    assert len({t.payload["seed"] for t in tasks}) == 100
    assert all(t.payload["n_sims"] == 100 for t in tasks)


def test_app_sequential_run_prices_the_option():
    app = OptionPricingApplication(n_simulations=2000, n_blocks=10)
    solution = app.run_sequential()
    exact = black_scholes_price(
        OptionContract(OptionType.CALL, 100, 100, 0.05, 0.2, 1.0)
    )
    assert solution["ci_low"] <= exact <= solution["ci_high"]
    assert solution["low"] <= solution["price"] <= solution["high"]


def test_app_cost_model_scales_with_simulations():
    app = OptionPricingApplication()
    task = app.plan()[0]
    assert app.task_cost_ms(task) == pytest.approx(400.0)
    assert app.planning_cost_ms(task) > 0
    assert app.classload_profile().demand_percent == 80.0


def test_app_aggregate_tolerates_missing_payloads():
    app = OptionPricingApplication(n_simulations=200, n_blocks=2)
    out = app.aggregate({0: None, 1: None})
    assert math.isnan(out["price"])
