"""Refraction and anti-aliasing (ray tracer extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.raytrace import (
    Camera,
    CheckerPlane,
    Light,
    Material,
    Scene,
    Sphere,
    default_scene,
    render_image,
    render_rows,
)
from repro.apps.raytrace.render import _refract, _sample_offsets


def glass_scene(transparency: float) -> Scene:
    glass = Material(color=(1.0, 1.0, 1.0), diffuse=0.1, specular=0.8,
                     shininess=200.0, reflectivity=0.05,
                     transparency=transparency, refractive_index=1.5)
    floor = Material(color=(0.9, 0.9, 0.9), diffuse=0.9)
    return Scene(
        objects=(
            Sphere(center=(0.0, 1.0, 3.0), radius=1.0, material=glass),
            CheckerPlane(height=0.0, material=floor),
        ),
        lights=(Light(position=(-3.0, 6.0, 0.0), intensity=1.0),),
    )


def test_material_rejects_overunity_energy():
    with pytest.raises(ValueError):
        Material(color=(1, 1, 1), reflectivity=0.6, transparency=0.6)


def test_refract_straight_through_at_normal_incidence():
    directions = np.array([[0.0, 0.0, 1.0]])
    normals = np.array([[0.0, 0.0, -1.0]])
    refracted, tir = _refract(directions, normals, np.array([1.0 / 1.5]))
    assert not tir[0]
    assert np.allclose(refracted[0], [0.0, 0.0, 1.0])


def test_refract_bends_toward_normal_entering_dense_medium():
    """Snell: sin θt = sin θi / n — entering glass bends toward normal."""
    incident = np.array([[np.sin(np.radians(45)), 0.0, np.cos(np.radians(45))]])
    normals = np.array([[0.0, 0.0, -1.0]])
    refracted, tir = _refract(incident, normals, np.array([1.0 / 1.5]))
    assert not tir[0]
    sin_t = abs(refracted[0, 0])
    assert sin_t == pytest.approx(np.sin(np.radians(45)) / 1.5, abs=1e-9)


def test_total_internal_reflection_detected():
    """Glass→air beyond the ~41.8° critical angle."""
    theta = np.radians(60.0)
    incident = np.array([[np.sin(theta), 0.0, np.cos(theta)]])
    normals = np.array([[0.0, 0.0, -1.0]])
    _, tir = _refract(incident, normals, np.array([1.5]))
    assert tir[0]


def test_transparent_sphere_shows_whats_behind_it():
    """Through a fully transparent sphere the checkerboard stays visible;
    an opaque sphere of the same shape hides it."""
    camera = Camera(position=(0.0, 1.0, 0.0))
    clear = render_image(glass_scene(transparency=0.95), camera, 50, 50)
    opaque = render_image(glass_scene(transparency=0.0), camera, 50, 50)
    assert not np.array_equal(clear, opaque)
    # The clear render's center region carries more of the background
    # variance (the checker pattern refracted through the sphere).
    center_clear = clear[20:30, 20:30].std()
    center_opaque = opaque[20:30, 20:30].std()
    assert center_clear > center_opaque


def test_refraction_is_deterministic():
    scene = glass_scene(transparency=0.9)
    a = render_image(scene, Camera(), 40, 40)
    b = render_image(scene, Camera(), 40, 40)
    assert np.array_equal(a, b)


def test_sample_offsets_grid():
    assert _sample_offsets(1) == [(0.5, 0.5)]
    four = _sample_offsets(2)
    assert len(four) == 4
    assert all(0.0 < x < 1.0 and 0.0 < y < 1.0 for x, y in four)
    with pytest.raises(ValueError):
        _sample_offsets(0)


def test_antialiasing_smooths_edges():
    """Supersampling reduces total edge gradient on silhouettes."""
    scene, camera = default_scene(), Camera()
    hard = render_image(scene, camera, 60, 60, samples_per_axis=1).astype(int)
    soft = render_image(scene, camera, 60, 60, samples_per_axis=3).astype(int)

    def edge_energy(image):
        gx = np.abs(np.diff(image, axis=1)).sum()
        gy = np.abs(np.diff(image, axis=0)).sum()
        return gx + gy

    assert edge_energy(soft) < edge_energy(hard)


def test_antialiased_strips_still_compose_exactly():
    """AA must not break the parallel decomposition invariant."""
    scene, camera = default_scene(), Camera()
    full = render_image(scene, camera, 40, 40, samples_per_axis=2)
    strips = [
        render_rows(scene, camera, y, y + 10, 40, 40, samples_per_axis=2)
        for y in (0, 10, 20, 30)
    ]
    assert np.array_equal(np.vstack(strips), full)


def test_deep_recursion_terminates():
    """Nested dielectrics with high depth must not blow up or hang."""
    image = render_image(glass_scene(transparency=0.9), Camera(), 30, 30,
                         max_depth=8)
    assert image.shape == (30, 30, 3)
