"""Property tests for the log-bucketed histogram's quantile bound.

The documented contract: for any data and any q, the estimate satisfies
``true_q <= est <= true_q * 2**(1/SUB_BUCKETS)`` (nearest-rank true
quantile), with exact count/sum/min/max bookkeeping.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import Histogram

positive_values = st.lists(
    st.floats(min_value=1e-6, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)

quantiles = st.floats(min_value=0.01, max_value=1.0)


def true_quantile(values: list, q: float) -> float:
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@settings(max_examples=200, deadline=None)
@given(values=positive_values, q=quantiles)
def test_quantile_within_one_sub_bucket(values, q):
    h = Histogram()
    for v in values:
        h.observe(v)
    est = h.quantile(q)
    true = true_quantile(values, q)
    # Relative 1e-6 slack absorbs float error at exact bucket edges.
    assert est >= true * (1 - 1e-6)
    assert est <= true * 2 ** (1 / Histogram.SUB_BUCKETS) * (1 + 1e-6)


@settings(max_examples=100, deadline=None)
@given(values=positive_values)
def test_exact_bookkeeping(values):
    h = Histogram()
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.sum == sum(values)
    assert h.min == min(values)
    assert h.max == max(values)
    assert h.quantile(1.0) == h.max
    # Cumulative bucket counts end at the total positive count.
    counts = h.bucket_counts()
    assert counts[-1][1] == len(values)
    assert all(b[1] <= a[1] for b, a in zip(counts, counts[1:]))


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.floats(min_value=-100.0, max_value=0.0,
                                 allow_nan=False), min_size=1, max_size=50),
       q=quantiles)
def test_non_positive_values_pin_to_zero_bucket(values, q):
    h = Histogram()
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.quantile(q) <= 0.0
