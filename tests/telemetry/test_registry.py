"""Registry unit tests: instruments, collectors, Prometheus exposition,
snapshots, and the unified space-stats naming."""

from __future__ import annotations

import pytest

from repro.core.metrics import Metrics
from repro.telemetry import Counter, Gauge, Histogram, MetricsSnapshotter, Registry
from repro.tuplespace import JavaSpace
from tests.conftest import run_in_sim
from tests.tuplespace.entries import TaskEntry


def test_counter_and_gauge_basics():
    registry = Registry()
    c = registry.counter("jobs.done")
    c.inc()
    c.inc(2)
    assert registry.value("jobs.done") == 3
    # Get-or-create returns the same instrument.
    assert registry.counter("jobs.done") is c

    g = registry.gauge("queue.depth")
    g.set(5)
    g.dec()
    assert registry.value("queue.depth") == 4


def test_labels_partition_instruments():
    registry = Registry()
    registry.counter("rpc.calls", op="take").inc(3)
    registry.counter("rpc.calls", op="write").inc(1)
    assert registry.value("rpc.calls", op="take") == 3
    assert registry.value("rpc.calls", op="write") == 1
    assert registry.value("rpc.calls", op="read") is None


def test_kind_conflict_rejected():
    registry = Registry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_histogram_stats_and_quantiles():
    h = Histogram()
    for v in [1.0, 2.0, 4.0, 8.0, 16.0]:
        h.observe(v)
    assert h.count == 5
    assert h.sum == 31.0
    assert h.mean == pytest.approx(6.2)
    assert h.min == 1.0 and h.max == 16.0
    # The estimate is an upper bound within one sub-bucket (2**(1/8)).
    for q, true_value in [(0.2, 1.0), (0.5, 4.0), (1.0, 16.0)]:
        est = h.quantile(q)
        assert true_value <= est <= true_value * 2 ** (1 / 8) + 1e-9


def test_histogram_zero_and_negative_observations():
    h = Histogram()
    h.observe(0.0)
    h.observe(-3.0)
    h.observe(10.0)
    assert h.count == 3
    assert h.quantile(0.5) <= 0.0
    assert h.quantile(1.0) == 10.0


def test_prometheus_text_golden():
    registry = Registry()
    registry.counter("space.writes").inc(7)
    registry.gauge("queue.depth", space="primary").set(2)
    h = registry.histogram("rpc.latency-ms")
    h.observe(1.0)
    h.observe(3.0)
    registry.expose("wal.commits", lambda: 42)

    expected = (
        "# TYPE queue_depth gauge\n"
        'queue_depth{space="primary"} 2\n'
        "# TYPE rpc_latency_ms histogram\n"
        'rpc_latency_ms_bucket{le="1.0905077326652577"} 1\n'
        'rpc_latency_ms_bucket{le="3.0844216508158815"} 2\n'
        'rpc_latency_ms_bucket{le="+Inf"} 2\n'
        "rpc_latency_ms_sum 4\n"
        "rpc_latency_ms_count 2\n"
        "# TYPE space_writes counter\n"
        "space_writes 7\n"
        "# TYPE wal_commits gauge\n"
        "wal_commits 42\n"
    )
    assert registry.prometheus_text() == expected


def test_space_stats_unified_naming(rt):
    """The space's stats ride into the registry as ``space.<key>`` and the
    old dict API keeps working as a read-through view."""
    space = JavaSpace(rt)
    registry = Registry()
    registry.expose_dict("space", space.stats)

    def body():
        space.write(TaskEntry("app", 1, None))
        space.write(TaskEntry("app", 2, None))
        space.take(TaskEntry(), timeout_ms=0.0)

    run_in_sim(rt, body)

    # Old surface: mapping reads, .get defaults, dict() conversion.
    assert space.stats["writes"] == 2
    assert space.stats["takes"] == 1
    assert space.stats.get("wakeups", 0) >= 0
    assert dict(space.stats)["writes"] == 2
    with pytest.raises(KeyError):
        space.stats["nonsense"]

    # New surface: registry collector reads the same live numbers.
    assert registry.value("space.writes") == 2
    assert registry.value("space.takes") == 1
    assert "space_writes 2" in registry.prometheus_text()


def test_snapshot_into_metrics(rt):
    registry = Registry()
    registry.counter("a.total").inc(5)
    h = registry.histogram("b.lat", op="x")
    h.observe(2.0)
    metrics = Metrics(rt)
    registry.snapshot_into(metrics)
    assert metrics.last("telemetry/a.total") == 5
    assert metrics.last("telemetry/b.lat{op=x}.count") == 1
    assert metrics.last("telemetry/b.lat{op=x}.p95") >= 2.0


def test_snapshotter_rides_kernel_advance(rt):
    registry = Registry()
    counter = registry.counter("ticks.total")
    metrics = Metrics(rt)
    snapshotter = MetricsSnapshotter(registry, metrics, interval_ms=100.0)
    assert snapshotter.attach(rt)

    def body():
        for _ in range(5):
            counter.inc()
            rt.sleep(100.0)

    run_in_sim(rt, body)
    snapshotter.detach()
    points = metrics.series["telemetry/ticks.total"]
    assert len(points) >= 4
    # Values are monotone (it's a counter) and timestamped on the virtual clock.
    values = [v for _, v in points]
    assert values == sorted(values)
    assert points[-1][0] >= 400.0


def test_snapshotter_chains_existing_hook(rt):
    seen = []
    rt.kernel.on_advance = seen.append
    snapshotter = MetricsSnapshotter(Registry(), Metrics(rt))
    snapshotter.attach(rt)
    run_in_sim(rt, lambda: rt.sleep(50.0))
    assert seen, "previous on_advance hook was dropped"
    snapshotter.detach()
