"""Doctor acceptance: closed attribution, determinism, regression diffs.

The tentpole criterion: on a warm pipelined job the phase attribution
sums to 100% of the job's wall time (±1%) and the report is
byte-identical across repeated runs of the same seed.
"""

from __future__ import annotations

import pytest

from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.sim.rng import RandomStreams
from repro.telemetry import analyze_job
from repro.telemetry.doctor import (
    PHASE_ORDER,
    explain_phase_regression,
)
from tests.core.toyapp import SumOfSquares


def run_warm_pipelined(n: int = 12, workers: int = 3, prefetch: int = 4):
    """Two back-to-back jobs on one standing framework; analyze the 2nd."""

    def body(runtime):
        cluster = testbed_small(runtime, workers=workers,
                                streams=RandomStreams(5))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=n),
            FrameworkConfig(monitoring=False, trace=True,
                            worker_prefetch=prefetch,
                            master_seed_batch=prefetch,
                            master_drain_batch=prefetch))
        framework.start()
        framework.start_all_workers()
        warm = framework.master.run()
        report = framework.master.run()
        framework.shutdown()
        assert warm.complete and report.complete
        return analyze_job(framework.tracer)

    return run_simulation(body)


def test_attribution_sums_to_job_wall_time():
    doc = run_warm_pipelined()
    assert abs(doc.attributed_fraction() - 1.0) <= 0.01
    assert abs(sum(doc.phase_ms().values()) - doc.wall_ms) <= \
        0.01 * doc.wall_ms
    assert doc.wall_ms > 0


def test_report_is_byte_identical_across_runs():
    a = run_warm_pipelined()
    b = run_warm_pipelined()
    assert a.to_json() == b.to_json()
    assert a.format() == b.format()


def test_phases_cover_the_canonical_order():
    doc = run_warm_pipelined()
    assert tuple(p.name for p in doc.phases) == PHASE_ORDER
    by_phase = doc.phase_ms()
    assert by_phase["compute"] > 0           # the job does real (virtual) work
    assert all(ms >= 0 for ms in by_phase.values())


def test_analyzes_the_warm_job_not_the_warmup():
    # Two 'job' spans share the tracer; the doctor must pick the last.
    doc = run_warm_pipelined()
    # The warm job starts after the warm-up job finished, so its window
    # cannot begin at (or before) the simulation origin.
    assert doc.start_ms > 0


def test_worker_lanes_and_slowest_tasks_populated():
    doc = run_warm_pipelined(workers=3)
    assert len(doc.workers) == 3
    for lane in doc.workers:
        assert 0.0 <= lane.utilization <= 1.0
        assert len(lane.timeline) == 40
    assert doc.slowest, "expected at least one ranked task"
    tops = [t.total_ms for t in doc.slowest]
    assert tops == sorted(tops, reverse=True)
    for task in doc.slowest:
        assert task.total_ms >= task.compute_ms - 1e-9


def test_untraced_run_raises_a_clear_error():
    def body(runtime):
        cluster = testbed_small(runtime, workers=2,
                                streams=RandomStreams(5))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=4),
            FrameworkConfig(monitoring=False, trace=False))
        framework.start()
        framework.run()
        framework.shutdown()
        return framework.tracer

    tracer = run_simulation(body)
    with pytest.raises(ValueError, match="job"):
        analyze_job(tracer)


def test_explain_phase_regression_names_the_grown_phase():
    committed = {"doctor_rpc_ms": 100.0, "doctor_compute_ms": 900.0,
                 "doctor_queue_ms": 5.0}
    current = {"doctor_rpc_ms": 350.0, "doctor_compute_ms": 900.2,
               "doctor_queue_ms": 5.0}
    lines = explain_phase_regression(committed, current)
    assert len(lines) == 1
    assert "rpc" in lines[0] and "100" in lines[0] and "350" in lines[0]


def test_explain_phase_regression_quiet_when_nothing_grew():
    cells = {f"doctor_{p}_ms": 10.0 for p in PHASE_ORDER}
    assert explain_phase_regression(cells, dict(cells)) == []
