"""SLO watchdog: rule grammar, sustain hysteresis, rate/quantile reads."""

from __future__ import annotations

import pytest

from repro.telemetry.registry import Registry
from repro.telemetry.slo import DEFAULT_RULES, SloRule, SloWatchdog


# -- grammar ------------------------------------------------------------------

def test_parse_gauge_rule_with_sustain():
    rule = SloRule.parse("queue-depth: space.queue_depth > 5000 for 2s")
    assert rule.name == "queue-depth"
    assert rule.metric == "space.queue_depth"
    assert rule.op == ">" and rule.threshold == 5000.0
    assert rule.mode is None and rule.sustain_ms == 2000.0


def test_parse_rate_and_quantile_modes():
    rate = SloRule.parse("sheds: admission.shed.rate > 100 for 500ms")
    assert rate.mode == "rate" and rate.sustain_ms == 500.0
    p99 = SloRule.parse("tail: task.latency_ms.p99 > 60000")
    assert p99.mode == "p99" and p99.sustain_ms == 0.0
    low = SloRule.parse("throughput: space.takes < 1")
    assert low.op == "<"


def test_parse_rejects_malformed_rules():
    for bogus in ("no-colon space.queue_depth > 5",
                  "name: metric >= 5",          # only > and < exist
                  "name: metric > ",
                  "name: metric > 5 for 2h"):   # only s/ms units
        with pytest.raises(ValueError):
            SloRule.parse(bogus)


def test_describe_round_trips_through_parse():
    for rule in DEFAULT_RULES:
        assert SloRule.parse(rule.describe()) == rule


# -- evaluation ---------------------------------------------------------------

def make_watchdog(rules):
    registry = Registry()
    watchdog = SloWatchdog(registry, rules=rules)
    return registry, watchdog


def test_gauge_rule_fires_and_resolves():
    registry, watchdog = make_watchdog(["depth: q.depth > 10"])
    gauge = registry.gauge("q.depth")
    gauge.set(5)
    watchdog.evaluate(1000.0)
    assert watchdog.alerts == []
    gauge.set(50)
    watchdog.evaluate(2000.0)
    assert len(watchdog.alerts) == 1
    alert = watchdog.alerts[0]
    assert alert.active and alert.fired_ms == 2000.0 and alert.value == 50
    gauge.set(3)
    watchdog.evaluate(3000.0)
    assert not alert.active and alert.resolved_ms == 3000.0
    assert watchdog.active == []


def test_sustain_requires_the_breach_to_hold():
    registry, watchdog = make_watchdog(["depth: q.depth > 10 for 2s"])
    gauge = registry.gauge("q.depth")
    gauge.set(99)
    watchdog.evaluate(1000.0)       # breach starts
    watchdog.evaluate(2000.0)       # held 1s — not yet
    assert watchdog.alerts == []
    watchdog.evaluate(3000.0)       # held 2s — fires
    assert len(watchdog.alerts) == 1
    # A dip resets the clock: no refire until sustained again.
    gauge.set(0)
    watchdog.evaluate(3500.0)
    gauge.set(99)
    watchdog.evaluate(4000.0)
    watchdog.evaluate(5000.0)
    assert len(watchdog.alerts) == 1
    watchdog.evaluate(6000.0)
    assert len(watchdog.alerts) == 2


def test_gauge_reads_take_worst_across_label_sets():
    registry, watchdog = make_watchdog(["depth: q.depth > 10"])
    registry.gauge("q.depth", shard="0").set(1)
    registry.gauge("q.depth", shard="1").set(11)
    watchdog.evaluate(1000.0)
    assert len(watchdog.alerts) == 1 and watchdog.alerts[0].value == 11


def test_rate_rule_deltas_counter_totals_between_frames():
    registry, watchdog = make_watchdog(["sheds: shed.rate > 10"])
    counter = registry.counter("shed")
    counter.inc(5)
    watchdog.evaluate(1000.0)       # first frame primes the baseline
    assert watchdog.alerts == []
    counter.inc(100)                # 100 in 1s = 100/s > 10
    watchdog.evaluate(2000.0)
    assert len(watchdog.alerts) == 1
    assert watchdog.alerts[0].value == pytest.approx(100.0)


def test_quantile_rule_reads_histogram_p99():
    registry, watchdog = make_watchdog(["tail: lat.p99 > 500"])
    hist = registry.histogram("lat")
    for _ in range(100):
        hist.observe(1.0)
    watchdog.evaluate(1000.0)
    assert watchdog.alerts == []
    for _ in range(100):
        hist.observe(10_000.0)
    watchdog.evaluate(2000.0)
    assert len(watchdog.alerts) == 1


def test_missing_metric_never_breaches():
    _, watchdog = make_watchdog(["ghost: does.not.exist > 0"])
    watchdog.evaluate(1000.0)
    watchdog.evaluate(2000.0)
    assert watchdog.alerts == []


def test_events_and_to_dict_reporting():
    class Events:
        def __init__(self):
            self.seen = []

        def event(self, name, **payload):
            self.seen.append((name, payload))

    registry = Registry()
    events = Events()
    watchdog = SloWatchdog(registry, rules=["depth: q.depth > 10"],
                           metrics=events)
    gauge = registry.gauge("q.depth")
    gauge.set(42)
    watchdog.evaluate(1000.0)
    gauge.set(0)
    watchdog.evaluate(2000.0)
    names = [name for name, _ in events.seen]
    assert names == ["slo-alert", "slo-resolved"]
    doc = watchdog.to_dict()
    assert doc["rules"] == ["depth: q.depth > 10"]
    assert doc["alerts"][0]["rule"] == "depth"
    assert doc["alerts"][0]["resolved_ms"] == 2000.0
