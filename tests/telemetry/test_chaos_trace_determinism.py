"""Tracing must not perturb the chaos campaigns' deterministic replay.

Trace IDs travel inside every entry whether or not tracing is enabled,
so the per-KB latency model sees identical bytes; these tests prove the
recovery traces and virtual timings are byte-identical with ``trace``
on and off, and that the traced run still yields usable artifacts.
"""

from __future__ import annotations

from repro.experiments.chaos import (
    chaos_experiment,
    coordination_chaos_experiment,
    verify_chaos_determinism,
)


def test_chaos_trace_on_off_identical():
    off = chaos_experiment(seed=11, tasks=12, give_up_after_ms=60_000.0)
    on = chaos_experiment(seed=11, tasks=12, give_up_after_ms=60_000.0,
                          trace=True)
    assert on.trace == off.trace
    assert on.report.solution == off.report.solution
    assert on.report.parallel_ms == off.report.parallel_ms
    assert on.correct and off.correct


def test_verify_determinism_passes_with_tracing():
    assert verify_chaos_determinism(seed=11, tasks=12,
                                    give_up_after_ms=60_000.0, trace=True)


def test_traced_chaos_produces_artifacts():
    result = chaos_experiment(seed=11, tasks=12, give_up_after_ms=60_000.0,
                              trace=True)
    tracer = result.tracer
    assert tracer is not None and tracer.enabled
    names = {s.name for s in tracer.spans}
    assert {"job", "task", "compute"} <= names
    # Failure paths annotate their spans rather than vanishing: the
    # poison task surfaces as an errored compute.
    errored = [s for s in tracer.spans
               if s.name == "compute" and s.attrs.get("status") == "error"]
    assert errored
    assert "space_writes" in result.prometheus

    untraced = chaos_experiment(seed=11, tasks=12, give_up_after_ms=60_000.0)
    assert untraced.tracer is not None and not untraced.tracer.enabled
    assert untraced.tracer.spans == []


def test_coordination_chaos_trace_on_off_identical():
    kwargs = dict(seed=5, tasks=12, faults=("kill-primary-space",))
    off = coordination_chaos_experiment(**kwargs)
    on = coordination_chaos_experiment(trace=True, **kwargs)
    assert on.trace == off.trace
    assert on.aggregations == off.aggregations
    assert on.report.parallel_ms == off.report.parallel_ms
    assert on.exactly_once and off.exactly_once
    assert on.tracer.spans
