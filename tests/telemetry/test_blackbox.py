"""Flight recorder: bounded rings, auto-dump triggers, bundle contents."""

from __future__ import annotations

import json

from repro.experiments.chaos import coordination_chaos_experiment
from repro.runtime.simulated import SimulatedRuntime
from repro.telemetry.blackbox import TRIGGERS, FlightRecorder


class FakeSpan:
    def __init__(self, name, proc, start_ms, end_ms):
        self.name = name
        self.proc = proc
        self.start_ms = start_ms
        self.end_ms = end_ms

    def to_dict(self):
        return {"name": self.name, "proc": self.proc,
                "start_ms": self.start_ms, "end_ms": self.end_ms}


def test_span_ring_is_bounded_per_process():
    runtime = SimulatedRuntime()
    flight = FlightRecorder(runtime, span_capacity=4)
    for i in range(100):
        flight._on_span(FakeSpan("task", "worker-0", float(i), float(i) + 1))
        flight._on_span(FakeSpan("task", "worker-1", float(i), float(i) + 1))
    bundle = flight.dump("manual")
    assert set(bundle.spans) == {"worker-0", "worker-1"}
    for spans in bundle.spans.values():
        assert len(spans) == 4                      # capacity, not 100
        assert spans[-1]["start_ms"] == 99.0        # newest survive


def test_event_ring_is_bounded_and_dump_does_not_drain_it():
    runtime = SimulatedRuntime()
    flight = FlightRecorder(runtime, event_capacity=8)
    for i in range(50):
        flight._on_event(float(i), "space-take", {"seq": i})
    first = flight.dump("manual")
    second = flight.dump("manual")
    assert len(first.events) == 8
    assert first.events == second.events            # snapshot, not drain
    assert first.events[-1] == (49.0, "space-take", {"seq": 49})


def test_promotion_event_auto_dumps_a_bundle():
    runtime = SimulatedRuntime()
    flight = FlightRecorder(runtime)
    assert "standby-promoted" in TRIGGERS
    flight._on_event(123.0, "standby-promoted", {"host": "space", "epoch": 2})
    assert len(flight.bundles) == 1
    bundle = flight.bundles[0]
    assert bundle.reason == "standby-promoted"
    assert bundle.trigger["epoch"] == 2
    assert bundle.has_alert("standby-promoted")
    assert not bundle.has_alert("never-happened")


def test_kill_primary_campaign_produces_promotion_postmortem(tmp_path):
    result = coordination_chaos_experiment(
        seed=42, faults=("kill-primary-space",))
    assert result.report.complete
    bundles = result.postmortems
    assert bundles, "expected the promotion to auto-dump a postmortem"
    promo = [b for b in bundles if b.reason == "standby-promoted"]
    assert promo, [b.reason for b in bundles]
    bundle = promo[0]
    assert bundle.has_alert("standby-promoted")
    assert bundle.fault_plan, "bundle should carry the fault plan"
    assert bundle.spans or bundle.events, "bundle should carry recent history"
    # The bundle round-trips through JSON (the CI artifact format).
    path = tmp_path / "postmortem.json"
    bundle.write(path)
    doc = json.loads(path.read_text())
    assert doc["reason"] == "standby-promoted"
    assert doc["trigger"]["name"] == "standby-promoted"
    assert doc["fault_plan"]
    assert "metrics" in doc


def test_postmortems_are_deterministic_across_replays():
    a = coordination_chaos_experiment(seed=7, faults=("kill-primary-space",))
    b = coordination_chaos_experiment(seed=7, faults=("kill-primary-space",))
    dumps_a = [json.dumps(x.to_dict(), sort_keys=True, default=repr)
               for x in a.postmortems]
    dumps_b = [json.dumps(x.to_dict(), sort_keys=True, default=repr)
               for x in b.postmortems]
    assert dumps_a == dumps_b and dumps_a
