"""Satellite surfaces: the cluster console, runtime-clock log stamps,
Metrics ring-buffer/summary, and the trace/top CLI commands."""

from __future__ import annotations

import io
import logging

import pytest

from repro.cli import main
from repro.core.metrics import Metrics
from repro.telemetry import Tracer, cluster_table
from repro.util.log import configure, get_logger
from tests.telemetry.test_trace import run_traced


# -- cluster console -----------------------------------------------------------


def test_cluster_table_final_snapshot():
    report, framework = run_traced(n=8, workers=2)
    table = cluster_table(framework, report=report)
    assert "cluster 'toy-squares'" in table
    assert "worker1" in table and "worker2" in table
    assert "space: writes=" in table
    assert f"complete={report.complete}" in table
    # Every worker row carries a tasks count; they sum to the job size.
    rows = [line for line in table.splitlines()
            if line.startswith(("worker1", "worker2"))]
    assert sum(int(row.split()[2]) for row in rows) == 8


def test_cluster_table_without_report():
    _, framework = run_traced(n=4, workers=2)
    table = cluster_table(framework)
    assert "job:" not in table
    assert "space:" in table


def test_cluster_table_shows_tenancy_lines():
    from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
    from repro.experiments.chaos import TenantSquares
    from repro.experiments.harness import run_simulation
    from repro.node.cluster import testbed_small
    from repro.sim.rng import RandomStreams

    def body(runtime):
        cluster = testbed_small(runtime, workers=2, streams=RandomStreams(1))
        framework = AdaptiveClusterFramework(
            runtime, cluster, TenantSquares(base=0, n=4, task_cost=50.0),
            FrameworkConfig(monitoring=False, compute_real=True,
                            tenant="victim", priority=2,
                            tenant_shares={"victim": 2.0},
                            admission=True, preemption=True))
        framework.start()
        framework.start_all_workers()
        framework.master.run()
        table = cluster_table(framework)
        framework.shutdown()
        return table

    table = run_simulation(body)
    assert "admission: checked=" in table
    assert "tenants: victim=" in table
    assert "preemption: preemptions=" in table


def test_cluster_table_silent_without_tenancy():
    _, framework = run_traced(n=4, workers=2)
    table = cluster_table(framework)
    assert "admission:" not in table
    assert "preemption:" not in table


def test_top_command(capsys):
    assert main(["top", "ray-tracing", "--workers", "2", "--follow"]) == 0
    out = capsys.readouterr().out
    assert "cluster 'ray-tracing'" in out
    assert "job:" in out  # final snapshot includes the report line


def test_trace_command(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    prom_file = tmp_path / "m.prom"
    assert main(["trace", "ray-tracing", "--workers", "2",
                 "--out", str(out_file),
                 "--metrics-out", str(prom_file)]) == 0
    out = capsys.readouterr().out
    assert "coverage" in out and "perfetto" in out
    assert out_file.exists() and prom_file.exists()
    assert "space_writes" in prom_file.read_text()


# -- log satellites ------------------------------------------------------------


def test_log_clock_prefix_and_trace_id(rt):
    tracer = Tracer(rt, enabled=True)
    stream = io.StringIO()
    root = logging.getLogger("repro")
    before = list(root.handlers)
    try:
        configure(level=logging.INFO, stream=stream, force=True,
                  clock=rt.now, tracer=tracer)
        log = get_logger("worker")
        log.info("outside any span")
        span = tracer.start("compute", "app/3")
        with tracer.activate(span):
            log.info("inside the span")
        span.end()
    finally:
        root.handlers = before
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[t=0.000]")
    assert "[-]" in lines[0]
    assert "[app/3]" in lines[1]


def test_log_default_format_unchanged():
    stream = io.StringIO()
    root = logging.getLogger("repro")
    before = list(root.handlers)
    try:
        configure(level=logging.INFO, stream=stream, force=True)
        get_logger("worker").info("plain")
    finally:
        root.handlers = before
    assert stream.getvalue() == "repro.worker INFO plain\n"


# -- Metrics ring buffer and summary -------------------------------------------


def test_metrics_default_behaviour_unchanged(rt):
    metrics = Metrics(rt)
    for i in range(10):
        metrics.record("x", i)
        metrics.event("e", i=i)
    assert isinstance(metrics.series["x"], list)
    assert isinstance(metrics.events, list)
    assert len(metrics.series["x"]) == 10 and len(metrics.events) == 10


def test_metrics_ring_buffer_caps_retention(rt):
    metrics = Metrics(rt, max_points=3)
    for i in range(10):
        metrics.record("x", i)
        metrics.event("e", i=i)
    assert [v for _, v in metrics.series["x"]] == [7.0, 8.0, 9.0]
    assert len(metrics.events) == 3
    assert metrics.last("x") == 9.0


def test_metrics_max_points_validation(rt):
    with pytest.raises(ValueError):
        Metrics(rt, max_points=0)


def test_metrics_summary(rt):
    metrics = Metrics(rt)
    for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
        metrics.record("lat", v)
    summary = metrics.summary("lat")
    assert summary == {"count": 5.0, "mean": 3.0, "p50": 3.0,
                       "p95": 5.0, "max": 5.0}
    assert metrics.summary("missing") is None


def test_metrics_summary_respects_ring_window(rt):
    metrics = Metrics(rt, max_points=2)
    for v in [100.0, 1.0, 2.0]:
        metrics.record("lat", v)
    assert metrics.summary("lat")["max"] == 2.0
