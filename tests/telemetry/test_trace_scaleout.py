"""Coverage + Chrome export hold up beyond the single-space testbed.

The tracer's acceptance numbers were established on the classic one-space
deployment; these tests pin them on the two scale-out paths — a sharded
space (scatter/gather planning) and a multi-tenant contention campaign
(TENANT_STRIDE-namespaced task ids across tenants).
"""

from __future__ import annotations

import json

from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.chaos import (
    TENANT_STRIDE,
    contention_chaos_experiment,
)
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.sim.rng import RandomStreams
from tests.core.toyapp import SumOfSquares


def run_sharded_traced(n: int = 8, workers: int = 2, shards: int = 4):
    def body(runtime):
        cluster = testbed_small(runtime, workers=workers,
                                streams=RandomStreams(3))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=n),
            FrameworkConfig(monitoring=False, trace=True, shards=shards))
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report, framework

    return run_simulation(body)


# -- sharded ------------------------------------------------------------------

def test_sharded_coverage_of_job_window():
    report, framework = run_sharded_traced()
    assert report.complete
    tracer = framework.tracer
    job = tracer.find("job")
    assert tracer.coverage(job.start_ms, job.end_ms) >= 0.95


def test_sharded_run_emits_scatter_spans():
    _, framework = run_sharded_traced(shards=4)
    scatters = [s for s in framework.tracer.spans if s.name == "scatter"]
    assert scatters, "sharded planning should record scatter spans"
    for span in scatters:
        assert span.end_ms is not None and span.end_ms >= span.start_ms


def test_sharded_chrome_export_is_valid(tmp_path):
    _, framework = run_sharded_traced(n=4)
    path = tmp_path / "trace.json"
    framework.tracer.write_chrome(str(path))
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert event["ph"] in ("X", "i", "M")
        if event["ph"] == "X":
            assert event["dur"] >= 0 and event["ts"] >= 0


def test_sharded_span_ids_deterministic_across_runs():
    def keys(framework):
        return [(s.name, s.trace_id, s.span_id, s.parent_id, s.proc,
                 s.start_ms, s.end_ms) for s in framework.tracer.spans]

    _, first = run_sharded_traced(n=6)
    _, second = run_sharded_traced(n=6)
    assert keys(first) == keys(second)


# -- multi-tenant -------------------------------------------------------------

def run_contention_traced(tenants: int = 4):
    return contention_chaos_experiment(
        seed=11, tenants=tenants, victim_tasks=6, aggressor=False,
        trace=True)


def test_tenant_task_spans_are_stride_namespaced():
    tenants = 4
    result = run_contention_traced(tenants=tenants)
    tracer = result.tracer
    assert tracer is not None and tracer.enabled

    task_ids = sorted(
        int(s.trace_id.rsplit("/", 1)[1])
        for s in tracer.spans if s.name == "task")
    assert task_ids, "expected task spans from the traced campaign"
    lanes = {tid // TENANT_STRIDE for tid in task_ids}
    assert len(lanes) > 1, "tenants should occupy distinct id lanes"
    assert lanes <= set(range(tenants))
    # Namespacing means no two tenants' spans collide on trace_id.
    trace_ids = [s.trace_id for s in tracer.spans if s.name == "task"]
    assert len(trace_ids) == len(set(trace_ids))


def test_contention_chrome_export_covers_every_tenant_lane(tmp_path):
    result = run_contention_traced(tenants=3)
    path = tmp_path / "trace.json"
    result.tracer.write_chrome(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events
    task_events = [e for e in events
                   if e["ph"] == "X" and e["name"] == "task"]
    assert task_events
    for event in task_events:
        assert event["dur"] >= 0 and event["ts"] >= 0


def test_contention_coverage_of_each_tenant_job():
    result = run_contention_traced(tenants=3)
    tracer = result.tracer
    jobs = [s for s in tracer.spans if s.name == "job"]
    assert jobs, "each tenant master should record a job span"
    for job in jobs:
        if job.end_ms is None:      # a starved tenant may never finish
            continue
        assert tracer.coverage(job.start_ms, job.end_ms) >= 0.90
