"""End-to-end span propagation: master → space → worker → master.

The tracing acceptance criteria: deterministic span IDs across runs,
a causally-ordered span tree per task, ≥ 95% coverage of the virtual
job time, a valid Chrome ``trace_event`` export, and zero perturbation
of the virtual timeline when tracing is toggled.
"""

from __future__ import annotations

import json

from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.sim.rng import RandomStreams
from tests.core.toyapp import SumOfSquares


def run_traced(trace: bool = True, n: int = 8, workers: int = 2):
    def body(runtime):
        cluster = testbed_small(runtime, workers=workers,
                                streams=RandomStreams(3))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=n),
            FrameworkConfig(monitoring=False, trace=trace))
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report, framework

    return run_simulation(body)


def span_key(span):
    return (span.name, span.trace_id, span.span_id, span.parent_id,
            span.proc, span.start_ms, span.end_ms)


def test_span_tree_covers_every_task():
    report, framework = run_traced(n=8)
    tracer = framework.tracer
    assert tracer.enabled
    assert report.complete

    job = tracer.find("job")
    assert job is not None and job.end_ms is not None
    assert job.attrs.get("complete") is True

    planning = tracer.find("planning")
    aggregation = tracer.find("aggregation")
    assert planning.parent_id == job.span_id
    assert aggregation.parent_id == job.span_id

    by_name: dict[str, list] = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span)

    # One task span per task, rooted at the job, with the trace ID that
    # travelled in the entry ("<app_id>/<task_id>").
    tasks = {s.trace_id: s for s in by_name["task"]}
    assert set(tasks) == {f"toy-squares/{i}" for i in range(8)}
    for span in tasks.values():
        assert span.parent_id == job.span_id
        assert span.span_id == span.trace_id  # root of the per-task tree
        assert span.end_ms is not None
        assert span.attrs.get("status") == "aggregated"

    # Worker-side compute spans hang off the task root and carry the
    # executing process.
    computes = {s.trace_id: s for s in by_name["compute"]}
    assert set(computes) == set(tasks)
    for trace_id, span in computes.items():
        assert span.parent_id == trace_id
        assert span.proc.startswith("worker")
        task = tasks[trace_id]
        assert task.start_ms <= span.start_ms <= span.end_ms <= task.end_ms

    # Master-side aggregation shares, one per task.
    aggregates = {s.trace_id: s for s in by_name["aggregate"]}
    assert set(aggregates) == set(tasks)
    for span in aggregates.values():
        assert span.proc == "master"

    # RPC spans nest under the ambient compute span on the worker.
    compute_ids = {s.span_id for s in by_name["compute"]}
    nested_rpcs = [s for s in tracer.spans if s.name.startswith("rpc.")
                   and s.parent_id in compute_ids]
    assert nested_rpcs, "no RPC span attached to a compute span"


def test_span_ids_deterministic_across_runs():
    _, first = run_traced(n=6)
    _, second = run_traced(n=6)
    assert [span_key(s) for s in first.tracer.spans] == \
        [span_key(s) for s in second.tracer.spans]


def test_coverage_of_job_window():
    _, framework = run_traced(n=8)
    tracer = framework.tracer
    job = tracer.find("job")
    assert tracer.coverage(job.start_ms, job.end_ms) >= 0.95


def test_chrome_trace_export_is_valid(tmp_path):
    _, framework = run_traced(n=4)
    path = tmp_path / "trace.json"
    framework.tracer.write_chrome(str(path))
    doc = json.loads(path.read_text())

    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    names = {e["name"] for e in events if e["ph"] == "M"}
    assert "process_name" in names and "thread_name" in names
    for event in events:
        assert event["ph"] in ("X", "i", "M")
        if event["ph"] == "X":
            assert event["dur"] >= 0 and event["ts"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"

    # Virtual ms map to trace µs.
    job = framework.tracer.find("job")
    job_events = [e for e in events
                  if e["ph"] == "X" and e["name"] == "job"]
    assert job_events[0]["ts"] == round(job.start_ms * 1000.0, 3)


def test_jsonl_export_round_trips(tmp_path):
    _, framework = run_traced(n=4)
    path = tmp_path / "spans.jsonl"
    framework.tracer.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == len(framework.tracer.spans)
    parsed = [json.loads(line) for line in lines]
    assert {p["name"] for p in parsed} >= {"job", "task", "compute"}


def test_disabled_tracer_records_nothing():
    _, framework = run_traced(trace=False)
    tracer = framework.tracer
    assert not tracer.enabled
    assert tracer.spans == []
    # Unguarded callers still get a usable (null) span.
    span = tracer.start("anything", "t1")
    span.annotate(x=1)
    with span:
        pass
    assert tracer.spans == []


def test_tracing_does_not_perturb_virtual_time():
    """Trace IDs are minted whether or not spans are recorded, so entry
    bytes — and hence the per-KB latency model — are identical."""
    report_off, _ = run_traced(trace=False)
    report_on, _ = run_traced(trace=True)
    assert report_on.parallel_ms == report_off.parallel_ms
    assert report_on.planning_ms == report_off.planning_ms
    assert report_on.aggregation_ms == report_off.aggregation_ms
    assert report_on.solution == report_off.solution
