"""WAL codec cross-compat: logs survive switching between frame formats.

An operator upgrade path — run for a while under ``codec="pickle"``,
switch to ``codec="compact"``, keep appending, crash, recover — must
never strand durable state.  ``decode_log`` dispatches per frame on the
first byte (0xC4 compact, 0x80 pickle PROTO), so a mixed log replays as
one stream; these tests pin that down at the store level and end-to-end
through :class:`DurableSpace`.
"""

from __future__ import annotations

import pytest

from repro.runtime import SimulatedRuntime
from repro.tuplespace.durable import DurableSpace
from repro.tuplespace.wal import (
    WAL_MAGIC,
    CommitRecord,
    FileWalStore,
    WriteAheadLog,
    decode_log,
    op_take,
    op_write,
    record_frame,
)
from repro.util.codec import encode_entry
from tests.tuplespace.entries import TaskEntry


@pytest.fixture
def runtime():
    rt = SimulatedRuntime()
    yield rt
    rt.shutdown()


def run(runtime, fn, name="test-proc"):
    proc = runtime.kernel.spawn(fn, name=name)
    runtime.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def _frame_first_bytes(raw):
    """First byte of every frame in a WAL log (0xC4 or pickle 0x80)."""
    import io
    import pickle
    import struct

    firsts, pos = [], 0
    while pos < len(raw):
        firsts.append(raw[pos])
        if raw[pos] == WAL_MAGIC:
            body_len, = struct.unpack_from("<I", raw, pos + 1)
            pos += 5 + body_len
        else:
            fh = io.BytesIO(raw)
            fh.seek(pos)
            pickle.load(fh)
            pos = fh.tell()
    return firsts


def _records(n, start=1, epoch=0):
    return [CommitRecord(lsn=start + i,
                         ops=(op_write(start + i, b"x" * 20, float("inf")),),
                         epoch=epoch)
            for i in range(n)]


# -- frame level ---------------------------------------------------------------


def test_mixed_frame_log_decodes_as_one_stream(tmp_path):
    path = tmp_path / "wal"
    store = FileWalStore(str(path), codec="pickle")
    for record in _records(3):
        store.append(record)
    store.sync()
    store.close()

    # Reopen under compact: old pickle frames replay, new frames are 0xC4.
    store = FileWalStore(str(path), codec="compact")
    assert [r.lsn for r in store.records] == [1, 2, 3]
    for record in _records(3, start=4):
        store.append(record)
    store.sync()
    store.close()

    raw = (path.parent / "wal.log").read_bytes()
    assert raw[0] == 0x80  # pickle PROTO opcode leads the file
    assert WAL_MAGIC in raw  # compact frames follow
    replayed = decode_log(raw)
    assert [r.lsn for r in replayed] == [1, 2, 3, 4, 5, 6]
    assert replayed == _records(3) + _records(3, start=4)


def test_compact_log_reopens_under_pickle(tmp_path):
    path = tmp_path / "wal"
    store = FileWalStore(str(path), codec="compact")
    for record in _records(4):
        store.append(record)
    store.sync()
    store.close()
    store = FileWalStore(str(path), codec="pickle")
    assert [r.lsn for r in store.records] == [1, 2, 3, 4]
    assert store.last_lsn() == 4


def test_compact_frames_preserve_op_value_types():
    # Expirations may be float (lease deadlines, +inf) or int (FOREVER
    # sentinels from older call sites); the two write tags keep the type.
    record = CommitRecord(
        lsn=1,
        ops=(op_write(1, b"data", float("inf")),
             op_write(2, b"more", 12),
             op_take(1)),
        epoch=2)
    frame = record_frame(record, "compact")
    assert frame[0] == WAL_MAGIC
    decoded, = decode_log(frame)
    assert decoded == record
    exps = [op[3] for op in decoded.ops[:2]]  # (kind, id, data, expiration)
    assert [type(e) for e in exps] == [float, int]


def test_torn_compact_tail_is_dropped(tmp_path):
    path = tmp_path / "wal"
    store = FileWalStore(str(path), codec="compact")
    for record in _records(3):
        store.append(record)
    store.sync()
    store.close()
    log = path.parent / "wal.log"
    log.write_bytes(log.read_bytes()[:-3])  # crash mid-write of last frame
    store = FileWalStore(str(path), codec="compact")
    assert [r.lsn for r in store.records] == [1, 2]


def test_frame_cache_reencodes_on_codec_switch():
    record = _records(1)[0]
    compact = record_frame(record, "compact")
    assert compact[0] == WAL_MAGIC
    # The cached compact frame must not satisfy a pickle request
    # (cross-codec replication re-encodes).
    pickled = record_frame(record, "pickle")
    assert pickled[0] == 0x80
    assert decode_log(compact) == decode_log(pickled) == [record]


def test_cached_frame_does_not_change_record_equality():
    plain, framed = _records(1)[0], _records(1)[0]
    record_frame(framed, "compact")
    assert plain == framed
    assert hash(plain) == hash(framed)


def test_store_rejects_unknown_codec(tmp_path):
    with pytest.raises(Exception):
        FileWalStore(str(tmp_path / "wal"), codec="msgpack")


# -- end to end through DurableSpace ------------------------------------------


def test_pickle_era_space_recovers_under_compact(runtime, tmp_path):
    """The headline upgrade scenario: entries written (and partially
    consumed) under the pickle codec are all there after recovering the
    same store with ``codec="compact"`` — and new writes keep working."""
    path = str(tmp_path / "wal")
    store = FileWalStore(path, codec="pickle")
    space = DurableSpace(runtime, wal=WriteAheadLog(store),
                         snapshot_every=None, codec="pickle")

    def before():
        for i in range(6):
            space.write(TaskEntry("app", i, f"p{i}"))
        assert space.take(TaskEntry(task_id=0), timeout_ms=0.0) is not None

    run(runtime, before)
    store.sync()
    store.close()

    survivor = FileWalStore(path, codec="compact")
    recovered = DurableSpace.recover(runtime, survivor,
                                     snapshot_every=None, codec="compact")

    def after():
        recovered.write(TaskEntry("app", 99, "new"))
        got = []
        while True:
            entry = recovered.take(TaskEntry(app="app"), timeout_ms=0.0)
            if entry is None:
                return got
            got.append((entry.task_id, entry.payload))

    got = run(runtime, after)
    assert got == [(1, "p1"), (2, "p2"), (3, "p3"), (4, "p4"),
                   (5, "p5"), (99, "new")]
    survivor.sync()
    # The frames written post-switch really are compact on disk: walk
    # the log with the same first-byte dispatch decode_log uses.
    raw = open(path + ".log", "rb").read()
    firsts = _frame_first_bytes(raw)
    assert firsts[-1] == WAL_MAGIC  # post-switch tail
    assert firsts[0] == 0x80  # pickle era intact
    survivor.close()


def test_recovery_round_trips_compact_entry_frames(runtime, tmp_path):
    """Entry payload bytes inside WAL ops are themselves codec frames;
    a compact store must replay compact entry frames bit-exactly."""
    path = str(tmp_path / "wal")
    store = FileWalStore(path, codec="compact")
    space = DurableSpace(runtime, wal=WriteAheadLog(store),
                         snapshot_every=None, codec="compact")
    entry = TaskEntry("app", 1, {"nested": [1, 2, (3, 4)]})

    def before():
        space.write(entry)

    run(runtime, before)
    store.sync()
    store.close()

    survivor = FileWalStore(path, codec="compact")
    recovered = DurableSpace.recover(runtime, survivor,
                                     snapshot_every=None, codec="compact")

    def after():
        return recovered.take(TaskEntry(), timeout_ms=0.0)

    got = run(runtime, after)
    assert got.__dict__ == entry.__dict__
    # Byte-identity of the stored frame (the canonical-encoding contract
    # applied through a crash).
    assert encode_entry(got) == encode_entry(entry)
    survivor.close()
