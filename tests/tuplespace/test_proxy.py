"""Remote space access: proxy/server RPC, remote transactions, crash recovery."""

from __future__ import annotations

import pytest

from repro.errors import SpaceError
from repro.net import Address, LatencyModel, Network
from repro.tuplespace import JavaSpace, SpaceProxy, SpaceServer
from tests.tuplespace.entries import TaskEntry

SERVER = Address("master", 4155)


@pytest.fixture()
def env(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0, per_kb_ms=0.0))
    space = JavaSpace(rt)
    server = SpaceServer(rt, space, net, SERVER)
    server.start()
    return net, space, server


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_remote_write_take_round_trip(rt, env):
    net, space, _ = env

    def proc():
        proxy = SpaceProxy(net, "worker1", SERVER)
        proxy.write(TaskEntry("app", 1, "remote-payload"))
        entry = proxy.take(TaskEntry(), timeout_ms=100.0)
        proxy.close()
        return entry.payload

    assert run(rt, proc) == "remote-payload"


def test_remote_operations_pay_network_latency(rt, env):
    net, _, _ = env

    def proc():
        proxy = SpaceProxy(net, "worker1", SERVER)
        t0 = rt.now()
        proxy.write(TaskEntry("app", 1, None))
        elapsed = rt.now() - t0
        proxy.close()
        return elapsed

    # request + response, 0.5 ms each way at minimum
    assert run(rt, proc) >= 1.0


def test_two_proxies_share_one_space(rt, env):
    net, _, _ = env
    results = {}

    def producer():
        proxy = SpaceProxy(net, "producer", SERVER)
        for i in range(5):
            proxy.write(TaskEntry("app", i, None))
        proxy.close()

    def consumer():
        proxy = SpaceProxy(net, "consumer", SERVER)
        got = []
        for _ in range(5):
            entry = proxy.take(TaskEntry(), timeout_ms=1000.0)
            got.append(entry.task_id)
        results["ids"] = sorted(got)
        proxy.close()

    rt.spawn(producer, name="producer")
    rt.spawn(consumer, name="consumer")
    rt.kernel.run_until_idle()
    assert results["ids"] == [0, 1, 2, 3, 4]


def test_blocking_take_across_network(rt, env):
    net, space, _ = env

    def late_writer():
        rt.sleep(50.0)
        space.write(TaskEntry("app", 9, None))

    def taker():
        proxy = SpaceProxy(net, "worker", SERVER)
        entry = proxy.take(TaskEntry(), timeout_ms=None)
        proxy.close()
        return entry.task_id, rt.now()

    rt.spawn(late_writer, name="late")
    proc = rt.kernel.spawn(taker, name="taker")
    rt.kernel.run_until_idle()
    task_id, t = proc.result
    assert task_id == 9
    assert t >= 50.0


def test_remote_take_timeout(rt, env):
    net, _, _ = env

    def proc():
        proxy = SpaceProxy(net, "worker", SERVER)
        entry = proxy.take(TaskEntry(), timeout_ms=30.0)
        proxy.close()
        return entry, rt.now()

    entry, t = run(rt, proc)
    assert entry is None
    assert t >= 30.0


def test_remote_transaction_commit(rt, env):
    net, space, _ = env

    def proc():
        proxy = SpaceProxy(net, "worker", SERVER)
        with proxy.transaction() as txn:
            proxy.write(TaskEntry("app", 1, None), txn=txn)
        visible = proxy.count(TaskEntry())
        proxy.close()
        return visible

    assert run(rt, proc) == 1


def test_remote_transaction_abort_restores_take(rt, env):
    net, space, _ = env

    def proc():
        proxy = SpaceProxy(net, "worker", SERVER)
        proxy.write(TaskEntry("app", 1, None))
        txn = proxy.transaction()
        proxy.take(TaskEntry(), txn=txn, timeout_ms=100.0)
        txn.abort()
        restored = proxy.take(TaskEntry(), timeout_ms=100.0)
        proxy.close()
        return restored is not None

    assert run(rt, proc) is True


def test_connection_drop_aborts_open_transactions(rt, env):
    """A worker crash mid-task must put the task back (paper's fault tolerance)."""
    net, space, _ = env

    def crashing_worker():
        proxy = SpaceProxy(net, "doomed", SERVER)
        proxy.write(TaskEntry("app", 1, None))
        txn = proxy.transaction()
        proxy.take(TaskEntry(), txn=txn, timeout_ms=100.0)
        proxy.close()  # dies without commit

    def survivor():
        rt.sleep(100.0)
        proxy = SpaceProxy(net, "survivor", SERVER)
        entry = proxy.take(TaskEntry(), timeout_ms=500.0)
        proxy.close()
        return entry is not None

    rt.spawn(crashing_worker, name="doomed")
    proc = rt.kernel.spawn(survivor, name="survivor")
    rt.kernel.run_until_idle()
    assert proc.result is True


def test_remote_error_is_marshalled(rt, env):
    net, _, _ = env

    def proc():
        proxy = SpaceProxy(net, "worker", SERVER)
        try:
            proxy._call("bogus_op", {})
        except SpaceError as exc:
            proxy.close()
            return str(exc)

    message = run(rt, proc)
    assert "bogus_op" in message


def test_remote_notify_delivers_events(rt, env):
    net, _, _ = env
    events = []

    def proc():
        proxy = SpaceProxy(net, "watcher", SERVER)
        proxy.notify(TaskEntry(app="hot"), events.append, runtime=rt)
        rt.sleep(5.0)
        proxy.write(TaskEntry("cold", 1, None))
        proxy.write(TaskEntry("hot", 2, None))
        rt.sleep(50.0)
        return [e.sequence for e in events]

    assert run(rt, proc) == [1]


def test_server_stop_refuses_new_connections(rt, env):
    net, _, server = env

    def proc():
        server.stop()
        from repro.errors import ConnectionRefusedError_
        with pytest.raises(ConnectionRefusedError_):
            net.connect("worker", SERVER)
        return True

    assert run(rt, proc)
