"""Server-side transaction lease expiry.

The lease watchdog is what turns a crashed/stuck worker into a
recoverable event: its taken task entry comes back to the space when the
transaction lease runs out, *without* the connection having to drop.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import Metrics
from repro.errors import TransactionAbortedError
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime import SimulatedRuntime
from repro.tuplespace.entry import Entry
from repro.tuplespace.proxy import SpaceProxy, SpaceServer
from repro.tuplespace.space import JavaSpace
from repro.tuplespace.transaction import TransactionManager


class Point(Entry):
    def __init__(self, x=None, y=None) -> None:
        self.x = x
        self.y = y


@pytest.fixture
def runtime():
    rt = SimulatedRuntime()
    yield rt
    rt.shutdown()


def run(runtime, fn, name="test-proc"):
    proc = runtime.kernel.spawn(fn, name=name)
    runtime.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def test_watchdog_aborts_expired_txn_and_restores_the_take(runtime):
    metrics = Metrics(runtime)
    space = JavaSpace(runtime)
    manager = TransactionManager(runtime, metrics=metrics)

    def scenario():
        space.write(Point(1, 1))
        txn = manager.create(timeout_ms=500.0)
        assert space.take(Point(1, 1), txn=txn, timeout_ms=0.0) is not None
        assert space.count(Point(1, 1)) == 0     # hidden by the open txn
        # The holder never commits, never aborts, never disconnects.
        runtime.sleep(1_000.0)
        assert txn.state == "aborted"            # watchdog fired, not lazily
        assert space.count(Point(1, 1)) == 1     # the take rolled back
        with pytest.raises(TransactionAbortedError):
            space.write(Point(2, 2), txn=txn)

    run(runtime, scenario)
    assert manager.aborted_by_lease == 1
    assert metrics.events_named("txn-lease-expired")


def test_renewal_rearms_the_watchdog(runtime):
    manager = TransactionManager(runtime)
    space = JavaSpace(runtime)

    def scenario():
        space.write(Point(1, 1))
        txn = manager.create(timeout_ms=500.0)
        space.take(Point(1, 1), txn=txn, timeout_ms=0.0)
        runtime.sleep(400.0)
        txn.lease.renew(500.0)                   # now expires at t=900
        runtime.sleep(300.0)                     # t=700: past the old deadline
        assert txn.state == "active"             # old timer chased, not fired
        runtime.sleep(400.0)                     # t=1100: past the new deadline
        assert txn.state == "aborted"
        assert space.count(Point(1, 1)) == 1

    run(runtime, scenario)
    assert manager.aborted_by_lease == 1


def test_commit_before_expiry_cancels_the_watchdog(runtime):
    manager = TransactionManager(runtime)
    space = JavaSpace(runtime)

    def scenario():
        space.write(Point(1, 1))
        txn = manager.create(timeout_ms=500.0)
        space.take(Point(1, 1), txn=txn, timeout_ms=0.0)
        txn.commit()
        runtime.sleep(1_000.0)                   # watchdog must be a no-op
        assert txn.state == "committed"
        assert space.count(Point(1, 1)) == 0     # the take stuck

    run(runtime, scenario)
    assert manager.aborted_by_lease == 0


def test_remote_txn_expires_with_a_healthy_connection(runtime):
    """The exact worker-stall scenario: the proxy connection stays open,
    yet the server-side lease abort releases the task entry."""
    network = Network(runtime)
    metrics = Metrics(runtime)
    space = JavaSpace(runtime)
    address = Address("master", 9300)
    server = SpaceServer(runtime, space, network, address,
                         txn_manager=TransactionManager(runtime, metrics=metrics))
    server.start()

    def scenario():
        worker = SpaceProxy(network, "worker", address)
        observer = SpaceProxy(network, "observer", address)
        worker.write(Point(1, 1))
        txn = worker.transaction(timeout_ms=500.0)
        assert worker.take(Point(1, 1), txn=txn, timeout_ms=0.0) is not None
        assert observer.count(Point(1, 1)) == 0
        runtime.sleep(1_000.0)                   # worker "hangs"; conn is fine
        assert observer.take(Point(1, 1), timeout_ms=0.0) is not None
        with pytest.raises(TransactionAbortedError):
            worker.write(Point(2, 2), txn=txn)
        worker.close()
        observer.close()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)
    assert metrics.events_named("txn-lease-expired")
