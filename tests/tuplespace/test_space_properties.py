"""Property-based tests (hypothesis) on tuple-space invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime import SimulatedRuntime
from repro.tuplespace import JavaSpace, TransactionManager, matches
from tests.tuplespace.entries import TaskEntry

# Small payload universe keeps shrinking effective.
payloads = st.one_of(
    st.none(),
    st.integers(-5, 5),
    st.text(alphabet="abc", max_size=3),
    st.lists(st.integers(0, 3), max_size=3),
)
apps = st.sampled_from(["alpha", "beta", "gamma"])
entries = st.builds(TaskEntry, app=apps, task_id=st.integers(0, 9), payload=payloads)
maybe = lambda s: st.one_of(st.none(), s)  # noqa: E731
templates = st.builds(
    TaskEntry, app=maybe(apps), task_id=maybe(st.integers(0, 9)), payload=st.none()
)


@given(entry=entries)
def test_entry_matches_its_own_copy(entry):
    clone = TaskEntry(entry.app, entry.task_id, entry.payload)
    assert matches(entry, clone)


@given(entry=entries, template=templates)
def test_match_iff_fieldwise_consistent(entry, template):
    expected = all(
        getattr(template, f) is None or getattr(template, f) == getattr(entry, f)
        for f in ("app", "task_id", "payload")
    )
    assert matches(template, entry) == expected


def _with_space(fn):
    """Run ``fn(rt, space)`` inside a fresh simulated process."""
    runtime = SimulatedRuntime()
    try:
        space = JavaSpace(runtime)
        proc = runtime.kernel.spawn(lambda: fn(runtime, space), name="prop")
        runtime.kernel.run()
        return proc.result
    finally:
        runtime.shutdown()


@settings(max_examples=40, deadline=None)
@given(batch=st.lists(entries, min_size=1, max_size=12), template=templates)
def test_conservation_takes_plus_remaining_equals_written(batch, template):
    def body(rt, space):
        for entry in batch:
            space.write(entry)
        taken = []
        while True:
            got = space.take(template, timeout_ms=0.0)
            if got is None:
                break
            taken.append(got)
        remaining = space.count(TaskEntry())
        return len(taken), remaining

    n_taken, remaining = _with_space(body)
    expected_taken = sum(1 for e in batch if matches(template, e))
    assert n_taken == expected_taken
    assert remaining == len(batch) - expected_taken


@settings(max_examples=40, deadline=None)
@given(batch=st.lists(entries, min_size=1, max_size=10))
def test_take_returns_entries_matching_template(batch):
    template = TaskEntry(app="alpha")

    def body(rt, space):
        for entry in batch:
            space.write(entry)
        out = []
        while True:
            got = space.take(template, timeout_ms=0.0)
            if got is None:
                return out
            out.append(got)

    for entry in _with_space(body):
        assert entry.app == "alpha"


@settings(max_examples=30, deadline=None)
@given(
    batch=st.lists(entries, min_size=1, max_size=8),
    commit=st.booleans(),
)
def test_transaction_all_or_nothing(batch, commit):
    def body(rt, space):
        txns = TransactionManager(rt)
        txn = txns.create()
        for entry in batch:
            space.write(entry, txn=txn)
        if commit:
            txn.commit()
        else:
            txn.abort()
        return space.count(TaskEntry())

    visible = _with_space(body)
    assert visible == (len(batch) if commit else 0)


@settings(max_examples=30, deadline=None)
@given(
    batch=st.lists(entries, min_size=1, max_size=8),
    n_abort=st.integers(0, 8),
)
def test_aborted_takes_restore_everything(batch, n_abort):
    def body(rt, space):
        txns = TransactionManager(rt)
        for entry in batch:
            space.write(entry)
        txn = txns.create()
        for _ in range(min(n_abort, len(batch))):
            space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        txn.abort()
        return space.count(TaskEntry())

    assert _with_space(body) == len(batch)


@settings(max_examples=25, deadline=None)
@given(
    lease_short=st.floats(1.0, 50.0),
    lease_long=st.floats(200.0, 400.0),
    wait=st.floats(60.0, 150.0),
)
def test_lease_expiry_is_a_watertight_boundary(lease_short, lease_long, wait):
    def body(rt, space):
        space.write(TaskEntry("short", 1, None), lease_ms=lease_short)
        space.write(TaskEntry("long", 2, None), lease_ms=lease_long)
        rt.sleep(wait)  # lease_short < wait < lease_long
        return (
            space.read(TaskEntry(app="short"), timeout_ms=0.0),
            space.read(TaskEntry(app="long"), timeout_ms=0.0),
        )

    short, long_ = _with_space(body)
    assert short is None
    assert long_ is not None
