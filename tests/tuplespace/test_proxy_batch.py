"""ProxyBatch: many space operations pipelined into one ``batch`` RPC."""

from __future__ import annotations

import pytest

from repro.errors import SpaceError, TransactionError
from repro.net import Address, LatencyModel, Network
from repro.tuplespace import JavaSpace, SpaceProxy, SpaceServer
from tests.tuplespace.entries import TaskEntry

SERVER = Address("master", 4155)


@pytest.fixture()
def env(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0,
                                           per_kb_ms=0.0))
    space = JavaSpace(rt)
    SpaceServer(rt, space, net, SERVER).start()
    return net, space


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def counted(proxy):
    """Wrap the proxy's batch transport with an RPC counter."""
    calls = []
    original = proxy._batch_once

    def spy(ops):
        calls.append(len(ops))
        return original(ops)

    proxy._batch_once = spy
    return calls


def test_flush_is_one_rpc_with_values_in_order(rt, env):
    net, space = env

    def body():
        proxy = SpaceProxy(net, "client", SERVER)
        calls = counted(proxy)
        batch = proxy.batch()
        batch.write(TaskEntry("a", 1, None))
        batch.write_all([TaskEntry("a", 2, None), TaskEntry("a", 3, None)])
        batch.count(TaskEntry())
        batch.take_multiple(TaskEntry(), max_entries=2)
        values = batch.flush()
        proxy.close()
        return calls, values

    calls, values = run(rt, body)
    assert calls == [4]                      # four sub-ops, one message
    lease, written, count, taken = values
    assert written == {"count": 2}           # write_all's wire-level reply
    assert count == 3
    assert [e.task_id for e in taken] == [1, 2]


def test_empty_flush_sends_nothing(rt, env):
    net, space = env

    def body():
        proxy = SpaceProxy(net, "client", SERVER)
        calls = counted(proxy)
        out = proxy.batch().flush()
        proxy.close()
        return calls, out

    assert run(rt, body) == ([], [])


def test_intra_batch_txn_create_resolves_batch_ref(rt, env):
    net, space = env

    def body():
        space.write_all([TaskEntry("a", i, None) for i in range(4)])
        proxy = SpaceProxy(net, "client", SERVER)
        calls = counted(proxy)
        batch = proxy.batch()
        txn = batch.txn_create(timeout_ms=60_000.0)
        batch.take_multiple(TaskEntry(), max_entries=3, txn=txn)
        placeholder = dict(txn.txn_id)       # before the flush resolves it
        values = batch.flush()
        taken = values[-1]
        hidden = space.count(TaskEntry())    # takes pending under the txn
        txn.abort()                          # batch held one txn: takes revert
        restored = space.count(TaskEntry())
        proxy.close()
        return calls, placeholder, txn.txn_id, len(taken), hidden, restored

    calls, placeholder, txn_id, taken, hidden, restored = run(rt, body)
    assert calls == [2]                      # open + take in a single RPC
    assert placeholder == {"batch_ref": 0}
    assert isinstance(txn_id, int)           # resolved to the server's id
    assert taken == 3
    assert hidden == 1
    assert restored == 4


def test_commit_in_batch_marks_handle_completed(rt, env):
    net, space = env

    def body():
        proxy = SpaceProxy(net, "client", SERVER)
        batch = proxy.batch()
        txn = batch.txn_create()
        batch.write(TaskEntry("a", 7, None), txn=txn)
        batch.commit(txn)
        batch.flush()
        visible = space.count(TaskEntry())
        proxy.close()
        return txn.completed, visible

    assert run(rt, body) == (True, 1)


def test_failing_sub_op_raises_and_keeps_the_prefix(rt, env):
    net, space = env

    def body():
        proxy = SpaceProxy(net, "client", SERVER)
        batch = proxy.batch()
        batch.write(TaskEntry("a", 1, None))
        batch.commit(RemoteStub())           # unknown txn id: fails
        batch.write(TaskEntry("a", 2, None))
        try:
            batch.flush()
        except TransactionError:
            error = True
        else:
            error = False
        count = space.count(TaskEntry())
        proxy.close()
        return error, count

    error, count = run(rt, body)
    assert error
    assert count == 1                        # prefix applied, suffix skipped


class RemoteStub:
    txn_id = 999_999
    completed = False


def test_bad_batch_ref_is_rejected(rt, env):
    net, space = env

    def body():
        proxy = SpaceProxy(net, "client", SERVER)
        ops = [("write", {"entry": TaskEntry("a", 1, None),
                          "lease_ms": float("inf"),
                          "txn_id": {"batch_ref": 5}})]
        replies = proxy._call_batch(ops)
        proxy.close()
        return replies

    replies = run(rt, body)
    assert len(replies) == 1
    assert not replies[0]["ok"]
    assert replies[0]["type"] == "TransactionError"


def test_nested_batch_is_not_batchable(rt, env):
    net, space = env

    def body():
        proxy = SpaceProxy(net, "client", SERVER)
        replies = proxy._call_batch([("batch", {"ops": []})])
        proxy.close()
        return replies

    replies = run(rt, body)
    assert not replies[0]["ok"]
