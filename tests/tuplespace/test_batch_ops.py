"""JavaSpaces05-style batch operations: write_all / take_multiple / contents."""

from __future__ import annotations

import pytest

from repro.errors import SpaceError
from repro.net import Address, Network
from repro.tuplespace import JavaSpace, SpaceProxy, SpaceServer, TransactionManager
from tests.conftest import run_in_sim
from tests.tuplespace.entries import TaskEntry


@pytest.fixture()
def space(rt):
    return JavaSpace(rt)


def test_write_all_stores_everything(rt, space):
    def proc():
        leases = space.write_all([TaskEntry("a", i, None) for i in range(5)])
        return len(leases), space.count(TaskEntry())

    assert run_in_sim(rt, proc) == (5, 5)


def test_write_all_atomic_under_transaction(rt, space):
    txns = TransactionManager(rt)

    def proc():
        txn = txns.create()
        space.write_all([TaskEntry("a", i, None) for i in range(4)], txn=txn)
        before = space.count(TaskEntry())
        txn.abort()
        return before, space.count(TaskEntry())

    assert run_in_sim(rt, proc) == (0, 0)


def test_take_multiple_drains_up_to_cap(rt, space):
    def proc():
        space.write_all([TaskEntry("a", i, None) for i in range(7)])
        batch = space.take_multiple(TaskEntry(), max_entries=5, timeout_ms=0.0)
        rest = space.take_multiple(TaskEntry(), max_entries=5, timeout_ms=0.0)
        return [e.task_id for e in batch], [e.task_id for e in rest]

    batch, rest = run_in_sim(rt, proc)
    assert batch == [0, 1, 2, 3, 4]
    assert rest == [5, 6]


def test_take_multiple_returns_early_with_fewer_matches(rt, space):
    def proc():
        space.write(TaskEntry("a", 1, None))
        return space.take_multiple(TaskEntry(), max_entries=10, timeout_ms=0.0)

    assert len(run_in_sim(rt, proc)) == 1


def test_take_multiple_blocks_for_first_entry_only(rt, space):
    def writer():
        rt.sleep(50.0)
        space.write(TaskEntry("a", 1, None))
        # A second entry arrives later — take_multiple must NOT wait for it.
        rt.sleep(500.0)
        space.write(TaskEntry("a", 2, None))

    def taker():
        batch = space.take_multiple(TaskEntry(), max_entries=5, timeout_ms=None)
        return len(batch), rt.now()

    rt.spawn(writer, name="writer")
    proc = rt.kernel.spawn(taker, name="taker")
    rt.kernel.run_until_idle()
    count, t = proc.result
    assert count == 1
    assert t == pytest.approx(50.0)


def test_take_multiple_timeout_empty(rt, space):
    def proc():
        return space.take_multiple(TaskEntry(), max_entries=3, timeout_ms=20.0)

    assert run_in_sim(rt, proc) == []


def test_take_multiple_rejects_bad_cap(rt, space):
    def proc():
        with pytest.raises(SpaceError):
            space.take_multiple(TaskEntry(), max_entries=0)
        return True

    assert run_in_sim(rt, proc)


def test_contents_is_nondestructive_snapshot(rt, space):
    def proc():
        space.write_all([TaskEntry("a", i, [i]) for i in range(3)])
        view = space.contents(TaskEntry())
        view[0].payload.append(99)  # mutating the copy is harmless
        still = space.count(TaskEntry())
        fresh = space.contents(TaskEntry())
        return len(view), still, fresh[0].payload

    count, still, payload = run_in_sim(rt, proc)
    assert count == 3
    assert still == 3
    assert payload == [0]


def test_contents_respects_transaction_visibility(rt, space):
    txns = TransactionManager(rt)

    def proc():
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        outside = len(space.contents(TaskEntry()))
        inside = len(space.contents(TaskEntry(), txn=txn))
        txn.commit()
        return outside, inside

    assert run_in_sim(rt, proc) == (0, 1)


def test_batch_ops_over_proxy(rt):
    net = Network(rt)
    space = JavaSpace(rt)
    SpaceServer(rt, space, net, Address("master", 4155)).start()

    def proc():
        proxy = SpaceProxy(net, "client", Address("master", 4155))
        written = proxy.write_all([TaskEntry("a", i, None) for i in range(6)])
        view = proxy.contents(TaskEntry())
        batch = proxy.take_multiple(TaskEntry(), max_entries=4, timeout_ms=100.0)
        proxy.close()
        return written, len(view), [e.task_id for e in batch]

    proc_handle = rt.kernel.spawn(proc, name="test-root")
    rt.kernel.run_until_idle()
    written, viewed, batch = proc_handle.result
    assert written == 6
    assert viewed == 6
    assert batch == [0, 1, 2, 3]
