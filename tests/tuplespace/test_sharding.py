"""Sharded tuple space: hash ring properties, routing, scatter-gather.

Ring invariants are checked with hypothesis (stability under growth is
the property consistent hashing exists for); the router tests run against
real :class:`SpaceServer` instances over the simulated network, one per
shard, so scatter-gather and shard-local transactions exercise the same
RPC path production uses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpaceError
from repro.net import Address, LatencyModel, Network
from repro.tuplespace import (
    HashRing,
    JavaSpace,
    ShardRouter,
    SpaceProxy,
    SpaceServer,
    stable_hash,
)
from tests.tuplespace.entries import ResultEntry, TaskEntry

keys = st.one_of(st.integers(-10_000, 10_000),
                 st.text(alphabet="abcdef0123456789", max_size=12))


# ---------------------------------------------------------------- hash ring --

@given(key=keys)
def test_stable_hash_is_deterministic(key):
    assert stable_hash(key) == stable_hash(key)


@given(key=keys, shards=st.integers(1, 32))
def test_ring_routes_in_range(key, shards):
    ring = HashRing(shards)
    assert 0 <= ring.shard_for(key) < shards


@settings(max_examples=25, deadline=None)
@given(shards=st.integers(1, 12), seed=st.integers(0, 9))
def test_ring_growth_moves_keys_only_to_the_new_shard(shards, seed):
    """Adding shard N+1 never remaps a key between pre-existing shards."""
    old_ring = HashRing(shards)
    new_ring = HashRing(shards + 1)
    for i in range(300):
        key = f"key:{seed}:{i}"
        old_shard = old_ring.shard_for(key)
        new_shard = new_ring.shard_for(key)
        assert new_shard == old_shard or new_shard == shards


@settings(max_examples=10, deadline=None)
@given(shards=st.integers(2, 12))
def test_ring_growth_remaps_about_one_over_n(shards):
    """Adding a shard moves ≈ 1/(N+1) of keys (≤ 2× with 64 vnodes)."""
    old_ring = HashRing(shards)
    new_ring = HashRing(shards + 1)
    n = 2000
    moved = sum(
        1 for i in range(n)
        if old_ring.shard_for(f"key:{i}") != new_ring.shard_for(f"key:{i}")
    )
    assert moved <= 2.0 * n / (shards + 1)


def test_ring_spreads_keys_over_every_shard():
    ring = HashRing(8)
    hits = [0] * 8
    for i in range(4000):
        hits[ring.shard_for(i)] += 1
    assert min(hits) > 0
    # No shard holds more than ~3x its fair share.
    assert max(hits) < 3 * 4000 / 8


# ------------------------------------------------------------------- router --

N_SHARDS = 4
ADDRESSES = [Address("spacehost", 4255 + 2 * i) for i in range(N_SHARDS)]


@pytest.fixture()
def env(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0,
                                           per_kb_ms=0.0))
    spaces = [JavaSpace(rt) for _ in range(N_SHARDS)]
    servers = [SpaceServer(rt, space, net, address)
               for space, address in zip(spaces, ADDRESSES)]
    for server in servers:
        server.start()
    return net, spaces, servers


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def make_router(net, host="client"):
    return ShardRouter(net, host, ADDRESSES)


def test_routed_write_lands_on_the_ring_shard(rt, env):
    net, spaces, _ = env

    def proc():
        router = make_router(net)
        for i in range(12):
            router.write(TaskEntry("app", i, i))
        router.close()
        ring = router.ring
        for i in range(12):
            shard = ring.shard_for(i)
            assert spaces[shard].count(TaskEntry(task_id=i)) == 1, \
                f"task {i} not on its ring shard {shard}"
        return sum(space.count(TaskEntry()) for space in spaces)

    assert run(rt, proc) == 12


def test_keyed_take_reads_one_shard(rt, env):
    net, _, _ = env

    def proc():
        router = make_router(net)
        router.write(TaskEntry("app", 7, "payload"))
        entry = router.take(TaskEntry(task_id=7), timeout_ms=100.0)
        router.close()
        return entry.payload

    assert run(rt, proc) == "payload"


def test_wildcard_take_scatters_first_match_wins(rt, env):
    net, _, _ = env

    def proc():
        router = make_router(net)
        for i in range(8):
            router.write(TaskEntry("app", i, i))
        got = {router.take(TaskEntry(), timeout_ms=100.0).task_id
               for _ in range(8)}
        missing = router.take_if_exists(TaskEntry())
        router.close()
        return got, missing

    got, missing = run(rt, proc)
    assert got == set(range(8))
    assert missing is None


def test_wildcard_count_and_contents_merge_all_shards(rt, env):
    net, _, _ = env

    def proc():
        router = make_router(net)
        for i in range(10):
            router.write(TaskEntry("app", i, i))
        count = router.count(TaskEntry())
        ids = sorted(e.task_id for e in router.contents(TaskEntry()))
        router.close()
        return count, ids

    count, ids = run(rt, proc)
    assert count == 10
    assert ids == list(range(10))


def test_wildcard_take_multiple_gathers_across_shards(rt, env):
    net, spaces, _ = env

    def proc():
        router = make_router(net)
        router.write_all([TaskEntry("app", i, i) for i in range(10)])
        chunk = router.take_multiple(TaskEntry(), 6, timeout_ms=100.0)
        rest = router.take_multiple(TaskEntry(), 10, timeout_ms=100.0)
        router.close()
        touched = sum(1 for space in spaces
                      if space.count(TaskEntry()) == 0)
        return len(chunk), len(rest), touched

    took, rest, emptied = run(rt, proc)
    assert took == 6
    assert rest == 4
    assert emptied == N_SHARDS  # everything drained


def test_parallel_write_all_reports_total(rt, env):
    net, spaces, _ = env

    def proc():
        router = make_router(net)
        total = router.write_all([TaskEntry("app", i, i) for i in range(16)])
        router.close()
        return total, sum(space.count(TaskEntry()) for space in spaces)

    total, present = run(rt, proc)
    assert total == 16
    assert present == 16


def test_blocked_wildcard_take_wakes_on_any_shard(rt, env):
    """A camped scatter consumer must wake when the entry lands on a
    shard other than the one it polled first."""
    net, _, _ = env

    def proc():
        router = make_router(net)
        results = []

        def consumer():
            entry = router.take(ResultEntry(), timeout_ms=5_000.0)
            results.append((rt.now(), entry.task_id))

        writer_router = make_router(net, host="writer")
        consumer_proc = rt.spawn(consumer, name="consumer")
        rt.sleep(50.0)
        writer_router.write(ResultEntry("app", 3, "late"))
        consumer_proc.join()
        writer_router.close()
        router.close()
        return results[0]

    woke_at, task_id = run(rt, proc)
    assert task_id == 3
    # Wakes on arrival (~50ms), not a full 250ms camp quantum later.
    assert woke_at < 150.0


def test_transaction_pins_to_one_shard(rt, env):
    net, _, _ = env

    def proc():
        router = make_router(net)
        router.write(TaskEntry("app", 1, "a"))
        ring = router.ring
        task_shard = ring.shard_for(1)
        # A result id that hashes to the same shard can share the txn...
        same = next(i for i in range(100) if ring.shard_for(i) == task_shard)
        other = next(i for i in range(100) if ring.shard_for(i) != task_shard)
        with router.transaction(timeout_ms=10_000.0) as txn:
            entry = router.take(TaskEntry(task_id=1), txn=txn,
                                timeout_ms=100.0)
            assert entry is not None
            router.write(ResultEntry("app", same, "ok"), txn=txn)
            # ...but a cross-shard write under the same txn must refuse.
            try:
                router.write(ResultEntry("app", other, "bad"), txn=txn)
                crossed = False
            except SpaceError:
                crossed = True
        committed = router.count(ResultEntry())
        router.close()
        return crossed, committed

    crossed, committed = run(rt, proc)
    assert crossed is True
    assert committed == 1


def test_aborted_transaction_restores_the_take(rt, env):
    net, _, _ = env

    def proc():
        router = make_router(net)
        router.write(TaskEntry("app", 5, "x"))
        txn = router.transaction(timeout_ms=10_000.0)
        assert router.take(TaskEntry(task_id=5), txn=txn,
                           timeout_ms=100.0) is not None
        txn.abort()
        back = router.take(TaskEntry(task_id=5), timeout_ms=100.0)
        router.close()
        return back is not None

    assert run(rt, proc) is True


def test_batch_prefetch_under_txn_single_rpc_cycle(rt, env):
    """The worker steady-state: one batch writes the previous result and
    prefetches the next tasks under a fresh shard-local transaction."""
    net, _, _ = env

    def proc():
        router = make_router(net)
        router.write_all([TaskEntry("app", i, i) for i in range(8)])
        txn = router.transaction(timeout_ms=10_000.0)
        batch = router.batch()
        batch.take_multiple(TaskEntry(), 3, txn=txn, timeout_ms=1_000.0)
        got = batch.flush()[-1]
        taken = [e.task_id for e in got]
        # Commit the txn and write a result in the next batch.
        batch = router.batch()
        batch.commit(txn)
        batch.write(ResultEntry("app", taken[0], "r"))
        batch.flush()
        count = router.count(ResultEntry())
        remaining = router.count(TaskEntry())
        router.close()
        shards = {router.ring.shard_for(i) for i in taken}
        return taken, shards, count, remaining

    taken, shards, results, remaining = run(rt, proc)
    # The transaction is shard-local, so the prefetch drains ONE shard:
    # up to 3 entries, all from the same partition.
    assert 1 <= len(taken) <= 3
    assert len(shards) == 1
    assert results == 1
    assert remaining == 8 - len(taken)


def test_single_shard_router_passthrough(rt):
    """shards=1 degenerates to plain proxy semantics (blocking timeouts
    pass through; no scatter machinery)."""
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0,
                                           per_kb_ms=0.0))
    address = Address("solo", 4355)
    space = JavaSpace(rt)
    SpaceServer(rt, space, net, address).start()

    def proc():
        router = ShardRouter(net, "client", [address])
        router.write(TaskEntry("app", 1, "only"))
        entry = router.take(TaskEntry(), timeout_ms=100.0)
        empty = router.take(TaskEntry(), timeout_ms=10.0)
        router.close()
        return entry.payload, empty

    payload, empty = run(rt, proc)
    assert payload == "only"
    assert empty is None


def test_proxy_exists_blocks_without_carrying_the_entry(rt, env):
    net, _, _ = env

    def proc():
        writer = SpaceProxy(net, "writer", ADDRESSES[0])
        watcher = SpaceProxy(net, "watcher", ADDRESSES[0])
        seen = {}

        def watch():
            t0 = rt.now()
            seen["hit"] = watcher.exists(TaskEntry(), timeout_ms=5_000.0)
            seen["waited"] = rt.now() - t0

        watch_proc = rt.spawn(watch, name="watch")
        rt.sleep(40.0)
        writer.write(TaskEntry("app", 1, "fat" * 1000))
        watch_proc.join()
        # Non-consuming: the entry is still there.
        still = writer.take_if_exists(TaskEntry())
        writer.close()
        watcher.close()
        return seen["hit"], seen["waited"], still is not None

    hit, waited, still = run(rt, proc)
    assert hit is True
    assert waited >= 40.0
    assert still is True


def test_entries_without_shard_key_go_to_class_home_shard(rt, env):
    net, spaces, _ = env

    def proc():
        router = make_router(net)
        # task_id=None → shard_key() None → class-home shard.
        for _ in range(4):
            router.write(TaskEntry("app", None, "keyless"))
        router.close()
        return [space.count(TaskEntry()) for space in spaces]

    counts = run(rt, proc)
    assert sorted(counts) == [0, 0, 0, 4]  # all on one (stable) home shard
