"""Epoch fencing: WAL epochs, lease bounds, the double-promotion race,
and synchronous-replication commit gating."""

from __future__ import annotations

import os

import pytest

from repro.core.metrics import Metrics
from repro.errors import ConnectionClosedError, FencedError
from repro.jini.join import JoinManager
from repro.jini.lookup import LookupService, ServiceItem
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime import SimulatedRuntime
from repro.tuplespace.durable import DurableSpace, HotStandby
from repro.tuplespace.entry import Entry
from repro.tuplespace.failover import SpaceSupervisor
from repro.tuplespace.proxy import SpaceProxy, SpaceServer
from repro.tuplespace.wal import CommitRecord, FileWalStore, WriteAheadLog

PRIMARY = Address("master", 9100)
STANDBY = Address("master", 9101)
REGISTRAR = Address("master", 9200)
#: Primary on its own host, so pause/partition faults hit it alone.
REMOTE_PRIMARY = Address("phost", 9100)


class Point(Entry):
    def __init__(self, x=None, y=None) -> None:
        self.x = x
        self.y = y


@pytest.fixture
def runtime():
    rt = SimulatedRuntime()
    yield rt
    rt.shutdown()


def run(runtime, fn, name="test-proc"):
    proc = runtime.kernel.spawn(fn, name=name)
    runtime.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


# -- WAL epoch durability ---------------------------------------------------


def test_file_store_epoch_round_trips_across_reopen(tmp_path):
    path = tmp_path / "wal"
    store = FileWalStore(path)
    assert store.epoch == 0
    store.set_epoch(3)
    store.set_epoch(1)              # epochs never move backwards
    assert store.epoch == 3
    assert FileWalStore(path).epoch == 3


def test_record_carried_epoch_adopted_on_replay(tmp_path):
    path = tmp_path / "wal"
    store = FileWalStore(path)
    store.append(CommitRecord(1, (), epoch=5))
    # Even with the sidecar gone (e.g. an old-layout log), replay must
    # adopt the highest epoch any record committed under.
    os.remove(os.fspath(path) + ".epoch")
    again = FileWalStore(path)
    assert again.epoch == 5
    assert again.last_lsn() == 1


def test_wal_append_stamps_the_current_epoch():
    wal = WriteAheadLog()
    assert wal.append(()).epoch == 0
    wal.set_epoch(2)
    assert wal.append(()).epoch == 2
    assert wal.bump_epoch() == 3
    assert wal.append(()).epoch == 3


def test_recovered_space_keeps_its_fencing_epoch(runtime, tmp_path):
    path = tmp_path / "wal"

    def scenario():
        space = DurableSpace(runtime, name="d",
                             wal=WriteAheadLog(FileWalStore(path)))
        space.wal.bump_epoch()
        space.wal.bump_epoch()
        space.write(Point(1, 1))
        # Crash: discard the process, keep the disk.
        recovered = DurableSpace.recover(runtime, FileWalStore(path),
                                         name="d")
        assert recovered.wal.epoch == 2
        assert recovered.take(Point(1, 1), timeout_ms=0.0) is not None

    run(runtime, scenario)


# -- lease renewal bounds ---------------------------------------------------


def test_ping_renewal_is_bounded_by_the_supervisor_clock(runtime):
    network = Network(runtime)
    space = DurableSpace(runtime, name="primary")
    server = SpaceServer(runtime, space, network, PRIMARY)
    server.fencing = True
    server.start()

    def scenario():
        server.grant_lease(300.0)           # expires at t=300
        conn = network.connect("sup", PRIMARY)
        # A renewal bound below the current expiry never shortens it.
        conn.send({"op": "ping",
                   "args": {"renew_lease": True, "valid_until": 150.0}})
        assert conn.receive(timeout_ms=1_000.0)["ok"]
        assert server._lease_expires == 300.0
        # A later bound extends exactly to the supervisor's clock — not
        # to arrival time + lease_ms, or a renewal that crawled through
        # a slow link would grant more lease than the supervisor waits
        # out before promoting.
        conn.send({"op": "ping",
                   "args": {"renew_lease": True, "valid_until": 450.0}})
        assert conn.receive(timeout_ms=1_000.0)["ok"]
        assert server._lease_expires == 450.0
        # Legacy renewals without a bound keep the arrival-clock rule.
        runtime.sleep(200.0)                # grants ≈ now + lease_ms > 450
        conn.send({"op": "ping", "args": {"renew_lease": True}})
        assert conn.receive(timeout_ms=1_000.0)["ok"]
        assert server._lease_expires > 450.0
        conn.close()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)


def test_expired_lease_refuses_renewal_and_fences_commits(runtime):
    network = Network(runtime)
    space = DurableSpace(runtime, name="primary")
    server = SpaceServer(runtime, space, network, PRIMARY)
    server.fencing = True
    server.start()

    def scenario():
        server.grant_lease(100.0)
        runtime.sleep(200.0)                # lease ran out at t=100
        conn = network.connect("sup", PRIMARY)
        conn.send({"op": "ping",
                   "args": {"renew_lease": True,
                            "valid_until": runtime.now() + 500.0}})
        reply = conn.receive(timeout_ms=1_000.0)
        # A stale renewal cannot resurrect a self-fenced primary, and
        # the reply says so — the supervisor promotes on this signal.
        assert reply["ok"] and reply["value"]["lease_expired"]
        assert server._lease_expires == 100.0
        conn.close()
        proxy = SpaceProxy(network, "client", PRIMARY)
        with pytest.raises(FencedError):
            proxy.write(Point(1, 1))
        assert server.fenced_rpcs >= 1
        proxy.close()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)


# -- the double-promotion race ----------------------------------------------


def test_double_promotion_race_fences_the_old_primary(runtime):
    """Primary stalls past its lease, the standby is promoted, the old
    primary wakes: its next commit must be fenced with no side effects."""
    network = Network(runtime)
    space = DurableSpace(runtime, name="primary")
    server = SpaceServer(runtime, space, network, PRIMARY)
    server.fencing = True
    server.start()
    standby = HotStandby(runtime, network, "master", primary_address=PRIMARY,
                         address=STANDBY)
    standby.start()

    def scenario():
        server.grant_lease(300.0)
        proxy = SpaceProxy(network, "client", PRIMARY)
        proxy.write(Point(1, 0))
        runtime.sleep(100.0)
        assert standby.space.wal.last_lsn == 1
        # The primary stalls (GC pause): no renewal arrives for longer
        # than the lease.  The supervisor waits the lease out, then
        # promotes the standby under a bumped epoch.
        runtime.sleep(400.0)
        promoted = standby.promote()
        assert standby.space.wal.epoch == 1
        # Old primary wakes and tries to acknowledge its next commit:
        # fenced by its own expired lease, before any side effect.
        with pytest.raises(FencedError):
            proxy.write(Point(2, 0))
        assert server.fenced_rpcs == 1
        assert space.wal.last_lsn == 1          # the write never happened
        # A client that already talked to the new primary stamps epoch 1;
        # the stamp alone proves to the old primary it was superseded.
        conn = network.connect("client2", PRIMARY)
        conn.send({"op": "write", "epoch": 1,
                   "args": {"entry": Point(3, 0), "lease_ms": float("inf"),
                            "txn_id": None}})
        reply = conn.receive(timeout_ms=1_000.0)
        assert reply["ok"] is False
        assert reply["type"] == "FencedError"
        assert server.superseded
        conn.close()
        # Meanwhile the promoted server serves the replica.
        assert promoted.epoch == 1
        p2 = SpaceProxy(network, "client", STANDBY)
        assert p2.take(Point(1, 0), timeout_ms=0.0) is not None
        p2.write(Point(9, 9))
        assert standby.space.wal.epoch == 1
        p2.close()
        proxy.close()
        standby.stop()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)


def test_supervised_promotion_waits_out_the_inflight_lease(runtime):
    """Under a pause the supervisor cannot know whether its renewals got
    through, so promotion must wait out the last bound put on the wire."""
    network = Network(runtime)
    metrics = Metrics(runtime)
    space = DurableSpace(runtime, name="primary")
    server = SpaceServer(runtime, space, network, REMOTE_PRIMARY)
    server.fencing = True
    server.start()
    standby = HotStandby(runtime, network, "master",
                         primary_address=REMOTE_PRIMARY, address=STANDBY,
                         metrics=metrics)
    standby.start()
    lookup = LookupService(runtime, network, REGISTRAR)
    lookup.start()
    item = ServiceItem("space:test", REMOTE_PRIMARY, {"type": "JavaSpaces"})
    join = JoinManager(runtime, network, "master", REGISTRAR, item,
                       lease_ms=float("inf"))

    def scenario():
        join.start()
        supervisor = SpaceSupervisor(
            runtime, network, "master", standby,
            primary_address=REMOTE_PRIMARY, registrar=REGISTRAR,
            service_item=item, heartbeat_ms=100.0, max_misses=3,
            old_registration_id=join.registration_id, metrics=metrics,
        )
        server.grant_lease(supervisor.lease_ms)
        supervisor.start()
        proxy = SpaceProxy(network, "client", REMOTE_PRIMARY)
        proxy.write(Point(1, 0))
        runtime.sleep(550.0)
        assert not supervisor.failed_over
        # GC-pause the primary's host.  Probes are *held*, not refused —
        # each renewal may still land when the pause lifts, so the
        # supervisor must assume the worst about every one it sent.
        network.pause("phost")
        runtime.sleep(2_000.0)
        assert supervisor.failed_over
        waits = metrics.events_named("failover-lease-wait")
        assert waits and waits[0][1]["wait_ms"] > 0
        misses = metrics.events_named("primary-heartbeat-miss")
        promoted = metrics.events_named("standby-promoted")
        assert misses and promoted
        last_miss_t = max(t for t, _ in misses)
        # Without the wait, promotion happens at the third miss; with
        # it, strictly after the last renewal bound (send + lease_ms).
        assert promoted[0][0] >= last_miss_t + 200.0
        # Pause lifts: held renewals are refused (the lease is long
        # expired), the held fence order lands, and the deposed primary
        # demotes into a resyncing standby.
        network.resume("phost")
        runtime.sleep(300.0)
        assert server.superseded
        names = [n for _, n, _ in metrics.events]
        assert "primary-fenced" in names
        assert "standby-rejoining" in names
        # The deposed primary is still draining its old connections:
        # a commit riding one of them is fenced, not served.
        with pytest.raises(FencedError):
            proxy.write(Point(9, 9))
        assert server.fenced_rpcs >= 1
        proxy.close()
        # The rejoined standby anti-entropy-syncs from the new primary.
        p2 = SpaceProxy(network, "client", STANDBY)
        p2.write(Point(2, 0))
        runtime.sleep(1_500.0)
        rejoined = supervisor._spawned_standbys[0]
        got = sorted(p.x for p in rejoined.space.contents(Point()))
        assert got == [1, 2]
        p2.close()
        supervisor.stop()
        standby.stop()
        lookup.stop()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)


# -- synchronous replication gating -----------------------------------------


def test_sync_replication_gates_commits_on_standby_ack(runtime):
    """With the primary's egress cut, a commit cannot be acknowledged:
    the client is dropped unanswered (indeterminate, checker-sound)."""
    network = Network(runtime)
    space = DurableSpace(runtime, name="primary")
    server = SpaceServer(runtime, space, network, REMOTE_PRIMARY)
    server.sync_replication = True
    server.repl_ack_timeout_ms = 500.0
    server.start()
    standby = HotStandby(runtime, network, "master",
                         primary_address=REMOTE_PRIMARY, address=STANDBY)
    standby.start()

    def scenario():
        proxy = SpaceProxy(network, "client", REMOTE_PRIMARY)
        proxy.write(Point(1, 0))
        runtime.sleep(300.0)
        assert standby.space.wal.last_lsn == 1
        # Silent egress cut: requests still arrive, but replication
        # batches (and client replies) vanish on the wire.
        network.partition("phost", "*")
        with pytest.raises(ConnectionClosedError):
            proxy.write(Point(2, 0))
        assert server.repl_stalls >= 1
        assert space.wal.last_lsn == 2          # committed server-side…
        assert standby.space.wal.last_lsn == 1  # …but never replicated
        network.heal_all_partitions()
        runtime.sleep(1_000.0)
        # After the heal the standby detects the LSN gap, re-bootstraps,
        # and commits flow (and are acknowledged) again.
        proxy2 = SpaceProxy(network, "client", REMOTE_PRIMARY)
        proxy2.write(Point(3, 0))
        runtime.sleep(500.0)
        assert space.wal.last_lsn == 3
        assert standby.space.wal.last_lsn == 3
        got = sorted(p.x for p in standby.space.contents(Point()))
        assert got == [1, 2, 3]
        proxy.close()
        proxy2.close()
        standby.stop()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)
