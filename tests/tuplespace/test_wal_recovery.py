"""Durable space: WAL + snapshot recovery.

The acceptance property: recover a :class:`DurableSpace` from its WAL
store and the contents match the last *committed* pre-crash state —
transactions open at the crash are rolled back (their takes reappear,
their pending writes never existed).
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import SpaceError
from repro.runtime import SimulatedRuntime
from repro.tuplespace.durable import DurableSpace
from repro.tuplespace.transaction import TransactionManager
from repro.tuplespace.entry import Entry
from repro.tuplespace.wal import (
    CommitRecord,
    FileWalStore,
    WalStore,
    WriteAheadLog,
    op_take,
    op_write,
)


class Point(Entry):
    def __init__(self, x=None, y=None) -> None:
        self.x = x
        self.y = y


@pytest.fixture
def runtime():
    rt = SimulatedRuntime()
    yield rt
    rt.shutdown()


def drain(runtime):
    runtime.kernel.run_until_idle()


def run(runtime, fn, name="test-proc"):
    proc = runtime.kernel.spawn(fn, name=name)
    runtime.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


# -- the log itself ------------------------------------------------------------


def test_wal_assigns_monotonic_lsns_and_notifies_subscribers():
    wal = WriteAheadLog()
    seen = []
    wal.subscribe(seen.append)
    r1 = wal.append((op_write(1, b"a", float("inf")),))
    r2 = wal.append((op_take(1),))
    assert (r1.lsn, r2.lsn) == (1, 2)
    assert wal.last_lsn == 2
    assert seen == [r1, r2]
    wal.unsubscribe(seen.append)
    wal.append((op_take(2),))
    assert len(seen) == 2


def test_import_record_rejects_stale_lsn():
    wal = WriteAheadLog()
    wal.import_record(CommitRecord(lsn=5, ops=(op_take(1),)))
    assert wal.last_lsn == 5
    with pytest.raises(SpaceError):
        wal.import_record(CommitRecord(lsn=5, ops=(op_take(2),)))


def test_install_snapshot_truncates_covered_records():
    wal = WriteAheadLog()
    for i in range(4):
        wal.append((op_write(i, bytes([i]), float("inf")),))
    wal.install_snapshot(2, b"state")
    assert [r.lsn for r in wal.records_since(0)] == [3, 4]
    assert wal.store.snapshot == (2, b"state")
    assert wal.last_lsn == 4


def test_file_wal_store_round_trips(tmp_path):
    path = tmp_path / "space"
    store = FileWalStore(path)
    wal = WriteAheadLog(store)
    records = [wal.append((op_write(i, bytes([i]), float("inf")),))
               for i in range(3)]
    wal.install_snapshot(1, b"snap")

    reopened = FileWalStore(path)
    assert reopened.snapshot == (1, b"snap")
    assert [r.lsn for r in reopened.records] == [2, 3]
    assert reopened.records == records[1:]


# -- crash recovery ------------------------------------------------------------


def committed_points(space):
    return sorted((p.x, p.y) for p in space.contents(Point()))


def test_recovery_matches_committed_state_and_rolls_back_open_txns(runtime):
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store))

    def scenario():
        for i in range(4):
            space.write(Point(i, 0))
        space.take(Point(0, 0), timeout_ms=0.0)          # committed take
        txn = TransactionManager(runtime).create()
        space.write(Point(99, 99), txn=txn)              # never committed
        space.take(Point(1, 0), txn=txn, timeout_ms=0.0)  # must roll back
        # The uncommitted view differs from the committed one on purpose:
        assert space.take_if_exists(Point(1, 0)) is None

    run(runtime, scenario)
    # "Crash": recover a fresh space from the surviving store alone.
    recovered = DurableSpace.recover(runtime, store)
    assert committed_points(recovered) == [(1, 0), (2, 0), (3, 0)]
    assert recovered.take_if_exists(Point(99, 99)) is None


def test_committed_txn_survives_recovery(runtime):
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store))

    def scenario():
        space.write(Point(1, 1))
        txn = TransactionManager(runtime).create()
        space.take(Point(1, 1), txn=txn, timeout_ms=0.0)
        space.write(Point(2, 2), txn=txn)
        txn.commit()

    run(runtime, scenario)
    recovered = DurableSpace.recover(runtime, store)
    assert committed_points(recovered) == [(2, 2)]


def test_snapshot_plus_tail_recovery(runtime):
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store), snapshot_every=None)

    def scenario():
        for i in range(10):
            space.write(Point(i, i))
        space.checkpoint()                       # snapshot covers 10 writes
        space.take(Point(3, 3), timeout_ms=0.0)  # tail after the snapshot
        space.write(Point(42, 0))

    run(runtime, scenario)
    assert store.snapshot is not None
    recovered = DurableSpace.recover(runtime, store)
    expected = sorted([(i, i) for i in range(10) if i != 3] + [(42, 0)])
    assert committed_points(recovered) == expected
    # Recovery is idempotent: recover again from the same store.
    again = DurableSpace.recover(runtime, store)
    assert committed_points(again) == expected


def test_automatic_snapshot_bounds_the_log(runtime):
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store), snapshot_every=5)

    def scenario():
        for i in range(23):
            space.write(Point(i, 0))

    run(runtime, scenario)
    assert store.snapshot is not None
    assert len(store.records) < 23
    recovered = DurableSpace.recover(runtime, store)
    assert committed_points(recovered) == [(i, 0) for i in range(23)]


def test_file_backed_recovery_end_to_end(runtime, tmp_path):
    path = tmp_path / "space"
    space = DurableSpace(runtime, wal=WriteAheadLog(FileWalStore(path)),
                         snapshot_every=4)

    def scenario():
        for i in range(9):
            space.write(Point(i, 0))
        space.take(Point(0, 0), timeout_ms=0.0)

    run(runtime, scenario)
    # Recover from the on-disk files alone (fresh store object = new "boot").
    recovered = DurableSpace.recover(runtime, FileWalStore(path))
    assert committed_points(recovered) == [(i, 0) for i in range(1, 9)]


def test_natural_lease_expiry_replays_by_deadline(runtime):
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store))

    def scenario():
        space.write(Point(1, 1), lease_ms=500.0)
        space.write(Point(2, 2))
        runtime.sleep(1_000.0)

    run(runtime, scenario)
    # The expiry was never journaled; the absolute deadline in the write
    # record re-expires the entry on its own during recovery.
    recovered = DurableSpace.recover(runtime, store)
    assert committed_points(recovered) == [(2, 2)]


def test_restored_ids_do_not_collide_with_new_writes(runtime):
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store))

    def scenario():
        for i in range(3):
            space.write(Point(i, 0))

    run(runtime, scenario)
    recovered = DurableSpace.recover(runtime, store)

    def after():
        recovered.write(Point(7, 7))
        assert recovered.take_if_exists(Point(7, 7)) is not None
        # The old entries are still individually takeable (distinct ids).
        for i in range(3):
            assert recovered.take_if_exists(Point(i, 0)) is not None

    run(runtime, after)


def test_snapshot_state_is_a_pure_value(runtime):
    """The snapshot must be deserializable with no live references."""
    store = WalStore()
    space = DurableSpace(runtime, wal=WriteAheadLog(store), snapshot_every=None)

    def scenario():
        space.write(Point(5, 6))
        space.checkpoint()

    run(runtime, scenario)
    last_id, entries = pickle.loads(store.snapshot[1])
    assert last_id >= 1
    assert len(entries) == 1
