"""Hot-standby replication and supervisor-driven failover."""

from __future__ import annotations

import pytest

from repro.core.metrics import Metrics
from repro.errors import ConnectionClosedError, ConnectionRefusedError_
from repro.jini.join import JoinManager
from repro.jini.lookup import LookupService, ServiceItem
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime import SimulatedRuntime
from repro.tuplespace.durable import DurableSpace, HotStandby
from repro.tuplespace.entry import Entry
from repro.tuplespace.failover import JiniSpaceLocator, SpaceSupervisor
from repro.tuplespace.proxy import SpaceProxy, SpaceServer

PRIMARY = Address("master", 9100)
STANDBY = Address("master", 9101)
REGISTRAR = Address("master", 9200)


class Point(Entry):
    def __init__(self, x=None, y=None) -> None:
        self.x = x
        self.y = y


@pytest.fixture
def runtime():
    rt = SimulatedRuntime()
    yield rt
    rt.shutdown()


def run(runtime, fn, name="test-proc"):
    proc = runtime.kernel.spawn(fn, name=name)
    runtime.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def make_primary(runtime, network):
    space = DurableSpace(runtime, name="primary")
    server = SpaceServer(runtime, space, network, PRIMARY)
    server.start()
    return space, server


def make_standby(runtime, network, metrics=None):
    standby = HotStandby(runtime, network, "master", primary_address=PRIMARY,
                         address=STANDBY, metrics=metrics)
    standby.start()
    return standby


def test_standby_bootstraps_and_tails_the_primary(runtime):
    network = Network(runtime)
    space, server = make_primary(runtime, network)
    standby = make_standby(runtime, network)

    def scenario():
        for i in range(5):
            space.write(Point(i, 0))
        runtime.sleep(100.0)           # let the feed deliver
        space.take(Point(0, 0), timeout_ms=0.0)
        runtime.sleep(100.0)
        assert standby.caught_up
        assert standby.space.wal.last_lsn == space.wal.last_lsn
        got = sorted(p.x for p in standby.space.contents(Point()))
        assert got == [1, 2, 3, 4]
        standby.stop()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)


def test_standby_reconnect_after_feed_drop_does_not_regress(runtime):
    network = Network(runtime)
    space, server = make_primary(runtime, network)
    standby = make_standby(runtime, network)

    def scenario():
        space.write(Point(1, 0))
        runtime.sleep(100.0)
        # Drop every server connection (including the feed), then restart.
        server.crash()
        server.start()
        space.write(Point(2, 0))
        runtime.sleep(1_000.0)         # standby retries and re-bootstraps
        got = sorted(p.x for p in standby.space.contents(Point()))
        assert got == [1, 2]
        assert standby.space.wal.last_lsn == space.wal.last_lsn
        standby.stop()
        server.stop(drain_ms=0.0)

    run(runtime, scenario)


def test_promotion_serves_the_replica(runtime):
    network = Network(runtime)
    space, server = make_primary(runtime, network)
    standby = make_standby(runtime, network)

    def scenario():
        for i in range(3):
            space.write(Point(i, 0))
        runtime.sleep(100.0)
        server.crash()
        promoted = standby.promote()
        assert standby.server is promoted
        proxy = SpaceProxy(network, "client", STANDBY)
        assert proxy.take(Point(1, 0), timeout_ms=0.0) is not None
        proxy.write(Point(9, 9))
        assert proxy.take(Point(9, 9), timeout_ms=0.0) is not None
        proxy.close()
        standby.stop()

    run(runtime, scenario)


def test_supervisor_promotes_and_reregisters_after_misses(runtime):
    network = Network(runtime)
    metrics = Metrics(runtime)
    space, server = make_primary(runtime, network)
    standby = make_standby(runtime, network, metrics=metrics)
    lookup = LookupService(runtime, network, REGISTRAR)
    lookup.start()
    item = ServiceItem("space:test", PRIMARY, {"type": "JavaSpaces"})
    join = JoinManager(runtime, network, "master", REGISTRAR, item,
                       lease_ms=float("inf"))

    def scenario():
        join.start()
        space.write(Point(7, 7))
        supervisor = SpaceSupervisor(
            runtime, network, "master", standby,
            primary_address=PRIMARY, registrar=REGISTRAR, service_item=item,
            heartbeat_ms=100.0, max_misses=3,
            old_registration_id=join.registration_id, metrics=metrics,
        )
        supervisor.start()
        runtime.sleep(1_000.0)
        assert not supervisor.failed_over      # healthy primary: no failover
        server.crash()
        runtime.sleep(1_000.0)
        assert supervisor.failed_over

        # The lookup service now resolves to the standby's address…
        locator = JiniSpaceLocator(network, "client", REGISTRAR,
                                   {"type": "JavaSpaces"})
        assert locator() == STANDBY
        # …and a locator-equipped proxy pointed at the dead primary heals.
        proxy = SpaceProxy(network, "client", PRIMARY, locator=locator)
        try:
            proxy.take(Point(7, 7), timeout_ms=0.0)
        except (ConnectionClosedError, ConnectionRefusedError_):
            pass  # first dial hits the corpse; the reconnect rediscovers
        assert proxy.take(Point(7, 7), timeout_ms=0.0) is not None
        assert proxy.server_address == STANDBY
        proxy.close()
        supervisor.stop()
        standby.stop()
        lookup.stop()

    run(runtime, scenario)
    names = [name for _, name, _ in metrics.events]
    assert "primary-heartbeat-miss" in names
    assert "standby-promoted" in names
    assert "failover-complete" in names


def test_server_stop_drain_deadline_closes_lingering_connections(runtime):
    """A client that never hangs up must not keep a stopped server's
    ``_serve`` loop alive past the drain deadline."""
    network = Network(runtime)
    space = DurableSpace(runtime, name="drain")
    server = SpaceServer(runtime, space, network, PRIMARY)
    server.start()

    def scenario():
        proxy = SpaceProxy(network, "client", PRIMARY)
        assert proxy.ping()
        server.stop(drain_ms=200.0)     # proxy keeps its connection open
        runtime.sleep(500.0)
        with pytest.raises((ConnectionClosedError, ConnectionRefusedError_)):
            proxy.ping()
        proxy.close()

    run(runtime, scenario)
    assert not server._connections
