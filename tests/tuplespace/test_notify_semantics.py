"""Deeper notify semantics: sequences, multiple registrations, isolation."""

from __future__ import annotations

import pytest

from repro.tuplespace import JavaSpace, TransactionManager
from tests.conftest import run_in_sim
from tests.tuplespace.entries import ResultEntry, TaskEntry


@pytest.fixture()
def space(rt):
    return JavaSpace(rt)


def test_sequence_numbers_monotonic_per_registration(rt, space):
    events = []

    def proc():
        space.notify(TaskEntry(), events.append)
        for i in range(5):
            space.write(TaskEntry("a", i, None))
        rt.sleep(1.0)
        return [e.sequence for e in events]

    assert run_in_sim(rt, proc) == [1, 2, 3, 4, 5]


def test_independent_registrations_have_independent_sequences(rt, space):
    a_events, b_events = [], []

    def proc():
        space.notify(TaskEntry(app="a"), a_events.append)
        space.notify(TaskEntry(app="b"), b_events.append)
        space.write(TaskEntry("a", 1, None))
        space.write(TaskEntry("b", 1, None))
        space.write(TaskEntry("b", 2, None))
        rt.sleep(1.0)

    run_in_sim(rt, proc)
    assert [e.sequence for e in a_events] == [1]
    assert [e.sequence for e in b_events] == [1, 2]


def test_registration_ids_distinguish_sources(rt, space):
    events = []

    def proc():
        reg_a = space.notify(TaskEntry(app="a"), events.append)
        reg_b = space.notify(TaskEntry(app="b"), events.append)
        space.write(TaskEntry("a", 1, None))
        space.write(TaskEntry("b", 1, None))
        rt.sleep(1.0)
        return reg_a.registration_id, reg_b.registration_id

    id_a, id_b = run_in_sim(rt, proc)
    assert id_a != id_b
    assert {e.registration_id for e in events} == {id_a, id_b}


def test_listener_exception_does_not_break_space(rt, space):
    """A broken listener must not poison writes or other listeners."""
    good_events = []

    def bad_listener(event):
        raise RuntimeError("listener bug")

    def proc():
        space.notify(TaskEntry(), bad_listener)
        space.notify(TaskEntry(), good_events.append)
        space.write(TaskEntry("a", 1, None))
        rt.sleep(1.0)
        # The space still works afterwards.
        return space.take(TaskEntry(), timeout_ms=0.0) is not None

    # The bad listener's error surfaces as a kernel-event failure only if
    # unhandled; the space must isolate it.
    assert run_in_sim(rt, proc) is True
    assert len(good_events) == 1


def test_take_does_not_fire_notify(rt, space):
    events = []

    def proc():
        space.write(TaskEntry("a", 1, None))
        space.notify(TaskEntry(), events.append)
        space.take(TaskEntry(), timeout_ms=0.0)
        rt.sleep(1.0)
        return len(events)

    assert run_in_sim(rt, proc) == 0


def test_aborted_write_never_notifies(rt, space):
    events = []
    txns = TransactionManager(rt)

    def proc():
        space.notify(TaskEntry(), events.append)
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        txn.abort()
        rt.sleep(1.0)
        return len(events)

    assert run_in_sim(rt, proc) == 0


def test_restored_take_does_not_renotify(rt, space):
    """An aborted take restores visibility but is not a new write."""
    events = []
    txns = TransactionManager(rt)

    def proc():
        space.write(TaskEntry("a", 1, None))  # fires once (no listener yet)
        space.notify(TaskEntry(), events.append)
        txn = txns.create()
        space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        txn.abort()
        rt.sleep(1.0)
        return len(events)

    assert run_in_sim(rt, proc) == 0


def test_notify_on_class_not_subclass_of_template(rt, space):
    events = []

    def proc():
        space.notify(ResultEntry(), events.append)
        space.write(TaskEntry("a", 1, None))   # different class: no event
        space.write(ResultEntry("a", 1, 0))
        rt.sleep(1.0)
        return len(events)

    assert run_in_sim(rt, proc) == 1