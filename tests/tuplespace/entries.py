"""Entry classes shared across tuple-space tests."""

from __future__ import annotations

from typing import Any, Optional

from repro.tuplespace import Entry
from repro.util.codec import register_entry


class TaskEntry(Entry):
    def __init__(self, app: Optional[str] = None, task_id: Optional[int] = None,
                 payload: Any = None) -> None:
        self.app = app
        self.task_id = task_id
        self.payload = payload


class ResultEntry(Entry):
    def __init__(self, app: Optional[str] = None, task_id: Optional[int] = None,
                 value: Any = None) -> None:
        self.app = app
        self.task_id = task_id
        self.value = value


class PriorityTask(TaskEntry):
    """Subclass used to test polymorphic matching."""

    def __init__(self, app: Optional[str] = None, task_id: Optional[int] = None,
                 payload: Any = None, priority: Optional[int] = None) -> None:
        super().__init__(app, task_id, payload)
        self.priority = priority


# Compact-codec schemas (constructor order = canonical field order).
register_entry(TaskEntry)
register_entry(ResultEntry)
register_entry(PriorityTask)
