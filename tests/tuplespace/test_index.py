"""Field-value index: speedup must never change matching semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tuplespace import JavaSpace
from tests.conftest import run_in_sim
from tests.tuplespace.entries import TaskEntry


@pytest.fixture()
def space(rt):
    return JavaSpace(rt)


def test_indexed_lookup_returns_fifo_within_matches(rt, space):
    def proc():
        for i in range(20):
            space.write(TaskEntry(f"app{i % 4}", i, None))
        return [space.take(TaskEntry(app="app2"), timeout_ms=0.0).task_id
                for _ in range(5)]

    assert run_in_sim(rt, proc) == [2, 6, 10, 14, 18]


def test_index_updated_on_take(rt, space):
    def proc():
        space.write(TaskEntry("a", 1, None))
        space.take(TaskEntry(app="a"), timeout_ms=0.0)
        # A stale index entry would make this return a ghost.
        return space.take(TaskEntry(app="a"), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is None


def test_index_updated_on_lease_expiry(rt, space):
    def proc():
        space.write(TaskEntry("a", 1, None), lease_ms=50.0)
        rt.sleep(100.0)
        return space.take(TaskEntry(app="a"), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is None


def test_unhashable_template_field_falls_back_to_scan(rt, space):
    def proc():
        space.write(TaskEntry("a", 1, [1, 2, 3]))
        return space.take(TaskEntry(payload=[1, 2, 3]), timeout_ms=0.0)

    entry = run_in_sim(rt, proc)
    assert entry is not None
    assert entry.task_id == 1


def test_array_payload_still_matches_hashable_template_value(rt, space):
    """The poisoned-field case: an ndarray payload equals a tuple template
    under values_equal, which a naive index would miss."""
    def proc():
        space.write(TaskEntry("a", 1, np.array([1, 2])))
        return space.take(TaskEntry(payload=(1, 2)), timeout_ms=0.0)

    entry = run_in_sim(rt, proc)
    assert entry is not None
    assert list(entry.payload) == [1, 2]


def test_conjunction_of_indexed_fields(rt, space):
    def proc():
        for app in ("x", "y"):
            for task_id in range(3):
                space.write(TaskEntry(app, task_id, None))
        hit = space.take(TaskEntry(app="y", task_id=2), timeout_ms=0.0)
        miss = space.take(TaskEntry(app="y", task_id=9), timeout_ms=0.0)
        return hit.app, hit.task_id, miss

    assert run_in_sim(rt, proc) == ("y", 2, None)


def test_index_definite_miss_short_circuits(rt, space):
    def proc():
        for i in range(10):
            space.write(TaskEntry("a", i, None))
        return space.take(TaskEntry(app="never-written"), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is None
