"""Determinism property: identical op sequences → identical space behaviour."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime import SimulatedRuntime
from repro.tuplespace import JavaSpace
from tests.tuplespace.entries import TaskEntry

# An op sequence: write(app, id) | take(app or wildcard)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from("abc"), st.integers(0, 9)),
        st.tuples(st.just("take"), st.one_of(st.none(), st.sampled_from("abc"))),
    ),
    max_size=25,
)


def run_ops(op_list):
    runtime = SimulatedRuntime()
    try:
        space = JavaSpace(runtime)
        log = []

        def body():
            for op in op_list:
                if op[0] == "write":
                    _, app, task_id = op
                    space.write(TaskEntry(app, task_id, None))
                    log.append(("wrote", app, task_id))
                else:
                    _, app = op
                    taken = space.take(TaskEntry(app=app), timeout_ms=0.0)
                    log.append(
                        ("took", app, taken.app, taken.task_id)
                        if taken else ("miss", app)
                    )

        proc = runtime.kernel.spawn(body, name="ops")
        runtime.kernel.run_until_idle()
        assert proc.finished
        return log
    finally:
        runtime.shutdown()


@settings(max_examples=40, deadline=None)
@given(op_list=ops)
def test_identical_op_sequences_produce_identical_logs(op_list):
    assert run_ops(op_list) == run_ops(op_list)


@settings(max_examples=40, deadline=None)
@given(op_list=ops)
def test_takes_follow_fifo_per_matching_set(op_list):
    """Every take returns the oldest still-present matching entry, and a
    miss really means no matching entry was present."""
    log = run_ops(op_list)
    present: list[tuple[str, int]] = []  # (app, task_id), insertion order
    for event in log:
        if event[0] == "wrote":
            present.append((event[1], event[2]))
        elif event[0] == "took":
            template_app, taken_app, task_id = event[1], event[2], event[3]
            candidates = [
                e for e in present
                if template_app is None or e[0] == template_app
            ]
            assert candidates, "take returned an entry that wasn't present"
            assert candidates[0] == (taken_app, task_id)  # FIFO
            present.remove((taken_app, task_id))
        else:  # miss
            template_app = event[1]
            assert not any(
                template_app is None or e[0] == template_app for e in present
            )
