"""Property tests for targeted wakeups and single-lock batch operations.

The space's per-template-class wait queues replaced a global
``notify_all``-on-every-write.  These tests pin down the behaviors that
rewrite must preserve:

* FIFO-deterministic matching survives ``write_all`` / ``take_multiple``;
* exactly-once take under concurrent blocked takers;
* every visibility event — plain write, transaction commit, abort-restore
  of a taken entry, transaction-lease expiry — wakes the waiters it can
  satisfy, so no blocked waiter is ever stranded;
* wakeup count scales with *matching* waiters, not total waiters;
* the indexed ``contents`` / ``count`` paths agree with a reference scan
  over the raw batch.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime import SimulatedRuntime
from repro.tuplespace import JavaSpace, TransactionManager, matches
from tests.tuplespace.entries import ResultEntry, TaskEntry

payloads = st.one_of(
    st.none(),
    st.integers(-5, 5),
    st.text(alphabet="abc", max_size=3),
)
apps = st.sampled_from(["alpha", "beta", "gamma"])
entries = st.builds(TaskEntry, app=apps, task_id=st.integers(0, 9), payload=payloads)
maybe = lambda s: st.one_of(st.none(), s)  # noqa: E731
templates = st.builds(
    TaskEntry, app=maybe(apps), task_id=maybe(st.integers(0, 9)),
    payload=maybe(st.integers(-5, 5)),
)


def _with_space(fn):
    """Run ``fn(rt, space)`` inside a fresh simulated process."""
    runtime = SimulatedRuntime()
    try:
        space = JavaSpace(runtime)
        proc = runtime.kernel.spawn(lambda: fn(runtime, space), name="prop")
        runtime.kernel.run_until_idle()
        if proc.error is not None:  # pragma: no cover - kernel raises first
            raise proc.error
        assert proc.finished
        return proc.result
    finally:
        runtime.shutdown()


# -- FIFO order under batch operations ---------------------------------------


@settings(max_examples=40, deadline=None)
@given(ids=st.lists(st.integers(0, 99), min_size=1, max_size=12),
       use_batch=st.booleans())
def test_takes_drain_in_write_order_after_batch_write(ids, use_batch):
    def body(rt, space):
        batch = [TaskEntry("app", i, None) for i in ids]
        if use_batch:
            space.write_all(batch)
        else:
            for entry in batch:
                space.write(entry)
        out = []
        while True:
            got = space.take(TaskEntry(), timeout_ms=0.0)
            if got is None:
                return out
            out.append(got.task_id)

    assert _with_space(body) == ids


@settings(max_examples=40, deadline=None)
@given(ids=st.lists(st.integers(0, 99), min_size=1, max_size=12),
       cap=st.integers(1, 12))
def test_take_multiple_returns_fifo_prefix(ids, cap):
    def body(rt, space):
        space.write_all([TaskEntry("app", i, None) for i in ids])
        first = [e.task_id for e in
                 space.take_multiple(TaskEntry(), cap, timeout_ms=0.0)]
        rest = [e.task_id for e in
                space.take_multiple(TaskEntry(), len(ids) + 1, timeout_ms=0.0)]
        return first, rest

    first, rest = _with_space(body)
    assert first == ids[:cap]
    assert first + rest == ids


# -- exactly-once take + no stranded waiter on write --------------------------


@settings(max_examples=25, deadline=None)
@given(n_entries=st.integers(0, 10), n_takers=st.integers(1, 8),
       use_batch=st.booleans())
def test_concurrent_takers_get_each_entry_exactly_once(n_entries, n_takers, use_batch):
    def body(rt, space):
        taken = []

        def taker():
            got = space.take(TaskEntry(), timeout_ms=1_000.0)
            if got is not None:
                taken.append(got.task_id)

        for t in range(n_takers):
            rt.spawn(taker, name=f"taker{t}")

        def writer():
            rt.sleep(10.0)  # all takers are parked by now
            batch = [TaskEntry("app", i, None) for i in range(n_entries)]
            if use_batch:
                space.write_all(batch)
            else:
                for entry in batch:
                    space.write(entry)

        rt.spawn(writer, name="writer")
        return taken

    taken = _with_space(body)
    assert len(taken) == min(n_entries, n_takers)
    assert len(set(taken)) == len(taken)  # no entry delivered twice


# -- no stranded waiter across every visibility event -------------------------


@settings(max_examples=20, deadline=None)
@given(mode=st.sampled_from(["write", "commit", "abort_restore", "lease_expiry"]))
def test_blocked_taker_wakes_on_every_visibility_event(mode):
    """A parked taker must observe the entry no matter how it becomes visible."""

    def body(rt, space):
        txns = TransactionManager(rt)
        results = []

        def setup():
            # For the restore modes the entry must already be hidden under a
            # transaction before the taker parks.
            if mode == "abort_restore":
                space.write(TaskEntry("x", 1, None))
                txn = txns.create()
                space.take(TaskEntry(app="x"), txn=txn, timeout_ms=0.0)
                return txn
            if mode == "lease_expiry":
                space.write(TaskEntry("x", 1, None))
                txn = txns.create(timeout_ms=40.0)
                space.take(TaskEntry(app="x"), txn=txn, timeout_ms=0.0)
                return txn
            return None

        txn = setup()

        def taker():
            results.append(space.take(TaskEntry(app="x"), timeout_ms=5_000.0))

        rt.spawn(taker, name="taker")

        def driver():
            rt.sleep(10.0)  # taker is parked
            if mode == "write":
                space.write(TaskEntry("x", 1, None))
            elif mode == "commit":
                wtxn = txns.create()
                space.write(TaskEntry("x", 1, None), txn=wtxn)
                rt.sleep(10.0)  # pending write stays invisible meanwhile
                wtxn.commit()
            elif mode == "abort_restore":
                rt.sleep(10.0)
                txn.abort()
            # lease_expiry: the manager aborts the txn at t=40 on its own.

        rt.spawn(driver, name="driver")
        return results

    results = _with_space(body)
    assert len(results) == 1
    assert results[0] is not None and results[0].task_id == 1


# -- wakeup accounting --------------------------------------------------------


def test_wakeups_scale_with_matching_waiters_not_total():
    """16 parked takers on distinct templates: each write wakes exactly one."""
    n_takers = 16

    def body(rt, space):
        for t in range(n_takers):
            rt.spawn(
                lambda t=t: space.take(TaskEntry(app=f"app{t}"), timeout_ms=5_000.0),
                name=f"taker{t}",
            )
        rt.sleep(10.0)  # all takers parked
        base = space.stats["wakeups"]
        for t in range(n_takers):
            space.write(TaskEntry(f"app{t}", t, None))
        return space.stats["wakeups"] - base

    # A blanket notify_all would have cost O(n_takers) wakeups per write
    # (256 total); targeted queues wake exactly the matching waiter.
    assert _with_space(body) == n_takers


def test_non_matching_class_write_wakes_nobody():
    def body(rt, space):
        for t in range(8):
            rt.spawn(
                lambda t=t: space.take(TaskEntry(app=f"app{t}"), timeout_ms=100.0),
                name=f"taker{t}",
            )
        rt.sleep(10.0)
        base = space.stats["wakeups"]
        for i in range(8):
            space.write(ResultEntry("other", i, i))  # different entry class
        return space.stats["wakeups"] - base

    assert _with_space(body) == 0


# -- indexed contents/count agree with a reference scan -----------------------


def _key(entry):
    return (entry.app, entry.task_id, repr(entry.payload))


@settings(max_examples=40, deadline=None)
@given(batch=st.lists(entries, min_size=0, max_size=12), template=templates)
def test_contents_and_count_agree_with_reference_scan(batch, template):
    def body(rt, space):
        for entry in batch:
            space.write(entry)
        return [_key(e) for e in space.contents(template)], space.count(template)

    got_keys, n = _with_space(body)
    expected = sorted(_key(e) for e in batch if matches(template, e))
    assert n == len(expected)
    assert sorted(got_keys) == expected
