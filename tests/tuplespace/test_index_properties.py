"""Index-consistency property: indexed matching == scan matching.

The attribute indexes are a pre-filter, never an oracle: any sequence of
writes, takes, transactions and lease expiries must produce exactly the
same results whether templates resolve through the ``(class, field)``
hash indexes or through a full bucket scan.  This drives a random op mix
through two spaces in lockstep — one with indexes live, one with
``_candidate_ids`` pinned to the scan path — and requires identical
observable behaviour at every step.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime import SimulatedRuntime
from repro.tuplespace import JavaSpace, TransactionManager
from tests.tuplespace.entries import TaskEntry

apps = st.sampled_from(["a", "b", "c"])
task_ids = st.integers(0, 3)
maybe = lambda s: st.one_of(st.none(), s)  # noqa: E731

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), apps, task_ids,
                  st.sampled_from([None, 40.0])),
        st.tuples(st.just("take"), maybe(apps), maybe(task_ids)),
        st.tuples(st.just("read"), maybe(apps), maybe(task_ids)),
        st.tuples(st.just("take_multiple"), maybe(apps), st.integers(1, 4)),
        st.tuples(st.just("txn_take"), maybe(apps), st.booleans()),
        st.tuples(st.just("sleep"), st.just(60.0)),
    ),
    max_size=30,
)


def _fields(entry):
    return None if entry is None else (entry.app, entry.task_id, entry.payload)


@given(ops=ops)
@settings(max_examples=60, deadline=None)
def test_indexed_results_equal_scan_results(ops):
    runtime = SimulatedRuntime()
    indexed = JavaSpace(runtime, name="indexed")
    scanned = JavaSpace(runtime, name="scanned")
    # Pin the reference space to the scan path: no pre-filter, every
    # template walks its class bucket.
    scanned._candidate_ids = lambda cls, items: None
    txns = TransactionManager(runtime)

    def body():
        # Activate the indexes up front so every later op exercises the
        # incremental maintenance path, not just lazy build.
        indexed.read(TaskEntry(app="a"), timeout_ms=0.0)
        indexed.read(TaskEntry(task_id=0), timeout_ms=0.0)
        seq = 0
        for op in ops:
            kind = op[0]
            if kind == "write":
                _, app, task_id, lease = op
                for space in (indexed, scanned):
                    if lease is None:
                        space.write(TaskEntry(app, task_id, seq))
                    else:
                        space.write(TaskEntry(app, task_id, seq),
                                    lease_ms=lease)
                seq += 1
            elif kind in ("take", "read"):
                _, app, task_id = op
                method = getattr(indexed, kind), getattr(scanned, kind)
                got = [m(TaskEntry(app=app, task_id=task_id), timeout_ms=0.0)
                       for m in method]
                assert _fields(got[0]) == _fields(got[1])
            elif kind == "take_multiple":
                _, app, limit = op
                got = [space.take_multiple(TaskEntry(app=app), limit,
                                           timeout_ms=0.0)
                       for space in (indexed, scanned)]
                assert [_fields(e) for e in got[0]] == \
                    [_fields(e) for e in got[1]]
            elif kind == "txn_take":
                _, app, commit = op
                pair = [txns.create(), txns.create()]
                got = [space.take(TaskEntry(app=app), txn=txn,
                                  timeout_ms=0.0)
                       for space, txn in zip((indexed, scanned), pair)]
                assert _fields(got[0]) == _fields(got[1])
                for txn in pair:
                    if commit:
                        txn.commit()
                    else:
                        txn.abort()
            else:  # sleep: expire short leases in both spaces at once
                runtime.sleep(op[1])
        # Final drain: the remaining FIFO order must agree exactly.
        while True:
            got = [space.take(TaskEntry(), timeout_ms=0.0)
                   for space in (indexed, scanned)]
            assert _fields(got[0]) == _fields(got[1])
            if got[0] is None:
                break

    proc = runtime.kernel.spawn(body, name="driver")
    runtime.kernel.run_until_idle()
    try:
        if proc.error is not None:
            raise proc.error
        assert proc.finished
    finally:
        runtime.shutdown()
