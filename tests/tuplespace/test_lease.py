"""Lease semantics (unit + property tests)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import LeaseError
from repro.tuplespace import FOREVER, Lease
from repro.runtime import SimulatedRuntime
from tests.conftest import run_in_sim


def test_forever_lease_never_expires(rt):
    lease = Lease(rt, FOREVER)

    def proc():
        rt.sleep(1_000_000.0)
        return lease.is_expired(), lease.remaining_ms()

    expired, remaining = run_in_sim(rt, proc)
    assert not expired
    assert math.isinf(remaining)


def test_finite_lease_expires_exactly(rt):
    lease = Lease(rt, 100.0)

    def proc():
        rt.sleep(99.9)
        before = lease.is_expired()
        rt.sleep(0.2)
        return before, lease.is_expired()

    assert run_in_sim(rt, proc) == (False, True)


def test_remaining_counts_down(rt):
    lease = Lease(rt, 100.0)

    def proc():
        rt.sleep(30.0)
        return lease.remaining_ms()

    assert run_in_sim(rt, proc) == pytest.approx(70.0)


def test_negative_duration_rejected(rt):
    with pytest.raises(LeaseError):
        Lease(rt, -1.0)


def test_renew_extends_from_now(rt):
    lease = Lease(rt, 100.0)

    def proc():
        rt.sleep(90.0)
        lease.renew(100.0)
        rt.sleep(90.0)   # t=180 < 190
        alive = not lease.is_expired()
        rt.sleep(20.0)   # t=200 > 190
        return alive, lease.is_expired()

    assert run_in_sim(rt, proc) == (True, True)


def test_renew_to_forever(rt):
    lease = Lease(rt, 100.0)
    lease.renew(FOREVER)

    def proc():
        rt.sleep(10_000.0)
        return lease.is_expired()

    assert run_in_sim(rt, proc) is False


def test_renew_after_expiry_rejected(rt):
    lease = Lease(rt, 50.0)

    def proc():
        rt.sleep(60.0)
        with pytest.raises(LeaseError):
            lease.renew(100.0)
        return True

    assert run_in_sim(rt, proc)


def test_cancel_fires_callback_once(rt):
    calls = []
    lease = Lease(rt, FOREVER, on_cancel=lambda: calls.append(1))
    lease.cancel()
    lease.cancel()
    assert calls == [1]
    assert lease.is_expired()
    assert lease.remaining_ms() == 0.0


@given(duration=st.floats(1.0, 10_000.0), checkpoint=st.floats(0.0, 1.0))
def test_expiry_boundary_property(duration, checkpoint):
    """A lease is alive strictly before its expiry and dead at/after it."""
    runtime = SimulatedRuntime()
    try:
        lease = Lease(runtime, duration)

        def proc():
            runtime.sleep(duration * checkpoint * 0.999)
            alive = not lease.is_expired()
            runtime.sleep(duration * 1.01)
            return alive, lease.is_expired()

        handle = runtime.kernel.spawn(proc, name="p")
        runtime.kernel.run()
        alive_before, dead_after = handle.result
        assert alive_before
        assert dead_after
    finally:
        runtime.shutdown()
