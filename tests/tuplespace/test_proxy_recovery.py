"""Self-healing SpaceProxy: reconnect, backoff, idempotent-only retry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConnectionClosedError,
    ConnectionRefusedError_,
    SpaceError,
)
from repro.net import Address, LatencyModel, Network
from repro.runtime import SimulatedRuntime
from repro.tuplespace import Entry, JavaSpace
from repro.tuplespace.proxy import RecoveryPolicy, SpaceProxy, SpaceServer

SERVER = Address("master", 4155)


class Point(Entry):
    def __init__(self, x=None, y=None):
        self.x = x
        self.y = y


@pytest.fixture()
def net(rt):
    return Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0,
                                            per_kb_ms=0.0))


def run(rt: SimulatedRuntime, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.finished
    return proc.result


def make_server(rt, net):
    space = JavaSpace(rt)
    server = SpaceServer(rt, space, net, SERVER)
    server.start()
    return space, server


def test_backoff_is_capped_exponential_with_seeded_jitter():
    policy = RecoveryPolicy(max_retries=8, base_backoff_ms=50.0,
                            max_backoff_ms=400.0, jitter=0.5)
    bare = [policy.backoff_ms(i) for i in range(1, 6)]
    assert bare == [50.0, 100.0, 200.0, 400.0, 400.0]  # doubles, then caps
    jittered = [policy.backoff_ms(i, np.random.default_rng(5))
                for i in range(1, 6)]
    again = [policy.backoff_ms(i, np.random.default_rng(5))
             for i in range(1, 6)]
    assert jittered == again                           # same seed, same plan
    for base, j in zip(bare, jittered):
        assert base <= j <= base * 1.5


def test_idempotent_read_survives_a_server_restart(rt, net):
    space, server = make_server(rt, net)
    proxy = SpaceProxy(net, "worker1", SERVER,
                       recovery=RecoveryPolicy(base_backoff_ms=10.0,
                                               max_backoff_ms=40.0,
                                               jitter=0.0))

    def proc():
        proxy.write(Point(1, 2))
        assert proxy.read(Point(None, None), timeout_ms=0.0) is not None
        server.crash()
        rt.sleep(5.0)
        server.start()
        # read is in the idempotent set: transparently reconnects.
        found = proxy.read(Point(None, None), timeout_ms=0.0)
        proxy.close()
        server.stop()
        return found

    found = run(rt, proc)
    assert found is not None and (found.x, found.y) == (1, 2)
    assert proxy.reconnects >= 1
    assert server.restarts == 1


def test_take_surfaces_the_disconnect_instead_of_retrying(rt, net):
    """A retried take could consume an entry twice; the caller must see
    the failure and restart its cycle."""
    space, server = make_server(rt, net)
    proxy = SpaceProxy(net, "worker1", SERVER,
                       recovery=RecoveryPolicy(base_backoff_ms=10.0,
                                               jitter=0.0))

    def proc():
        proxy.write(Point(3, 4))
        server.crash()
        with pytest.raises(ConnectionClosedError):
            proxy.take(Point(None, None), timeout_ms=0.0)
        return proxy.retries

    assert run(rt, proc) == 0  # no blind retry happened


def test_rpc_timeout_detects_a_partitioned_server(rt, net):
    space, server = make_server(rt, net)
    proxy = SpaceProxy(net, "worker1", SERVER,
                       recovery=RecoveryPolicy(call_timeout_ms=200.0))

    def proc():
        proxy.ping()                 # connection established
        net.isolate("worker1")       # requests vanish mid-flight
        started = rt.now()
        with pytest.raises(ConnectionClosedError):
            proxy.take(Point(None, None), timeout_ms=0.0)
        waited = rt.now() - started
        net.heal("worker1")
        proxy.close()
        server.stop()
        return waited

    waited = run(rt, proc)
    assert waited == pytest.approx(200.0, abs=10.0)


def test_transactions_do_not_survive_a_reconnect(rt, net):
    """Server-side txn state is per-connection: the drop aborted it, and
    the old id must not silently attach to the new connection."""
    space, server = make_server(rt, net)
    proxy = SpaceProxy(net, "worker1", SERVER,
                       recovery=RecoveryPolicy(base_backoff_ms=10.0,
                                               jitter=0.0))

    def proc():
        txn = proxy.transaction()
        proxy.write(Point(9, 9), txn=txn)
        server.crash()
        rt.sleep(5.0)
        server.start()
        # The txn was aborted server-side: its write never became visible.
        assert proxy.read(Point(None, None), timeout_ms=0.0) is None
        with pytest.raises(SpaceError):
            proxy.write(Point(8, 8), txn=txn)
        proxy.close()
        server.stop()
        return space.count(Point(None, None))

    assert run(rt, proc) == 0


def test_gives_up_after_max_retries_when_server_stays_down(rt, net):
    space, server = make_server(rt, net)
    proxy = SpaceProxy(net, "worker1", SERVER,
                       recovery=RecoveryPolicy(max_retries=3,
                                               base_backoff_ms=5.0,
                                               jitter=0.0))

    def proc():
        proxy.ping()
        server.crash()               # and never restarts
        with pytest.raises((ConnectionClosedError, ConnectionRefusedError_)):
            proxy.ping()
        return proxy.retries

    assert run(rt, proc) == 3
