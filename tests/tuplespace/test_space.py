"""Core space semantics: write/read/take, blocking, leases, notify."""

from __future__ import annotations

import pytest

from repro.errors import SpaceError
from repro.tuplespace import JavaSpace, FOREVER
from tests.conftest import run_in_sim
from tests.tuplespace.entries import PriorityTask, ResultEntry, TaskEntry


@pytest.fixture()
def space(rt):
    return JavaSpace(rt)


def test_write_then_take(rt, space):
    def proc():
        space.write(TaskEntry("app", 1, "payload"))
        return space.take(TaskEntry(), timeout_ms=0.0)

    entry = run_in_sim(rt, proc)
    assert entry.task_id == 1
    assert entry.payload == "payload"


def test_take_removes_read_does_not(rt, space):
    def proc():
        space.write(TaskEntry("app", 1, "p"))
        first = space.read(TaskEntry(), timeout_ms=0.0)
        second = space.read(TaskEntry(), timeout_ms=0.0)
        taken = space.take(TaskEntry(), timeout_ms=0.0)
        gone = space.take(TaskEntry(), timeout_ms=0.0)
        return first, second, taken, gone

    first, second, taken, gone = run_in_sim(rt, proc)
    assert first.task_id == second.task_id == taken.task_id == 1
    assert gone is None


def test_returned_entries_are_isolated_copies(rt, space):
    def proc():
        original = TaskEntry("app", 1, {"rows": [1, 2]})
        space.write(original)
        original.payload["rows"].append(99)  # caller mutation after write
        read1 = space.read(TaskEntry(), timeout_ms=0.0)
        read1.payload["rows"].append(77)      # reader mutation
        read2 = space.read(TaskEntry(), timeout_ms=0.0)
        return read1.payload["rows"], read2.payload["rows"]

    rows1, rows2 = run_in_sim(rt, proc)
    assert rows1 == [1, 2, 77]
    assert rows2 == [1, 2]


def test_take_if_exists_nonblocking(rt, space):
    def proc():
        t0 = rt.now()
        result = space.take_if_exists(TaskEntry())
        return result, rt.now() - t0

    result, elapsed = run_in_sim(rt, proc)
    assert result is None
    assert elapsed == 0.0


def test_take_blocks_until_write(rt, space):
    def writer():
        rt.sleep(50.0)
        space.write(TaskEntry("app", 7, "late"))

    def taker():
        entry = space.take(TaskEntry(), timeout_ms=None)
        return entry.task_id, rt.now()

    rt.spawn(writer, name="writer")
    proc = rt.kernel.spawn(taker, name="taker")
    rt.kernel.run()
    assert proc.result == (7, 50.0)


def test_take_timeout_returns_none(rt, space):
    def proc():
        entry = space.take(TaskEntry(), timeout_ms=30.0)
        return entry, rt.now()

    assert run_in_sim(rt, proc) == (None, 30.0)


def test_each_entry_taken_exactly_once_under_contention(rt, space):
    taken: list[tuple[str, int]] = []

    def consumer(name):
        while True:
            entry = space.take(TaskEntry(), timeout_ms=200.0)
            if entry is None:
                return
            taken.append((name, entry.task_id))

    def producer():
        for i in range(20):
            space.write(TaskEntry("app", i, None))
            rt.sleep(1.0)

    for w in range(4):
        rt.spawn(lambda w=w: consumer(f"c{w}"), name=f"c{w}")
    rt.spawn(producer, name="producer")
    rt.kernel.run()

    ids = sorted(task_id for _, task_id in taken)
    assert ids == list(range(20))  # nothing lost, nothing duplicated


def test_fifo_matching_order(rt, space):
    def proc():
        for i in range(5):
            space.write(TaskEntry("app", i, None))
        return [space.take(TaskEntry(), timeout_ms=0.0).task_id for _ in range(5)]

    assert run_in_sim(rt, proc) == [0, 1, 2, 3, 4]


def test_template_selects_across_entry_classes(rt, space):
    def proc():
        space.write(TaskEntry("app", 1, None))
        space.write(ResultEntry("app", 1, 42))
        result = space.take(ResultEntry(), timeout_ms=0.0)
        task = space.take(TaskEntry(), timeout_ms=0.0)
        return type(result).__name__, type(task).__name__

    assert run_in_sim(rt, proc) == ("ResultEntry", "TaskEntry")


def test_superclass_template_takes_subclass_entry(rt, space):
    def proc():
        space.write(PriorityTask("app", 1, None, priority=5))
        entry = space.take(TaskEntry(), timeout_ms=0.0)
        return type(entry).__name__, entry.priority

    assert run_in_sim(rt, proc) == ("PriorityTask", 5)


def test_write_non_entry_rejected(rt, space):
    def proc():
        with pytest.raises(SpaceError):
            space.write({"not": "an entry"})
        return True

    assert run_in_sim(rt, proc)


def test_lease_expiry_removes_entry(rt, space):
    def proc():
        space.write(TaskEntry("app", 1, None), lease_ms=100.0)
        early = space.read(TaskEntry(), timeout_ms=0.0)
        rt.sleep(150.0)
        late = space.read(TaskEntry(), timeout_ms=0.0)
        return early is not None, late

    early_found, late = run_in_sim(rt, proc)
    assert early_found
    assert late is None


def test_lease_renewal_extends_life(rt, space):
    def proc():
        lease = space.write(TaskEntry("app", 1, None), lease_ms=100.0)
        rt.sleep(80.0)
        lease.renew(200.0)
        rt.sleep(150.0)  # t=230 < 80+200
        return space.read(TaskEntry(), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is not None


def test_lease_cancel(rt, space):
    def proc():
        lease = space.write(TaskEntry("app", 1, None))
        lease.cancel()
        return space.read(TaskEntry(), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is None


def test_snapshot_returns_isolated_template(rt, space):
    def proc():
        template = TaskEntry(app="x", payload={"k": 1})
        snap = space.snapshot(template)
        template.payload["k"] = 2
        return snap.payload["k"]

    assert run_in_sim(rt, proc) == 1


def test_count(rt, space):
    def proc():
        for i in range(3):
            space.write(TaskEntry("a", i, None))
        space.write(TaskEntry("b", 9, None))
        return space.count(TaskEntry(app="a")), space.count(TaskEntry())

    assert run_in_sim(rt, proc) == (3, 4)


def test_notify_fires_on_matching_write(rt, space):
    events = []

    def proc():
        space.notify(TaskEntry(app="watched"), events.append)
        space.write(TaskEntry("other", 1, None))
        space.write(TaskEntry("watched", 2, None))
        space.write(TaskEntry("watched", 3, None))
        rt.sleep(1.0)  # let async deliveries drain
        return [e.sequence for e in events]

    assert run_in_sim(rt, proc) == [1, 2]


def test_notify_lease_expiry_stops_events(rt, space):
    events = []

    def proc():
        space.notify(TaskEntry(), events.append, lease_ms=50.0)
        space.write(TaskEntry("a", 1, None))
        rt.sleep(100.0)
        space.write(TaskEntry("a", 2, None))
        rt.sleep(1.0)
        return len(events)

    assert run_in_sim(rt, proc) == 1


def test_stats_track_operations(rt, space):
    def proc():
        space.write(TaskEntry("a", 1, None))
        space.read(TaskEntry(), timeout_ms=0.0)
        space.take(TaskEntry(), timeout_ms=0.0)

    run_in_sim(rt, proc)
    assert space.stats["writes"] == 1
    assert space.stats["reads"] == 1
    assert space.stats["takes"] == 1
    assert space.stats["bytes_written"] > 0
