"""Transactional semantics: isolation, atomic commit/abort, lease expiry."""

from __future__ import annotations

import pytest

from repro.errors import TransactionAbortedError, TransactionError
from repro.tuplespace import JavaSpace, TransactionManager
from tests.conftest import run_in_sim
from tests.tuplespace.entries import TaskEntry


@pytest.fixture()
def space(rt):
    return JavaSpace(rt)


@pytest.fixture()
def txns(rt):
    return TransactionManager(rt)


def test_write_invisible_until_commit(rt, space, txns):
    def proc():
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        outside_before = space.read(TaskEntry(), timeout_ms=0.0)
        inside = space.read(TaskEntry(), txn=txn, timeout_ms=0.0)
        txn.commit()
        outside_after = space.read(TaskEntry(), timeout_ms=0.0)
        return outside_before, inside is not None, outside_after is not None

    assert run_in_sim(rt, proc) == (None, True, True)


def test_write_discarded_on_abort(rt, space, txns):
    def proc():
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        txn.abort()
        return space.read(TaskEntry(), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is None


def test_take_hides_entry_until_commit(rt, space, txns):
    def proc():
        space.write(TaskEntry("a", 1, None))
        txn = txns.create()
        taken = space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        hidden = space.read(TaskEntry(), timeout_ms=0.0)
        txn.commit()
        after = space.read(TaskEntry(), timeout_ms=0.0)
        return taken is not None, hidden, after

    assert run_in_sim(rt, proc) == (True, None, None)


def test_take_restored_on_abort(rt, space, txns):
    def proc():
        space.write(TaskEntry("a", 1, "payload"))
        txn = txns.create()
        space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        txn.abort()
        restored = space.take(TaskEntry(), timeout_ms=0.0)
        return restored.payload

    assert run_in_sim(rt, proc) == "payload"


def test_abort_wakes_blocked_taker(rt, space, txns):
    """A worker crash (abort) must hand its task to another worker."""
    def victim():
        space.write(TaskEntry("a", 1, None))
        txn = txns.create()
        space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        rt.sleep(50.0)
        txn.abort()  # simulated crash recovery

    def other_worker():
        entry = space.take(TaskEntry(), timeout_ms=None)
        return entry.task_id, rt.now()

    rt.spawn(victim, name="victim")
    proc = rt.kernel.spawn(other_worker, name="other")
    rt.kernel.run()
    assert proc.result == (1, 50.0)


def test_read_lock_blocks_other_take_until_commit(rt, space, txns):
    def proc():
        space.write(TaskEntry("a", 1, None))
        reader = txns.create()
        space.read(TaskEntry(), txn=reader, timeout_ms=0.0)
        blocked = space.take(TaskEntry(), timeout_ms=0.0)  # other (null) txn
        can_read = space.read(TaskEntry(), timeout_ms=0.0)
        reader.commit()
        now_taken = space.take(TaskEntry(), timeout_ms=0.0)
        return blocked, can_read is not None, now_taken is not None

    assert run_in_sim(rt, proc) == (None, True, True)


def test_read_locker_itself_can_take(rt, space, txns):
    def proc():
        space.write(TaskEntry("a", 1, None))
        txn = txns.create()
        space.read(TaskEntry(), txn=txn, timeout_ms=0.0)
        taken = space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        txn.commit()
        return taken is not None

    assert run_in_sim(rt, proc) is True


def test_commit_is_idempotent_abort_after_commit_fails(rt, space, txns):
    def proc():
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        txn.commit()
        txn.commit()  # idempotent
        with pytest.raises(TransactionError):
            txn.abort()
        return True

    assert run_in_sim(rt, proc)


def test_operations_after_abort_rejected(rt, space, txns):
    def proc():
        txn = txns.create()
        txn.abort()
        with pytest.raises(TransactionAbortedError):
            space.write(TaskEntry("a", 1, None), txn=txn)
        return True

    assert run_in_sim(rt, proc)


def test_lease_expiry_auto_aborts(rt, space, txns):
    def proc():
        space.write(TaskEntry("a", 1, None))
        txn = txns.create(timeout_ms=100.0)
        space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        rt.sleep(200.0)  # lease expires; manager aborts
        restored = space.read(TaskEntry(), timeout_ms=0.0)
        with pytest.raises(TransactionAbortedError):
            txn.commit()
        return restored is not None

    assert run_in_sim(rt, proc) is True
    assert txns.aborted_by_lease == 1


def test_context_manager_commits_on_success(rt, space, txns):
    def proc():
        with txns.create() as txn:
            space.write(TaskEntry("a", 1, None), txn=txn)
        return space.read(TaskEntry(), timeout_ms=0.0) is not None

    assert run_in_sim(rt, proc) is True


def test_context_manager_aborts_on_error(rt, space, txns):
    def proc():
        try:
            with txns.create() as txn:
                space.write(TaskEntry("a", 1, None), txn=txn)
                raise RuntimeError("worker died")
        except RuntimeError:
            pass
        return space.read(TaskEntry(), timeout_ms=0.0)

    assert run_in_sim(rt, proc) is None


def test_multiple_entries_commit_atomically(rt, space, txns):
    def proc():
        txn = txns.create()
        for i in range(5):
            space.write(TaskEntry("batch", i, None), txn=txn)
        before = space.count(TaskEntry(app="batch"))
        txn.commit()
        after = space.count(TaskEntry(app="batch"))
        return before, after

    assert run_in_sim(rt, proc) == (0, 5)


def test_notify_fires_only_on_commit(rt, space, txns):
    events = []

    def proc():
        space.notify(TaskEntry(), events.append)
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        rt.sleep(1.0)
        pre_commit = len(events)
        txn.commit()
        rt.sleep(1.0)
        return pre_commit, len(events)

    assert run_in_sim(rt, proc) == (0, 1)


def test_txn_write_then_take_within_txn(rt, space, txns):
    def proc():
        txn = txns.create()
        space.write(TaskEntry("a", 1, None), txn=txn)
        taken = space.take(TaskEntry(), txn=txn, timeout_ms=0.0)
        txn.commit()
        leftover = space.read(TaskEntry(), timeout_ms=0.0)
        return taken is not None, leftover

    assert run_in_sim(rt, proc) == (True, None)
