"""Group commit: fsync policies, watermarks, power loss, compaction."""

from __future__ import annotations

import os

import pytest

from repro.errors import SpaceError
from repro.tuplespace.wal import (
    FileWalStore,
    WalStore,
    WriteAheadLog,
    op_write,
)
from tests.conftest import run_in_sim


def _append(wal, n, start=0):
    for i in range(start, start + n):
        wal.append((op_write(i, b"payload", float("inf")),))


def test_always_policy_syncs_every_append():
    store = WalStore(fsync_policy="always")
    wal = WriteAheadLog(store)
    _append(wal, 3)
    assert store.pending() == 0
    assert store.syncs == 3
    assert store.power_loss() == 0


def test_group_policy_buffers_until_size_watermark():
    store = WalStore(fsync_policy="group", group_size=3)
    wal = WriteAheadLog(store)
    _append(wal, 2)
    assert store.pending() == 2 and store.syncs == 0
    _append(wal, 1, start=2)                 # watermark reached
    assert store.pending() == 0 and store.syncs == 1


def test_group_policy_power_loss_drops_only_the_unsynced_tail():
    store = WalStore(fsync_policy="group", group_size=10)
    wal = WriteAheadLog(store)
    _append(wal, 4)
    wal.sync()                               # durability barrier
    _append(wal, 3, start=4)
    assert store.power_loss() == 3
    assert [r.lsn for r in store.records] == [1, 2, 3, 4]


def test_os_policy_loses_everything_unsynced_on_power_loss():
    store = WalStore(fsync_policy="os")
    wal = WriteAheadLog(store)
    _append(wal, 5)
    assert store.pending() == 5
    assert store.power_loss() == 5


def test_time_watermark_flushes_a_traffic_lull(rt):
    store = WalStore(fsync_policy="group", group_size=100)
    wal = WriteAheadLog(store, runtime=rt, group_ms=50.0)

    def body():
        _append(wal, 2)
        buffered = store.pending()
        rt.sleep(60.0)                       # past the group_ms deadline
        return buffered, store.pending()

    assert run_in_sim(rt, body) == (2, 0)


def test_bad_policy_and_group_size_rejected():
    with pytest.raises(SpaceError):
        WalStore(fsync_policy="sometimes")
    with pytest.raises(SpaceError):
        WalStore(group_size=0)


def test_file_group_commit_not_on_disk_until_sync(tmp_path):
    path = os.fspath(tmp_path / "wal")
    store = FileWalStore(path, fsync_policy="group", group_size=10)
    wal = WriteAheadLog(store)
    _append(wal, 3)

    peek = FileWalStore(path)                # what a power loss would find
    buffered = len(peek.records)
    peek.close()

    wal.sync()
    peek = FileWalStore(path)
    durable = len(peek.records)
    peek.close()
    store.close()
    assert (buffered, durable) == (0, 3)


def test_file_compaction_survives_reopen(tmp_path):
    path = os.fspath(tmp_path / "wal")
    store = FileWalStore(path)
    wal = WriteAheadLog(store)
    _append(wal, 5)
    store.install_snapshot(3, b"state-at-3")
    _append(wal, 2, start=5)
    store.close()

    recovered = FileWalStore(path)
    try:
        assert recovered.snapshot == (3, b"state-at-3")
        assert [r.lsn for r in recovered.records] == [4, 5, 6, 7]
        assert recovered.last_lsn() == 7
    finally:
        recovered.close()


def test_file_compaction_truncates_the_log(tmp_path):
    path = os.fspath(tmp_path / "wal")
    store = FileWalStore(path)
    wal = WriteAheadLog(store)
    _append(wal, 50)
    before = os.path.getsize(path + ".log")
    store.install_snapshot(50, b"all-covered")
    after = os.path.getsize(path + ".log")
    store.close()
    assert before > 0
    assert after == 0                        # every record was covered


def test_compaction_leaves_no_torn_temp_files(tmp_path):
    path = os.fspath(tmp_path / "wal")
    store = FileWalStore(path)
    wal = WriteAheadLog(store)
    _append(wal, 8)
    store.install_snapshot(4, b"state")
    store.close()
    leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
    assert leftovers == []
