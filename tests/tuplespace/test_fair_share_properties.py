"""Property tests on the space's weighted fair-share (DRR) dispatcher.

The headline invariant (ISSUE 8): with every tenant continuously
backlogged, long-run take grants converge to the configured weights.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.entries import TaskEntry
from repro.errors import SpaceError
from repro.runtime import SimulatedRuntime
from repro.tuplespace import JavaSpace

import pytest

TENANTS = ("alice", "bob", "carol", "dave")
weights = st.sampled_from([0.5, 1.0, 2.0, 4.0])
share_maps = st.dictionaries(
    st.sampled_from(TENANTS), weights, min_size=2, max_size=4
)


def _with_space(fn):
    """Run ``fn(rt, space)`` inside a fresh simulated process."""
    runtime = SimulatedRuntime()
    try:
        space = JavaSpace(runtime)
        proc = runtime.kernel.spawn(lambda: fn(runtime, space), name="prop")
        runtime.kernel.run()
        return proc.result
    finally:
        runtime.shutdown()


def _seed_backlog(space, shares, per_tenant):
    task_id = 0
    for tenant in sorted(shares):
        for _ in range(per_tenant):
            space.write(TaskEntry(app_id="fair", task_id=task_id,
                                  payload=task_id, tenant=tenant,
                                  priority=0))
            task_id += 1


@settings(max_examples=25, deadline=None)
@given(shares=share_maps)
def test_drr_long_run_grants_converge_to_weights(shares):
    """Every tenant stays backlogged for T takes; grant fractions must
    land within 10% of the weight fractions (the DRR lag is bounded by
    one replenish cycle, far below that)."""
    total_weight = sum(shares.values())
    takes = 30 * len(shares)

    def body(rt, space):
        space.configure_fair_share(shares)
        # Backlog sized so no tenant drains before the last take.
        _seed_backlog(space, shares, per_tenant=takes)
        for _ in range(takes):
            assert space.take(TaskEntry(), timeout_ms=0) is not None
        return dict(space.fair_stats)

    stats = _with_space(body)
    granted = {t: stats.get(f"grants:{t}", 0) for t in shares}
    assert sum(granted.values()) == takes
    for tenant, weight in shares.items():
        expected = takes * weight / total_weight
        assert abs(granted[tenant] - expected) <= max(2.0, 0.1 * takes), (
            f"{tenant} (weight {weight}) got {granted[tenant]} grants, "
            f"expected ~{expected:.1f} of {takes}"
        )


@settings(max_examples=15, deadline=None)
@given(shares=share_maps, takes=st.integers(1, 30))
def test_drr_preserves_fifo_within_a_tenant(shares, takes):
    """DRR reorders *across* tenants only: each tenant's own tasks come
    out in task_id (write) order."""

    def body(rt, space):
        space.configure_fair_share(shares)
        _seed_backlog(space, shares, per_tenant=takes)
        seen: dict[str, list[int]] = {}
        while True:
            entry = space.take(TaskEntry(), timeout_ms=0)
            if entry is None:
                return seen
            seen.setdefault(entry.tenant, []).append(entry.task_id)

    seen = _with_space(body)
    for tenant, ids in seen.items():
        assert ids == sorted(ids), f"{tenant} served out of FIFO order"


def test_drr_unknown_tenant_gets_default_share():
    shares = {"alice": 4.0}

    def body(rt, space):
        space.configure_fair_share(shares, default_share=1.0)
        _seed_backlog(space, {"alice": 4.0, "mallory": 1.0}, per_tenant=50)
        for _ in range(50):
            space.take(TaskEntry(), timeout_ms=0)
        return dict(space.fair_stats)

    stats = _with_space(body)
    # 4:1 weights over 50 grants → ~40 vs ~10.
    assert stats["grants:alice"] > 3 * stats["grants:mallory"]


def test_fair_share_rejects_non_positive_weights():
    def body(rt, space):
        with pytest.raises(SpaceError):
            space.configure_fair_share({"alice": 0.0})
        with pytest.raises(SpaceError):
            space.configure_fair_share({"alice": 1.0}, default_share=-1.0)
        return True

    assert _with_space(body)
