"""Template matching rules (JavaSpaces associative lookup)."""

from __future__ import annotations

import numpy as np

from repro.tuplespace import entry_fields, matches
from repro.tuplespace.entry import values_equal

from tests.tuplespace.entries import PriorityTask, ResultEntry, TaskEntry


def test_wildcard_template_matches_everything_of_class():
    template = TaskEntry()
    assert matches(template, TaskEntry("app", 1, "x"))
    assert matches(template, TaskEntry(None, None, None))


def test_exact_field_must_match():
    template = TaskEntry(app="raytrace")
    assert matches(template, TaskEntry("raytrace", 5, "p"))
    assert not matches(template, TaskEntry("options", 5, "p"))


def test_multiple_fields_all_must_match():
    template = TaskEntry(app="a", task_id=3)
    assert matches(template, TaskEntry("a", 3, "z"))
    assert not matches(template, TaskEntry("a", 4, "z"))
    assert not matches(template, TaskEntry("b", 3, "z"))


def test_class_mismatch_never_matches():
    assert not matches(TaskEntry(), ResultEntry("a", 1, 0))


def test_subclass_matches_superclass_template():
    template = TaskEntry(app="a")
    assert matches(template, PriorityTask("a", 1, "p", priority=9))


def test_superclass_does_not_match_subclass_template():
    template = PriorityTask(app="a")
    assert not matches(template, TaskEntry("a", 1, "p"))


def test_subclass_template_field_matching():
    template = PriorityTask(priority=2)
    assert matches(template, PriorityTask("a", 1, "p", priority=2))
    assert not matches(template, PriorityTask("a", 1, "p", priority=3))


def test_template_matches_exact_copy():
    entry = TaskEntry("app", 42, {"data": [1, 2]})
    copy = TaskEntry("app", 42, {"data": [1, 2]})
    assert matches(entry, copy)


def test_entry_fields_excludes_private():
    entry = TaskEntry("a", 1, "p")
    entry._secret = "hidden"
    fields = entry_fields(entry)
    assert "_secret" not in fields
    assert set(fields) == {"app", "task_id", "payload"}


def test_private_fields_do_not_participate_in_matching():
    template = TaskEntry(app="a")
    template._secret = "x"
    candidate = TaskEntry("a", 1, "p")
    assert matches(template, candidate)


def test_numpy_payload_equality():
    a = TaskEntry("a", 1, np.array([1.0, 2.0]))
    b = TaskEntry("a", 1, np.array([1.0, 2.0]))
    assert matches(a, b)
    c = TaskEntry("a", 1, np.array([1.0, 3.0]))
    assert not matches(a, c)


def test_values_equal_handles_mixed_types():
    assert values_equal(1, 1.0)
    assert not values_equal(np.array([1]), np.array([1, 2]))
    assert values_equal("x", "x")
    assert not values_equal("x", 0)
