"""API quality gates: docstrings and import hygiene across the package."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # runs the CLI on import, by design
        yield info.name


ALL_MODULES = sorted(iter_modules())


def test_every_module_imports_cleanly():
    for name in ALL_MODULES:
        importlib.import_module(name)


@pytest.mark.parametrize("name", ALL_MODULES)
def test_every_module_has_a_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} is missing a module docstring"


def test_public_classes_documented():
    undocumented = []
    for name in ALL_MODULES:
        module = importlib.import_module(name)
        for attr_name in getattr(module, "__all__", []):
            attr = getattr(module, attr_name)
            if inspect.isclass(attr) and attr.__module__.startswith("repro"):
                if not attr.__doc__:
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"undocumented public classes: {undocumented}"


def test_public_functions_documented():
    undocumented = []
    for name in ALL_MODULES:
        module = importlib.import_module(name)
        for attr_name in getattr(module, "__all__", []):
            attr = getattr(module, attr_name)
            if inspect.isfunction(attr) and attr.__module__.startswith("repro"):
                if not attr.__doc__:
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"undocumented public functions: {undocumented}"


def test_no_module_leaks_private_names_in_all():
    for name in ALL_MODULES:
        module = importlib.import_module(name)
        for attr_name in getattr(module, "__all__", []):
            assert not attr_name.startswith("_"), f"{name} exports {attr_name}"


def test_subpackage_layout_matches_design():
    """The DESIGN.md system inventory, verified against reality."""
    expected = {
        "repro.sim", "repro.runtime", "repro.net", "repro.tuplespace",
        "repro.jini", "repro.snmp", "repro.node", "repro.core",
        "repro.apps", "repro.experiments", "repro.util",
    }
    packages = {
        name for name in ALL_MODULES
        if importlib.import_module(name).__file__.endswith("__init__.py")
    }
    assert expected <= packages
