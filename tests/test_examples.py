"""Smoke tests: every example script runs end to end.

Examples are the public face of the library; each must execute against
the real stack.  Run via ``runpy`` so they execute exactly as a user's
``python examples/<name>.py`` would.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_estimates_pi(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "π ≈ 3.14" in out
    assert "tasks per worker" in out


def test_option_pricing_brackets_black_scholes(capsys):
    out = run_example("option_pricing.py", [], capsys)
    assert "Broadie–Glasserman price" in out
    assert "inside the interval" in out


def test_ray_tracing_writes_matching_image(tmp_path, capsys):
    target = tmp_path / "out.ppm"
    out = run_example("ray_tracing.py", [str(target)], capsys)
    assert "matches sequential render: True" in out
    data = target.read_bytes()
    assert data.startswith(b"P6\n600 600\n255\n")
    assert len(data) == len(b"P6\n600 600\n255\n") + 600 * 600 * 3


def test_web_prefetch_improves_hit_rate(capsys):
    out = run_example("web_prefetch.py", [], capsys)
    assert "L1 distance to converged PageRank" in out
    assert "with rank-based pre-fetching" in out


def test_adaptive_cluster_demo_prints_cycle(capsys):
    out = run_example("adaptive_cluster_demo.py", ["web-prefetch"], capsys)
    assert "start → stop → start → pause → resume" in out
    assert "class loads  : 2" in out


def test_reproduce_paper_quick(capsys):
    out = run_example("reproduce_paper.py", ["--quick"], capsys)
    assert "Figure 9(b)" in out
    assert "Table 2" in out


def test_fault_tolerance_survives_crashes(capsys):
    out = run_example("fault_tolerance.py", [], capsys)
    assert "all 100 tasks completed" in out
    assert "despite 4 crashes" in out
    assert "inside" in out
