"""FaultPlan generation/determinism and FaultInjector scheduling."""

from __future__ import annotations

import numpy as np

from repro.core.metrics import Metrics
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.net import LatencyModel, Network
from repro.net.network import ChaosProfile


def test_generated_plans_are_seed_deterministic():
    hosts = ["w1", "w2", "w3"]

    def gen(seed):
        return FaultPlan.generate(np.random.default_rng(seed), hosts,
                                  crashes=2, flaps=2, server_restarts=1,
                                  chaos_windows=1)

    assert gen(42).events == gen(42).events
    assert gen(42).events != gen(43).events


def test_generated_plan_shape_and_ordering():
    plan = FaultPlan.generate(np.random.default_rng(0), ["w1", "w2"],
                              horizon_ms=10_000.0, crashes=1, flaps=2,
                              server_restarts=1, chaos_windows=1)
    assert len(plan) == 5
    times = [e.at_ms for e in plan]
    assert times == sorted(times)
    assert all(1_000.0 <= t <= 9_000.0 for t in times)  # lead-in / drain
    kinds = [e.kind for e in plan]
    assert kinds.count(FaultKind.LINK_FLAP) == 2
    for event in plan:
        if event.kind in (FaultKind.WORKER_CRASH, FaultKind.LINK_FLAP):
            assert event.target in ("w1", "w2")
        if event.kind == FaultKind.CHAOS_WINDOW:
            assert event.profile is not None


def test_plan_add_keeps_events_sorted():
    plan = FaultPlan([FaultEvent(500.0, FaultKind.SERVER_RESTART,
                                 duration_ms=100.0)])
    plan.add(FaultEvent(100.0, FaultKind.WORKER_CRASH, target="w1"))
    assert [e.at_ms for e in plan] == [100.0, 500.0]
    assert "worker-crash" in plan.describe().splitlines()[0]


class _CrashableHost:
    def __init__(self):
        self.crashed = False

    def crash(self):
        self.crashed = True


def test_injector_applies_and_heals_on_schedule(rt):
    net = Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0,
                                           per_kb_ms=0.0))
    metrics = Metrics(rt)
    host = _CrashableHost()
    plan = FaultPlan([
        FaultEvent(100.0, FaultKind.WORKER_CRASH, target="w1"),
        FaultEvent(200.0, FaultKind.LINK_FLAP, target="w2",
                   duration_ms=300.0),
        FaultEvent(250.0, FaultKind.CHAOS_WINDOW, duration_ms=100.0,
                   profile=ChaosProfile(datagram_drop=1.0)),
    ])
    injector = FaultInjector(rt, net, plan, metrics,
                             worker_hosts={"w1": host},
                             rng=np.random.default_rng(0))
    observed = []

    def observer():
        rt.sleep(150.0)
        observed.append(("crashed", host.crashed))
        rt.sleep(150.0)  # t=300: flap + chaos window active
        observed.append(("isolated", net.is_isolated("w2")))
        observed.append(("chaos", net._chaos is not None))
        rt.sleep(300.0)  # t=600: both healed
        observed.append(("healed", not net.is_isolated("w2")))
        observed.append(("chaos-off", net._chaos is None))

    injector.arm()
    rt.kernel.spawn(observer, name="observer")
    rt.kernel.run_until_idle()

    assert dict(observed) == {"crashed": True, "isolated": True,
                              "chaos": True, "healed": True,
                              "chaos-off": True}
    assert injector.injected == 3
    assert injector.healed == 2
    names = [n for _, n, _ in metrics.events]
    assert names.count("fault-injected") == 3
    assert names.count("fault-healed") == 2


def test_disarm_suppresses_unfired_events(rt):
    net = Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0,
                                           per_kb_ms=0.0))
    host = _CrashableHost()
    plan = FaultPlan([FaultEvent(500.0, FaultKind.WORKER_CRASH, target="w1")])
    injector = FaultInjector(rt, net, plan, Metrics(rt),
                             worker_hosts={"w1": host})

    def disarmer():
        rt.sleep(100.0)
        injector.disarm()

    injector.arm()
    rt.kernel.spawn(disarmer, name="disarmer")
    rt.kernel.run_until_idle()
    assert not host.crashed
    assert injector.injected == 0


# -- nemesis fault kinds: partition / pause / gray-slow ---------------------


def _net(rt):
    return Network(rt, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0,
                                            per_kb_ms=0.0))


def test_nemesis_faults_inject_and_heal_on_schedule(rt):
    net = _net(rt)
    plan = FaultPlan([
        FaultEvent(100.0, FaultKind.PARTITION, target="space",
                   duration_ms=300.0),
        FaultEvent(150.0, FaultKind.PAUSE, target="shard:1",
                   duration_ms=300.0),
        FaultEvent(200.0, FaultKind.GRAY_SLOW, target="w9",
                   duration_ms=300.0, factor=8.0),
    ])
    injector = FaultInjector(rt, net, plan, Metrics(rt),
                             space_hosts=["h0", "h1"])
    observed = {}

    def observer():
        rt.sleep(250.0)  # all three active
        observed["egress-cut"] = net.is_partitioned("h0", "elsewhere")
        observed["ingress-open"] = not net.is_partitioned("elsewhere", "h0")
        observed["paused"] = net.is_paused("h1")
        observed["slowed"] = net._slow_factor("w9", "x")
        rt.sleep(350.0)  # all healed
        observed["healed"] = (not net.is_partitioned("h0", "elsewhere")
                              and not net.is_paused("h1")
                              and net._slow_factor("w9", "x") == 1.0)

    injector.arm()
    rt.kernel.spawn(observer, name="observer")
    rt.kernel.run_until_idle()

    assert observed == {"egress-cut": True, "ingress-open": True,
                        "paused": True, "slowed": 8.0, "healed": True}
    assert injector.injected == 3
    assert injector.healed == 3


def test_resolve_target_symbolic_names(rt):
    injector = FaultInjector(rt, _net(rt), FaultPlan(), Metrics(rt),
                             space_hosts=["h0", "h1", "h2"])
    assert injector.resolve_target("space") == "h0"
    assert injector.resolve_target("shard:2") == "h2"
    assert injector.resolve_target("worker7") == "worker7"
    assert injector.resolve_target(None) is None


def test_disarm_heals_outstanding_directed_partitions(rt):
    net = _net(rt)
    plan = FaultPlan([
        FaultEvent(100.0, FaultKind.PARTITION, target="space",
                   duration_ms=60_000.0),   # would outlive the run
        FaultEvent(100.0, FaultKind.PAUSE, target="shard:1",
                   duration_ms=60_000.0),
        FaultEvent(100.0, FaultKind.GRAY_SLOW, target="w9",
                   duration_ms=60_000.0, factor=4.0),
    ])
    injector = FaultInjector(rt, net, plan, Metrics(rt),
                             space_hosts=["h0", "h1"])

    def proc():
        rt.sleep(200.0)
        assert net.is_partitioned("h0", "elsewhere")
        assert net.is_paused("h1")
        injector.disarm()
        assert not net.is_partitioned("h0", "elsewhere")
        assert not net.is_paused("h1")
        assert net._slow_factor("w9", "x") == 1.0

    injector.arm()
    rt.kernel.spawn(proc, name="proc")
    rt.kernel.run_until_idle()
    assert injector.injected == 3
