"""CLI application commands: price and render."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_price_put_option(capsys):
    assert main(["price", "--type", "put", "--strike", "110",
                 "--simulations", "1000", "--workers", "4"]) == 0
    out = capsys.readouterr().out
    assert "price    :" in out
    assert "interval :" in out
    # An ITM put on these terms is worth well over intrinsic-zero.
    price = float(out.split("price    :")[1].split()[0])
    assert 5.0 < price < 25.0


def test_price_rejects_bad_type():
    with pytest.raises(SystemExit):
        main(["price", "--type", "swaption"])


def test_render_builtin_scene(tmp_path, capsys):
    target = tmp_path / "out.ppm"
    assert main(["render", "--size", "48", "--output", str(target)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    data = target.read_bytes()
    assert data.startswith(b"P6\n48 48\n255\n")


def test_render_json_scene_with_aa(tmp_path, capsys):
    from repro.apps.raytrace import default_scene, save_scene

    scene_file = tmp_path / "scene.json"
    save_scene(default_scene(), scene_file)
    target = tmp_path / "out.ppm"
    assert main(["render", str(scene_file), "--size", "48",
                 "--aa", "2", "--output", str(target)]) == 0
    assert "AA 2x2" in capsys.readouterr().out
    assert target.exists()
