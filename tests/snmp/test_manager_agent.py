"""Manager/agent interaction over the simulated network."""

from __future__ import annotations

import pytest

from repro.errors import NoSuchOidError, TimeoutError_
from repro.net import Address, LatencyModel, Network
from repro.sim import RandomStreams
from repro.snmp import HOST_RESOURCES, Mib, Oid, SnmpAgent, SnmpManager


@pytest.fixture()
def env(rt):
    net = Network(rt, latency=LatencyModel(base_ms=0.5, jitter_ms=0.0, per_kb_ms=0.0))
    mib = Mib()
    mib.register(HOST_RESOURCES.SYS_NAME, "worker-3")
    mib.register(HOST_RESOURCES.HR_PROCESSOR_LOAD, lambda: 37)
    mib.register(HOST_RESOURCES.EXTERNAL_LOAD, lambda: 12)
    mib.register(Oid("1.3.6.1.4.1.20010.9.0"), 0, writable=True)
    agent = SnmpAgent(rt, net, "worker3", mib, community="cluster")
    agent.start()
    manager = SnmpManager(rt, net, "manager", community="cluster", timeout_ms=50.0)
    return net, agent, manager


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_get_single_oid(rt, env):
    _, _, manager = env

    def proc():
        return manager.get_one("worker3", HOST_RESOURCES.HR_PROCESSOR_LOAD)

    assert run(rt, proc) == 37


def test_get_multiple_oids_in_one_pdu(rt, env):
    _, _, manager = env

    def proc():
        return manager.get(
            "worker3", [HOST_RESOURCES.SYS_NAME, HOST_RESOURCES.EXTERNAL_LOAD]
        )

    values = run(rt, proc)
    assert values[HOST_RESOURCES.SYS_NAME] == "worker-3"
    assert values[HOST_RESOURCES.EXTERNAL_LOAD] == 12


def test_get_unknown_oid_raises(rt, env):
    _, _, manager = env

    def proc():
        with pytest.raises(NoSuchOidError):
            manager.get_one("worker3", Oid("1.3.6.1.99.0"))
        return True

    assert run(rt, proc)


def test_walk_subtree(rt, env):
    _, _, manager = env

    def proc():
        return manager.walk("worker3", Oid("1.3.6.1.2.1"))

    results = run(rt, proc)
    oids = [str(oid) for oid, _ in results]
    assert oids == sorted(oids)
    assert str(HOST_RESOURCES.SYS_NAME) in oids
    assert str(HOST_RESOURCES.HR_PROCESSOR_LOAD) in oids
    # enterprise OIDs are outside the 1.3.6.1.2.1 subtree
    assert str(HOST_RESOURCES.EXTERNAL_LOAD) not in oids


def test_set_writable_oid(rt, env):
    _, agent, manager = env
    target = Oid("1.3.6.1.4.1.20010.9.0")

    def proc():
        manager.set("worker3", target, 99)
        return manager.get_one("worker3", target)

    assert run(rt, proc) == 99


def test_wrong_community_times_out(rt, env):
    net, agent, _ = env
    intruder = SnmpManager(rt, net, "intruder", community="wrong",
                           timeout_ms=20.0, retries=1)

    def proc():
        with pytest.raises(TimeoutError_):
            intruder.get_one("worker3", HOST_RESOURCES.SYS_NAME)
        return True

    assert run(rt, proc)
    assert agent.stats["bad_community"] == 2  # initial + 1 retry


def test_no_agent_times_out_after_retries(rt, env):
    _, _, manager = env

    def proc():
        t0 = rt.now()
        with pytest.raises(TimeoutError_):
            manager.get_one("ghost", HOST_RESOURCES.SYS_NAME)
        return rt.now() - t0

    elapsed = run(rt, proc)
    assert elapsed >= 3 * 50.0  # 1 try + 2 retries, 50 ms timeout each
    assert manager.stats["timeouts"] == 1
    assert manager.stats["retries"] == 2


def test_manager_survives_lossy_network(rt):
    lossy = Network(
        rt,
        latency=LatencyModel(base_ms=0.5, jitter_ms=0.0, loss_probability=0.45),
        rng=RandomStreams(11).stream("net"),
    )
    mib = Mib()
    mib.register(HOST_RESOURCES.HR_PROCESSOR_LOAD, 55)
    SnmpAgent(rt, lossy, "w", mib).start()
    manager = SnmpManager(rt, lossy, "m", timeout_ms=30.0, retries=8)

    def proc():
        return manager.get_one("w", HOST_RESOURCES.HR_PROCESSOR_LOAD)

    assert run(rt, proc) == 55


def test_live_value_sampled_at_each_poll(rt, env):
    net, agent, manager = env
    samples = iter([10, 60, 90])
    agent.mib.register(HOST_RESOURCES.TOTAL_LOAD, lambda: next(samples))

    def proc():
        return [manager.get_one("worker3", HOST_RESOURCES.TOTAL_LOAD) for _ in range(3)]

    assert run(rt, proc) == [10, 60, 90]


def test_agent_stop_releases_port(rt, env):
    net, agent, _ = env

    def proc():
        agent.stop()
        net.bind_datagram(Address("worker3", 161))  # port free again
        return True

    assert run(rt, proc)
