"""BER-subset codec: unit and property-based round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodecError
from repro.snmp import GetNextRequest, GetRequest, GetResponse, SetRequest, Oid
from repro.snmp.pdu import decode_message, encode_message


def roundtrip(pdu):
    return decode_message(encode_message(pdu))


def test_get_request_round_trip():
    pdu = GetRequest(
        request_id=42,
        varbinds=[(Oid("1.3.6.1.2.1.25.3.3.1.2.1"), None)],
        community="cluster",
    )
    out = roundtrip(pdu)
    assert isinstance(out, GetRequest)
    assert out.request_id == 42
    assert out.community == "cluster"
    assert out.varbinds == [(Oid("1.3.6.1.2.1.25.3.3.1.2.1"), None)]


def test_response_with_integer_value():
    pdu = GetResponse(request_id=7, varbinds=[(Oid("1.3.6.1"), 87)])
    assert roundtrip(pdu).varbinds == [(Oid("1.3.6.1"), 87)]


def test_negative_and_large_integers():
    pdu = GetResponse(
        request_id=1,
        varbinds=[
            (Oid("1.3.6.1"), -1),
            (Oid("1.3.6.2"), -(2**31)),
            (Oid("1.3.6.3"), 2**40 + 17),
            (Oid("1.3.6.4"), 0),
            (Oid("1.3.6.5"), 127),
            (Oid("1.3.6.6"), 128),
        ],
    )
    assert roundtrip(pdu).varbinds == pdu.varbinds


def test_string_and_bytes_values():
    pdu = GetResponse(
        request_id=1,
        varbinds=[(Oid("1.3.6.1"), "Windows NT 4.0"), (Oid("1.3.6.2"), "üñïçødé")],
    )
    assert roundtrip(pdu).varbinds == pdu.varbinds


def test_oid_valued_varbind():
    pdu = GetResponse(request_id=1, varbinds=[(Oid("1.3.6.1"), Oid("1.3.6.1.4.1"))])
    assert roundtrip(pdu).varbinds == pdu.varbinds


def test_float_rounds_to_integer():
    pdu = GetResponse(request_id=1, varbinds=[(Oid("1.3.6.1"), 41.7)])
    assert roundtrip(pdu).varbinds == [(Oid("1.3.6.1"), 42)]


def test_all_pdu_types_preserve_class():
    for cls in (GetRequest, GetNextRequest, GetResponse, SetRequest):
        assert isinstance(roundtrip(cls(request_id=3)), cls)


def test_error_fields_round_trip():
    pdu = GetResponse(request_id=9, error_status=2, error_index=1,
                      varbinds=[(Oid("1.3.6.1"), None)])
    out = roundtrip(pdu)
    assert (out.error_status, out.error_index) == (2, 1)


def test_long_form_length_for_big_messages():
    varbinds = [(Oid(f"1.3.6.1.9.{i}"), "x" * 50) for i in range(20)]
    pdu = GetResponse(request_id=1, varbinds=varbinds)
    encoded = encode_message(pdu)
    assert len(encoded) > 300  # forces long-form lengths
    assert roundtrip(pdu).varbinds == varbinds


def test_large_subidentifiers_use_base128():
    oid = Oid("1.3.6.1.4.1.20010.1.2.0")
    pdu = GetRequest(request_id=1, varbinds=[(oid, None)])
    assert roundtrip(pdu).varbinds[0][0] == oid


@pytest.mark.parametrize(
    "data",
    [b"", b"\x30", b"\x30\x05abc", b"\x02\x01\x00", b"\x30\x81", b"\x30\x02\x02\x01"],
)
def test_malformed_bytes_raise_codec_error(data):
    with pytest.raises(CodecError):
        decode_message(data)


def test_truncated_valid_message_fails():
    encoded = encode_message(GetRequest(request_id=5, varbinds=[(Oid("1.3.6.1"), None)]))
    with pytest.raises(CodecError):
        decode_message(encoded[: len(encoded) // 2])


# -- property-based ------------------------------------------------------------

oid_strategy = st.builds(
    lambda first, second, rest: Oid([first, second] + rest),
    st.integers(0, 2),
    st.integers(0, 39),
    st.lists(st.integers(0, 2**21), max_size=6),
)
value_strategy = st.one_of(
    st.none(),
    st.integers(-(2**47), 2**47),
    st.text(max_size=40),
)
pdu_strategy = st.builds(
    GetResponse,
    request_id=st.integers(0, 2**31 - 1),
    varbinds=st.lists(st.tuples(oid_strategy, value_strategy), max_size=8),
    error_status=st.integers(0, 5),
    error_index=st.integers(0, 8),
    community=st.text(alphabet=st.characters(codec="ascii", exclude_characters="\x00"),
                      max_size=16),
)


@given(pdu=pdu_strategy)
def test_codec_round_trip_property(pdu):
    out = roundtrip(pdu)
    assert out.request_id == pdu.request_id
    assert out.error_status == pdu.error_status
    assert out.error_index == pdu.error_index
    assert out.community == pdu.community
    assert out.varbinds == pdu.varbinds


@given(oid=oid_strategy)
def test_oid_codec_round_trip_property(oid):
    pdu = GetRequest(request_id=1, varbinds=[(oid, None)])
    assert roundtrip(pdu).varbinds[0][0] == oid


@given(data=st.binary(max_size=64))
def test_decoder_never_crashes_on_garbage(data):
    try:
        decode_message(data)
    except CodecError:
        pass  # the only acceptable failure mode
