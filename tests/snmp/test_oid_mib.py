"""OID semantics and MIB walking."""

from __future__ import annotations

import pytest

from repro.errors import NoSuchOidError, SnmpError
from repro.snmp import HOST_RESOURCES, Mib, Oid


def test_oid_parse_and_format():
    oid = Oid("1.3.6.1.2.1.1.1.0")
    assert str(oid) == "1.3.6.1.2.1.1.1.0"
    assert oid.parts == (1, 3, 6, 1, 2, 1, 1, 1, 0)


def test_oid_from_iterable_and_copy():
    assert Oid([1, 3, 6]) == Oid("1.3.6")
    assert Oid(Oid("1.3.6")) == Oid("1.3.6")


def test_oid_leading_dot_tolerated():
    assert Oid(".1.3.6") == Oid("1.3.6")


@pytest.mark.parametrize("bad", ["", "1", "x.y", "1.-3.6", "9.3.6"])
def test_malformed_oids_rejected(bad):
    with pytest.raises(SnmpError):
        Oid(bad)


def test_oid_ordering_is_lexicographic():
    assert Oid("1.3.6.1") < Oid("1.3.6.1.0")
    assert Oid("1.3.6.1.2") < Oid("1.3.6.2")
    assert sorted([Oid("1.3.10"), Oid("1.3.2")]) == [Oid("1.3.2"), Oid("1.3.10")]


def test_oid_concat_and_prefix():
    base = Oid("1.3.6.1")
    leaf = base + (2, 1)
    assert leaf == Oid("1.3.6.1.2.1")
    assert leaf.starts_with(base)
    assert not base.starts_with(leaf)


def test_mib_get_static_and_callable():
    mib = Mib()
    mib.register(Oid("1.3.6.1.1"), "static")
    counter = iter(range(10))
    mib.register(Oid("1.3.6.1.2"), lambda: next(counter))
    assert mib.get(Oid("1.3.6.1.1")) == "static"
    assert mib.get(Oid("1.3.6.1.2")) == 0
    assert mib.get(Oid("1.3.6.1.2")) == 1  # sampled per query


def test_mib_get_unknown_raises():
    with pytest.raises(NoSuchOidError):
        Mib().get(Oid("1.3.6"))


def test_mib_get_next_walks_in_order():
    mib = Mib()
    for suffix in (5, 1, 3):
        mib.register(Oid(f"1.3.6.{suffix}"), suffix)
    oid, value = mib.get_next(Oid("1.3.6.1"))
    assert (str(oid), value) == ("1.3.6.3", 3)
    oid, value = mib.get_next(Oid("1.3.0"))
    assert (str(oid), value) == ("1.3.6.1", 1)
    with pytest.raises(NoSuchOidError):
        mib.get_next(Oid("1.3.6.5"))


def test_mib_set_requires_writable():
    mib = Mib()
    mib.register(Oid("1.3.6.1"), 0, writable=True)
    mib.register(Oid("1.3.6.2"), 0)
    mib.set(Oid("1.3.6.1"), 42)
    assert mib.get(Oid("1.3.6.1")) == 42
    with pytest.raises(NoSuchOidError):
        mib.set(Oid("1.3.6.2"), 42)


def test_mib_unregister():
    mib = Mib()
    mib.register(Oid("1.3.6.1"), 1)
    mib.unregister(Oid("1.3.6.1"))
    assert Oid("1.3.6.1") not in mib
    assert len(mib) == 0


def test_host_resources_oids_are_distinct():
    oids = [
        HOST_RESOURCES.SYS_DESCR,
        HOST_RESOURCES.SYS_UPTIME,
        HOST_RESOURCES.HR_PROCESSOR_LOAD,
        HOST_RESOURCES.EXTERNAL_LOAD,
        HOST_RESOURCES.TOTAL_LOAD,
    ]
    assert len(set(oids)) == len(oids)
