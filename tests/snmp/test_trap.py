"""SNMP traps: codec, receiver, load-band emitter."""

from __future__ import annotations

import pytest

from repro.core.signals import ThresholdPolicy
from repro.net import Address, Network
from repro.node.machine import FAST_PC, Node
from repro.snmp import HOST_RESOURCES, Oid
from repro.snmp.pdu import TrapV2, decode_message, encode_message
from repro.snmp.trap import TRAP_PORT, LoadBandTrapEmitter, TrapReceiver


def test_trap_pdu_round_trip():
    trap = TrapV2(
        request_id=5,
        varbinds=[(HOST_RESOURCES.SYS_NAME, "w1"),
                  (HOST_RESOURCES.EXTERNAL_LOAD, 42)],
        community="cluster",
    )
    out = decode_message(encode_message(trap))
    assert isinstance(out, TrapV2)
    assert out.varbinds == trap.varbinds
    assert out.community == "cluster"


@pytest.fixture()
def env(rt):
    net = Network(rt)
    node = Node(rt, net, "w1", FAST_PC)
    receiver = TrapReceiver(rt, net, "manager")
    receiver.start()
    return net, node, receiver


def run(rt, fn):
    proc = rt.kernel.spawn(fn, name="test-root")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    return proc.result


def test_receiver_dispatches_valid_traps(rt, env):
    net, node, receiver = env
    seen = []
    receiver.on_trap(lambda trap, sender: seen.append((dict(trap.varbinds), sender)))

    def proc():
        sock = net.bind_datagram(net.ephemeral("w1"))
        trap = TrapV2(request_id=1,
                      varbinds=[(HOST_RESOURCES.EXTERNAL_LOAD, 77)])
        sock.send_to(Address("manager", TRAP_PORT), encode_message(trap))
        rt.sleep(10.0)
        sock.close()
        receiver.stop()

    run(rt, proc)
    assert len(seen) == 1
    assert seen[0][0][HOST_RESOURCES.EXTERNAL_LOAD] == 77
    assert receiver.stats["traps"] == 1


def test_receiver_rejects_bad_community_and_garbage(rt, env):
    net, node, receiver = env
    seen = []
    receiver.on_trap(lambda trap, sender: seen.append(trap))

    def proc():
        sock = net.bind_datagram(net.ephemeral("w1"))
        bad = TrapV2(request_id=1, community="wrong")
        sock.send_to(Address("manager", TRAP_PORT), encode_message(bad))
        sock.send_to(Address("manager", TRAP_PORT), b"garbage")
        rt.sleep(10.0)
        sock.close()
        receiver.stop()

    run(rt, proc)
    assert seen == []
    assert receiver.stats["rejected"] == 2


def test_emitter_announces_then_traps_on_band_change(rt, env):
    net, node, receiver = env
    bands = []
    receiver.on_trap(
        lambda trap, sender: bands.append(dict(trap.varbinds)[HOST_RESOURCES.EXTERNAL_LOAD])
    )
    policy = ThresholdPolicy()
    emitter = LoadBandTrapEmitter(rt, node, Address("manager", TRAP_PORT),
                                  policy.band, check_interval_ms=100.0,
                                  window_ms=200.0)

    def proc():
        emitter.start()
        rt.sleep(500.0)                 # idle: only the announcement
        announced = len(bands)
        node.cpu.set_background("user", 40.0)   # idle → busy
        rt.sleep(500.0)
        node.cpu.set_background("user", 90.0)   # busy → loaded
        rt.sleep(500.0)
        node.cpu.clear_background("user")       # loaded → idle
        rt.sleep(500.0)
        emitter.stop()
        receiver.stop()
        return announced

    announced = run(rt, proc)
    assert announced == 1                # exactly one initial announcement
    # announce + idle→busy + busy→loaded + loaded→idle; the rolling window
    # may pass through the busy band on the way down (one extra trap).
    assert 4 <= emitter.traps_sent <= 5
    assert bands[0] <= 25.0              # announcement: idle
    assert 25.0 < bands[1] <= 50.0       # idle → busy
    assert bands[2] > 50.0               # busy → loaded
    assert bands[-1] <= 25.0             # finally idle again


def test_emitter_silent_within_band(rt, env):
    net, node, receiver = env
    policy = ThresholdPolicy()
    emitter = LoadBandTrapEmitter(rt, node, Address("manager", TRAP_PORT),
                                  policy.band, check_interval_ms=100.0,
                                  window_ms=200.0)

    def proc():
        emitter.start()
        rt.sleep(300.0)
        node.cpu.set_background("user", 30.0)
        rt.sleep(400.0)
        node.cpu.set_background("user", 45.0)  # still the busy band
        rt.sleep(400.0)
        emitter.stop()
        receiver.stop()
        return emitter.traps_sent

    # announce + one idle→busy transition; the 30→45 shift is silent.
    assert run(rt, proc) == 2
