"""SNMPv2 GetBulk support."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.snmp import Mib, Oid, SnmpAgent, SnmpManager
from repro.snmp.pdu import GetBulkRequest, decode_message, encode_message
from tests.conftest import run_in_sim


def test_getbulk_pdu_round_trip():
    pdu = GetBulkRequest(request_id=7, varbinds=[(Oid("1.3.6.1"), None)],
                         error_status=1, error_index=20)
    out = decode_message(encode_message(pdu))
    assert isinstance(out, GetBulkRequest)
    assert out.non_repeaters == 1
    assert out.max_repetitions == 20


@pytest.fixture()
def env(rt):
    net = Network(rt)
    mib = Mib()
    for i in range(1, 31):
        mib.register(Oid(f"1.3.6.1.9.1.{i}"), i * 10)
    mib.register(Oid("1.3.6.1.8.0"), "scalar")
    SnmpAgent(rt, net, "w", mib).start()
    return net, SnmpManager(rt, net, "m")


def test_getbulk_repeats_getnext(rt, env):
    _, manager = env

    def proc():
        return manager.get_bulk("w", [Oid("1.3.6.1.9.1")], max_repetitions=5)

    batch = run_in_sim(rt, proc)
    assert [(str(o), v) for o, v in batch] == [
        (f"1.3.6.1.9.1.{i}", i * 10) for i in range(1, 6)
    ]


def test_getbulk_non_repeaters(rt, env):
    _, manager = env

    def proc():
        return manager.get_bulk(
            "w", [Oid("1.3.6.1.8"), Oid("1.3.6.1.9.1")],
            non_repeaters=1, max_repetitions=3,
        )

    batch = run_in_sim(rt, proc)
    # One GETNEXT for the scalar branch, three for the table branch.
    assert (str(batch[0][0]), batch[0][1]) == ("1.3.6.1.8.0", "scalar")
    assert len(batch) == 4


def test_getbulk_truncates_at_end_of_mib(rt, env):
    _, manager = env

    def proc():
        return manager.get_bulk("w", [Oid("1.3.6.1.9.1.28")],
                                max_repetitions=10)

    batch = run_in_sim(rt, proc)
    assert [str(o) for o, _ in batch] == ["1.3.6.1.9.1.29", "1.3.6.1.9.1.30"]


def test_walk_bulk_matches_plain_walk(rt, env):
    _, manager = env

    def proc():
        plain = manager.walk("w", Oid("1.3.6.1.9"))
        bulk = manager.walk_bulk("w", Oid("1.3.6.1.9"), max_repetitions=7)
        return plain, bulk

    plain, bulk = run_in_sim(rt, proc)
    assert plain == bulk
    assert len(bulk) == 30


def test_walk_bulk_uses_fewer_round_trips(rt, env):
    _, manager = env

    def proc():
        manager.walk("w", Oid("1.3.6.1.9"))
        plain_requests = manager.stats["requests"]
        manager.walk_bulk("w", Oid("1.3.6.1.9"), max_repetitions=16)
        bulk_requests = manager.stats["requests"] - plain_requests
        return plain_requests, bulk_requests

    plain, bulk = run_in_sim(rt, proc)
    assert plain >= 30   # one GETNEXT per OID (+ terminator)
    assert bulk <= 4     # 16 at a time
