"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import SimKernel


def test_clock_starts_at_zero():
    with SimKernel() as kernel:
        assert kernel.now() == 0.0


def test_call_later_runs_in_time_order():
    fired = []
    with SimKernel() as kernel:
        kernel.call_later(20.0, lambda: fired.append(("b", kernel.now())))
        kernel.call_later(10.0, lambda: fired.append(("a", kernel.now())))
        kernel.call_later(30.0, lambda: fired.append(("c", kernel.now())))
        kernel.run()
    assert fired == [("a", 10.0), ("b", 20.0), ("c", 30.0)]


def test_same_time_events_fire_in_schedule_order():
    fired = []
    with SimKernel() as kernel:
        for i in range(5):
            kernel.call_later(5.0, lambda i=i: fired.append(i))
        kernel.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_fire():
    fired = []
    with SimKernel() as kernel:
        handle = kernel.call_later(10.0, lambda: fired.append("x"))
        handle.cancel()
        kernel.run()
    assert fired == []
    assert handle.cancelled


def test_negative_delay_rejected():
    with SimKernel() as kernel:
        with pytest.raises(SimulationError):
            kernel.call_later(-1.0, lambda: None)


def test_process_sleep_advances_virtual_time():
    times = []

    with SimKernel() as kernel:
        def proc():
            times.append(kernel.now())
            kernel.sleep(100.0)
            times.append(kernel.now())
            kernel.sleep(50.0)
            times.append(kernel.now())

        kernel.spawn(proc, name="sleeper")
        kernel.run()
    assert times == [0.0, 100.0, 150.0]


def test_two_processes_interleave_deterministically():
    log = []

    with SimKernel() as kernel:
        def proc(name, period):
            for _ in range(3):
                kernel.sleep(period)
                log.append((name, kernel.now()))

        kernel.spawn(lambda: proc("fast", 10.0), name="fast")
        kernel.spawn(lambda: proc("slow", 25.0), name="slow")
        kernel.run()

    assert log == [
        ("fast", 10.0),
        ("fast", 20.0),
        ("slow", 25.0),
        ("fast", 30.0),
        ("slow", 50.0),
        ("slow", 75.0),
    ]


def test_spawn_from_inside_process():
    log = []

    with SimKernel() as kernel:
        def child():
            log.append(("child", kernel.now()))

        def parent():
            kernel.sleep(10.0)
            kernel.spawn(child, name="child")
            kernel.sleep(10.0)
            log.append(("parent", kernel.now()))

        kernel.spawn(parent, name="parent")
        kernel.run()

    assert log == [("child", 10.0), ("parent", 20.0)]


def test_process_result_recorded():
    with SimKernel() as kernel:
        proc = kernel.spawn(lambda: 42, name="answer")
        kernel.run()
        assert proc.finished
        assert proc.result == 42


def test_process_error_propagates_from_run():
    with SimKernel() as kernel:
        def boom():
            kernel.sleep(5.0)
            raise ValueError("boom")

        kernel.spawn(boom, name="boom")
        with pytest.raises(SimulationError, match="boom"):
            kernel.run()


def test_run_until_limits_clock():
    fired = []
    with SimKernel() as kernel:
        kernel.call_later(10.0, lambda: fired.append(10))
        kernel.call_later(1000.0, lambda: fired.append(1000))
        now = kernel.run(until=100.0)
    assert fired == [10]
    assert now == 100.0


def test_run_until_can_continue():
    fired = []
    with SimKernel() as kernel:
        kernel.call_later(10.0, lambda: fired.append(10))
        kernel.call_later(1000.0, lambda: fired.append(1000))
        kernel.run(until=100.0)
        kernel.run()
    assert fired == [10, 1000]


def test_deadlock_detection():
    with SimKernel() as kernel:
        from repro.sim import SimCondition

        cond = SimCondition(kernel)

        def stuck():
            with cond:
                cond.wait()

        kernel.spawn(stuck, name="stuck")
        with pytest.raises(DeadlockError):
            kernel.run()


def test_shutdown_unwinds_blocked_processes():
    kernel = SimKernel()
    from repro.sim import SimCondition

    cond = SimCondition(kernel)
    cleanup = []

    def stuck():
        try:
            with cond:
                cond.wait(timeout=None)
        finally:
            cleanup.append("unwound")

    proc = kernel.spawn(stuck, name="stuck")
    kernel.run(until=10.0)
    assert not proc.finished
    kernel.shutdown()
    assert proc.finished
    assert cleanup == ["unwound"]


def test_shutdown_is_idempotent():
    kernel = SimKernel()
    kernel.spawn(lambda: None, name="noop")
    kernel.run()
    kernel.shutdown()
    kernel.shutdown()


def test_spawn_after_shutdown_rejected():
    kernel = SimKernel()
    kernel.shutdown()
    with pytest.raises(SimulationError):
        kernel.spawn(lambda: None)


def test_sleep_zero_yields_but_does_not_advance():
    with SimKernel() as kernel:
        def proc():
            kernel.sleep(0.0)
            return kernel.now()

        p = kernel.spawn(proc, name="zero")
        kernel.run()
        assert p.result == 0.0


def test_many_processes_scale():
    with SimKernel() as kernel:
        counter = []

        def proc(i):
            kernel.sleep(float(i % 7))
            counter.append(i)

        for i in range(200):
            kernel.spawn(lambda i=i: proc(i), name=f"p{i}")
        kernel.run()
        assert len(counter) == 200


def test_run_until_idle_guards_against_event_storms():
    with SimKernel() as kernel:
        def rearm():
            kernel.call_later(0.0, rearm)  # schedules itself forever

        kernel.call_later(0.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            kernel.run_until_idle(max_events=100)


def test_error_tb_initialized_before_any_failure():
    with SimKernel() as kernel:
        proc = kernel.spawn(lambda: None, name="ok")
        assert proc.error_tb == ""
        kernel.run()
        assert proc.error_tb == ""


def test_failing_process_records_traceback_text():
    kernel = SimKernel()

    def boom():
        raise ValueError("kapow")

    kernel.spawn(boom, name="boom")
    with pytest.raises(SimulationError, match="kapow"):
        kernel.run()
    kernel.shutdown()


def test_same_time_events_fire_in_schedule_order():
    fired = []
    with SimKernel() as kernel:
        for i in range(50):
            kernel.call_later(5.0, lambda i=i: fired.append(i))
        kernel.run()
        assert fired == list(range(50))


def test_event_scheduled_at_current_time_during_drain_runs_same_pass():
    fired = []
    with SimKernel() as kernel:
        def first():
            fired.append("first")
            kernel.call_later(0.0, lambda: fired.append("chained"))

        kernel.call_later(5.0, first)
        kernel.call_later(5.0, lambda: fired.append("second"))
        kernel.run()
        # FIFO within the 5.0 bucket: the chained event lands after
        # everything already scheduled at that time.
        assert fired == ["first", "second", "chained"]
