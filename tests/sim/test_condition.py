"""Unit tests for simulated condition variables and locks."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import SimCondition, SimKernel, SimLock


def test_wait_timeout_returns_false_and_advances_clock():
    with SimKernel() as kernel:
        cond = SimCondition(kernel)

        def proc():
            with cond:
                notified = cond.wait(timeout=40.0)
            return (notified, kernel.now())

        p = kernel.spawn(proc)
        kernel.run()
        assert p.result == (False, 40.0)


def test_notify_wakes_single_waiter():
    with SimKernel() as kernel:
        cond = SimCondition(kernel)
        woken = []

        def waiter(name):
            with cond:
                ok = cond.wait(timeout=1000.0)
            woken.append((name, ok, kernel.now()))

        kernel.spawn(lambda: waiter("a"))
        kernel.spawn(lambda: waiter("b"))

        def notifier():
            kernel.sleep(10.0)
            with cond:
                cond.notify(1)

        kernel.spawn(notifier)
        kernel.run()

    # First waiter (a) gets notified at t=10; b times out at t=1000.
    assert ("a", True, 10.0) in woken
    assert ("b", False, 1000.0) in woken


def test_notify_all_wakes_everyone():
    with SimKernel() as kernel:
        cond = SimCondition(kernel)
        results = []

        def waiter(i):
            with cond:
                results.append((i, cond.wait(timeout=500.0)))

        for i in range(5):
            kernel.spawn(lambda i=i: waiter(i))

        def notifier():
            kernel.sleep(20.0)
            with cond:
                cond.notify_all()

        kernel.spawn(notifier)
        kernel.run()
    assert sorted(results) == [(i, True) for i in range(5)]


def test_notified_waiter_not_double_woken_by_timeout():
    """A waiter notified before its timeout must not be woken twice."""
    with SimKernel() as kernel:
        cond = SimCondition(kernel)
        wakes = []

        def waiter():
            with cond:
                ok = cond.wait(timeout=50.0)
            wakes.append((ok, kernel.now()))
            kernel.sleep(200.0)  # if the stale timeout fires it would corrupt this sleep
            wakes.append(("slept", kernel.now()))

        kernel.spawn(waiter)

        def notifier():
            kernel.sleep(10.0)
            with cond:
                cond.notify_all()

        kernel.spawn(notifier)
        kernel.run()
    assert wakes == [(True, 10.0), ("slept", 210.0)]


def test_timed_out_waiter_not_woken_by_later_notify():
    with SimKernel() as kernel:
        cond = SimCondition(kernel)
        log = []

        def waiter():
            with cond:
                ok = cond.wait(timeout=10.0)
            log.append(("timeout", ok, kernel.now()))
            kernel.sleep(100.0)
            log.append(("after", kernel.now()))

        kernel.spawn(waiter)

        def notifier():
            kernel.sleep(50.0)
            with cond:
                cond.notify_all()  # nobody should be waiting now

        kernel.spawn(notifier)
        kernel.run()
    assert log == [("timeout", False, 10.0), ("after", 110.0)]


def test_wait_releases_and_reacquires_lock():
    with SimKernel() as kernel:
        lock = SimLock(kernel)
        cond = SimCondition(kernel, lock)
        log = []

        def waiter():
            with cond:
                log.append("wait-start")
                cond.wait(timeout=100.0)
                log.append("wait-end")

        def other():
            kernel.sleep(5.0)
            with lock:  # must be acquirable while waiter is blocked
                log.append("other-in")
            with cond:
                cond.notify_all()

        kernel.spawn(waiter)
        kernel.spawn(other)
        kernel.run()
    assert log == ["wait-start", "other-in", "wait-end"]


def test_lock_detects_cross_process_misuse():
    with SimKernel() as kernel:
        lock = SimLock(kernel)

        def holder():
            lock.acquire()
            kernel.sleep(100.0)  # blocks while holding — a bug in client code
            lock.release()

        def intruder():
            kernel.sleep(10.0)
            lock.acquire()

        kernel.spawn(holder)
        kernel.spawn(intruder)
        with pytest.raises(SimulationError, match="owned by"):
            kernel.run()


def test_release_unacquired_lock_raises():
    with SimKernel() as kernel:
        lock = SimLock(kernel)

        def proc():
            lock.release()

        kernel.spawn(proc)
        with pytest.raises(SimulationError):
            kernel.run()


def test_reentrant_acquire():
    with SimKernel() as kernel:
        lock = SimLock(kernel)

        def proc():
            with lock:
                with lock:
                    pass
            return "ok"

        p = kernel.spawn(proc)
        kernel.run()
        assert p.result == "ok"


def test_producer_consumer_queue_pattern():
    """The monitor pattern the tuple space relies on."""
    with SimKernel() as kernel:
        cond = SimCondition(kernel)
        queue: list[int] = []
        consumed: list[tuple[int, float]] = []

        def producer():
            for i in range(5):
                kernel.sleep(10.0)
                with cond:
                    queue.append(i)
                    cond.notify_all()

        def consumer():
            for _ in range(5):
                with cond:
                    while not queue:
                        cond.wait()
                    item = queue.pop(0)
                consumed.append((item, kernel.now()))

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run()
    assert consumed == [(i, 10.0 * (i + 1)) for i in range(5)]
