"""Tests for named reproducible RNG streams."""

from __future__ import annotations

import numpy as np

from repro.sim import RandomStreams


def test_same_name_same_draws():
    a = RandomStreams(seed=7).stream("loadgen/node1").random(8)
    b = RandomStreams(seed=7).stream("loadgen/node1").random(8)
    assert np.array_equal(a, b)


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("a").random(8)
    b = streams.stream("b").random(8)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    s1 = RandomStreams(seed=3)
    _ = s1.stream("x").random(4)
    a = s1.stream("y").random(4)

    s2 = RandomStreams(seed=3)
    b = s2.stream("y").random(4)
    assert np.array_equal(a, b)


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("n") is streams.stream("n")


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("n").random(8)
    b = RandomStreams(seed=2).stream("n").random(8)
    assert not np.array_equal(a, b)


def test_fork_independent_of_parent():
    parent = RandomStreams(seed=5)
    child = parent.fork(1)
    a = parent.stream("n").random(8)
    b = child.stream("n").random(8)
    assert not np.array_equal(a, b)
