"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                    "table2", "exp3", "all"):
        args = parser.parse_args([command] if command not in ("exp3",) else [command])
        assert args.command == command


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig7_small_sweep(capsys):
    assert main(["fig7", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Scalability — ray-tracing" in out
    assert "speedups" in out


def test_fig10_with_ascii(capsys):
    assert main(["fig10", "--ascii"]) == 0
    out = capsys.readouterr().out
    assert "signal cycle: start → stop → start → pause → resume" in out
    assert "CPU %" in out


def test_exp3_custom_app_and_workers(capsys):
    assert main(["exp3", "--app", "web-prefetch", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Dynamic worker behaviour — web-prefetch (2 workers)" in out


def test_chaos_fault_spec_parses_comma_lists():
    from repro.cli import _fault_spec
    assert _fault_spec("partition") == ["partition"]
    assert _fault_spec("partition:space, kill-shard:1") == [
        "partition:space", "kill-shard:1"]
    assert _fault_spec("pause:shard:2,gray-slow") == [
        "pause:shard:2", "gray-slow"]


def test_chaos_fault_spec_rejects_malformed_values():
    import argparse
    from repro.cli import _fault_spec
    for bogus in ("bogus", "partition:shard:x", "", ",", "kill-shard:x"):
        with pytest.raises(argparse.ArgumentTypeError):
            _fault_spec(bogus)


def test_chaos_parser_accepts_repeated_and_comma_faults():
    parser = build_parser()
    args = parser.parse_args(
        ["chaos", "--fault", "partition:space,kill-shard:1",
         "--fault", "pause"])
    assert args.faults == ["partition:space", "kill-shard:1", "pause"]


def test_chaos_tenant_count_parses_valid_values():
    from repro.cli import _tenant_count
    assert _tenant_count("2") == 2
    assert _tenant_count("128") == 128


def test_chaos_tenant_count_rejects_malformed_values():
    import argparse
    from repro.cli import _tenant_count
    for bogus in ("0", "1", "-3", "x", "", "2.5"):
        with pytest.raises(argparse.ArgumentTypeError):
            _tenant_count(bogus)


def test_chaos_parser_accepts_tenants():
    parser = build_parser()
    args = parser.parse_args(["chaos", "--tenants", "8", "--isolation"])
    assert args.tenants == 8
    assert args.isolation
    assert parser.parse_args(["chaos"]).tenants is None


def test_chaos_tenants_and_faults_are_exclusive(capsys):
    assert main(["chaos", "--tenants", "4", "--fault", "pause"]) == 2
    assert "separate campaigns" in capsys.readouterr().out


def test_doctor_prints_attribution_summary(capsys):
    assert main(["doctor", "option-pricing", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "job wall time:" in out
    assert "attributed" in out
    assert "compute" in out


def test_doctor_json_and_out_are_machine_readable(tmp_path, capsys):
    import json
    out_path = tmp_path / "doctor.json"
    assert main(["doctor", "option-pricing", "--workers", "2",
                 "--json", "--out", str(out_path)]) == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(out_path.read_text())
    assert printed == written
    wall_ms = printed["window"]["wall_ms"]
    assert abs(sum(p["ms"] for p in printed["phases"]) - wall_ms) <= \
        0.01 * wall_ms


def test_doctor_parser_defaults():
    args = build_parser().parse_args(["doctor", "ray-tracing"])
    assert args.command == "doctor"
    assert args.prefetch == 1 and args.shards == 1 and not args.json


def test_top_json_prints_cluster_snapshot(capsys):
    import json
    assert main(["top", "option-pricing", "--workers", "2", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workers"], "snapshot should list worker rows"
    assert "alerts" in doc and "shards" in doc
    assert doc["job"]["complete"] is True


def test_chaos_parser_accepts_postmortem_dir():
    args = build_parser().parse_args(
        ["chaos", "--postmortem-dir", "bundles"])
    assert args.postmortem_dir == "bundles"
    assert build_parser().parse_args(["chaos"]).postmortem_dir == \
        "postmortems"
