"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                    "table2", "exp3", "all"):
        args = parser.parse_args([command] if command not in ("exp3",) else [command])
        assert args.command == command


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig7_small_sweep(capsys):
    assert main(["fig7", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Scalability — ray-tracing" in out
    assert "speedups" in out


def test_fig10_with_ascii(capsys):
    assert main(["fig10", "--ascii"]) == 0
    out = capsys.readouterr().out
    assert "signal cycle: start → stop → start → pause → resume" in out
    assert "CPU %" in out


def test_exp3_custom_app_and_workers(capsys):
    assert main(["exp3", "--app", "web-prefetch", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Dynamic worker behaviour — web-prefetch (2 workers)" in out


def test_chaos_fault_spec_parses_comma_lists():
    from repro.cli import _fault_spec
    assert _fault_spec("partition") == ["partition"]
    assert _fault_spec("partition:space, kill-shard:1") == [
        "partition:space", "kill-shard:1"]
    assert _fault_spec("pause:shard:2,gray-slow") == [
        "pause:shard:2", "gray-slow"]


def test_chaos_fault_spec_rejects_malformed_values():
    import argparse
    from repro.cli import _fault_spec
    for bogus in ("bogus", "partition:shard:x", "", ",", "kill-shard:x"):
        with pytest.raises(argparse.ArgumentTypeError):
            _fault_spec(bogus)


def test_chaos_parser_accepts_repeated_and_comma_faults():
    parser = build_parser()
    args = parser.parse_args(
        ["chaos", "--fault", "partition:space,kill-shard:1",
         "--fault", "pause"])
    assert args.faults == ["partition:space", "kill-shard:1", "pause"]
