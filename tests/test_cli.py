"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                    "table2", "exp3", "all"):
        args = parser.parse_args([command] if command not in ("exp3",) else [command])
        assert args.command == command


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig7_small_sweep(capsys):
    assert main(["fig7", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Scalability — ray-tracing" in out
    assert "speedups" in out


def test_fig10_with_ascii(capsys):
    assert main(["fig10", "--ascii"]) == 0
    out = capsys.readouterr().out
    assert "signal cycle: start → stop → start → pause → resume" in out
    assert "CPU %" in out


def test_exp3_custom_app_and_workers(capsys):
    assert main(["exp3", "--app", "web-prefetch", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Dynamic worker behaviour — web-prefetch (2 workers)" in out
