"""Consistency-checker unit tests: each conservation law, both ways."""

from __future__ import annotations

from types import SimpleNamespace

from repro.tuplespace.entry import Entry
from repro.verify import check_history
from repro.verify.history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    PENDING,
    REJECTED,
    Op,
)


class TaskEntry(Entry):
    def __init__(self, task_id=None):
        self.task_id = task_id


def _op(op, key_id, status, *, cls="TaskEntry", invoked=0.0, responded=1.0,
        count=1, keyed=True):
    return Op(op=op, entry_class=cls,
              key=(cls, key_id) if keyed else None,
              client="c", invoked_ms=invoked, responded_ms=responded,
              status=status, count=count)


def _history(*ops):
    return SimpleNamespace(ops=list(ops))


def test_clean_write_take_pair_passes():
    report = check_history(_history(
        _op("write", 1, COMMITTED, invoked=0.0),
        _op("take", 1, COMMITTED, invoked=5.0, responded=6.0),
    ), final_entries=[])
    assert report.ok
    assert report.ops == 2 and report.keys == 1
    assert "no consistency violations" in report.summary()


def test_phantom_take_is_a_violation():
    report = check_history(_history(
        _op("take", 1, COMMITTED),
    ), final_entries=[])
    assert not report.ok
    assert "never written or was already taken" in report.violations[0]


def test_double_take_of_single_write_is_a_violation():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("take", 1, COMMITTED),
        _op("take", 1, COMMITTED),
    ), final_entries=[])
    assert not report.ok


def test_indeterminate_write_excuses_the_extra_take():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("write", 1, INDETERMINATE),
        _op("take", 1, COMMITTED),
        _op("take", 1, COMMITTED),
    ), final_entries=[])
    assert report.ok


def test_take_before_any_write_violates_causality():
    report = check_history(_history(
        _op("write", 1, COMMITTED, invoked=10.0, responded=11.0),
        _op("take", 1, COMMITTED, invoked=1.0, responded=2.0),
    ), final_entries=[TaskEntry(1)])
    assert not report.ok
    assert "before any write" in report.violations[0]


def test_lost_committed_write_is_a_violation():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
    ), final_entries=[])
    assert not report.ok
    assert "a committed write was lost" in report.violations[0]


def test_write_surviving_in_final_contents_is_accounted():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
    ), final_entries=[TaskEntry(1)])
    assert report.ok


def test_keyed_indeterminate_take_excuses_a_missing_write():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("take", 1, INDETERMINATE),
    ), final_entries=[])
    assert report.ok


def test_unkeyed_indeterminate_take_grants_per_class_slack():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("take", None, INDETERMINATE, keyed=False, count=1),
    ), final_entries=[])
    assert report.ok
    # ...but the slack is per class and per count: two missing writes
    # against one lost take reply is still a violation.
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("write", 2, COMMITTED),
        _op("take", None, INDETERMINATE, keyed=False, count=1),
    ), final_entries=[])
    assert not report.ok


def test_unknown_cardinality_take_disables_the_class_lost_write_check():
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("write", 2, COMMITTED),
        _op("take", None, INDETERMINATE, keyed=False, count=None),
    ), final_entries=[])
    assert report.ok


def test_pending_ops_fold_into_indeterminate():
    # A client cut down at shutdown leaves PENDING records: a pending
    # take may have consumed the entry (excusing its absence), and a
    # pending write may never have happened (so its absence is fine).
    report = check_history(_history(
        _op("write", 1, COMMITTED),
        _op("take", 1, PENDING, responded=None),
    ), final_entries=[])
    assert report.ok
    report = check_history(_history(
        _op("write", 1, PENDING, responded=None),
    ), final_entries=[])
    assert report.ok


def test_aborted_and_rejected_ops_do_not_count():
    report = check_history(_history(
        _op("write", 1, ABORTED),
        _op("write", 1, REJECTED),
    ), final_entries=[])
    assert report.ok  # neither took effect; nothing to conserve
    report = check_history(_history(
        _op("write", 1, ABORTED),
        _op("take", 1, COMMITTED),
    ), final_entries=[])
    assert not report.ok  # an aborted write cannot feed a committed take


def test_untracked_classes_skip_the_lost_write_check():
    report = check_history(_history(
        _op("write", 1, COMMITTED, cls="Heartbeat"),
    ), final_entries=[], tracked_classes=("TaskEntry",))
    assert report.ok


def test_reads_never_participate():
    report = check_history(_history(
        _op("read", 1, COMMITTED),
    ), final_entries=[])
    assert report.ok


def test_violation_reporting_is_capped():
    ops = [_op("take", i, COMMITTED) for i in range(40)]
    report = check_history(_history(*ops), final_entries=[])
    assert not report.ok
    assert len(report.violations) == 20
    assert report.suppressed == 20
    assert "and 20 more" in report.summary()
