"""RecordingSpace / RecordingTransaction history capture semantics."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionClosedError, FencedError
from repro.tuplespace.entry import Entry
from repro.tuplespace.space import JavaSpace
from repro.verify import HistoryRecorder, RecordingSpace, check_history
from repro.verify.history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    PENDING,
    REJECTED,
    RecordingTransaction,
)
from tests.conftest import run_in_sim


class TaskEntry(Entry):
    def __init__(self, task_id=None, payload=None):
        self.task_id = task_id
        self.payload = payload


def test_in_process_write_take_recorded_committed(rt):
    history = HistoryRecorder(rt)
    space = RecordingSpace(JavaSpace(rt), history, client="w1")

    def proc():
        space.write(TaskEntry(1, "a"))
        got = space.take(TaskEntry(1), timeout_ms=0.0)
        assert got.payload == "a"
        missing = space.take(TaskEntry(9), timeout_ms=0.0)
        assert missing is None

    run_in_sim(rt, proc)
    assert [(op.op, op.status) for op in history.ops] == [
        ("write", COMMITTED), ("take", COMMITTED)]
    assert history.ops[0].key == ("TaskEntry", 1)
    assert history.ops[0].client == "w1"
    assert check_history(history, final_entries=[]).ok


class _FakeTxn:
    """Duck-typed RemoteTransaction: records calls, optionally fails."""

    def __init__(self, commit_error=None):
        self.txn_id = 7
        self.completed = False
        self._commit_error = commit_error

    def commit(self):
        if self._commit_error is not None:
            raise self._commit_error
        self.completed = True

    def abort(self):
        self.completed = True


def _recorded_write(rt, txn):
    history = HistoryRecorder(rt)
    op = history.record("write", TaskEntry(1), "w", 0.0, PENDING)
    txn._buffer(op)
    return history, op


def test_transaction_commit_resolves_buffered_ops(rt):
    txn = RecordingTransaction(_FakeTxn(), HistoryRecorder(rt), "w")
    history, op = _recorded_write(rt, txn)
    txn.commit()
    assert op.status == COMMITTED
    assert op.responded_ms is not None


def test_transaction_abort_resolves_aborted(rt):
    txn = RecordingTransaction(_FakeTxn(), HistoryRecorder(rt), "w")
    history, op = _recorded_write(rt, txn)
    txn.abort()
    assert op.status == ABORTED


def test_fenced_commit_resolves_rejected(rt):
    txn = RecordingTransaction(_FakeTxn(FencedError("stale")),
                               HistoryRecorder(rt), "w")
    history, op = _recorded_write(rt, txn)
    with pytest.raises(FencedError):
        txn.commit()
    assert op.status == REJECTED


def test_lost_commit_resolves_indeterminate_and_sticks(rt):
    txn = RecordingTransaction(_FakeTxn(ConnectionClosedError("gone")),
                               HistoryRecorder(rt), "w")
    history, op = _recorded_write(rt, txn)
    with pytest.raises(ConnectionClosedError):
        txn.commit()
    assert op.status == INDETERMINATE
    # First resolution wins: the cleanup abort that follows a failed
    # commit must not downgrade "maybe happened" to "didn't happen".
    txn.abort()
    assert op.status == INDETERMINATE


def test_completed_setter_resolves_aborted(rt):
    # Worker error paths assign .completed directly after a failed abort.
    txn = RecordingTransaction(_FakeTxn(), HistoryRecorder(rt), "w")
    history, op = _recorded_write(rt, txn)
    txn.completed = True
    assert op.status == ABORTED


def test_client_killed_mid_flight_leaves_pending(rt):
    txn = RecordingTransaction(_FakeTxn(), HistoryRecorder(rt), "w")
    history, op = _recorded_write(rt, txn)
    # Nobody ever resolves the transaction (the worker died): the op
    # stays PENDING, which the checker folds into indeterminate.
    assert op.status == PENDING
    assert check_history(history, final_entries=[]).ok
