"""CPU model: processor sharing, utilization accounting, load reaction."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.node.cpu import CpuModel
from tests.conftest import run_in_sim


def test_unloaded_reference_machine_runs_at_face_value(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        return cpu.execute(1000.0)

    assert run_in_sim(rt, proc) == pytest.approx(1000.0)


def test_slow_machine_scales_by_clock_ratio(rt):
    cpu = CpuModel(rt, speed_mhz=300.0)

    def proc():
        return cpu.execute(300.0)

    # 300 ref-ms on a 300 MHz box = 300 * 800/300 = 800 local ms
    assert run_in_sim(rt, proc) == pytest.approx(800.0)


def test_background_load_stretches_execution(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    cpu.set_background("user", 50.0)

    def proc():
        return cpu.execute(500.0)

    # Only 50 % share available → twice as long.
    assert run_in_sim(rt, proc) == pytest.approx(1000.0)


def test_mid_task_load_change_replans_remaining_work(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    result = {}

    def loader():
        rt.sleep(500.0)
        cpu.set_background("user", 50.0)

    def task():
        result["elapsed"] = cpu.execute(1000.0)

    rt.spawn(loader, name="loader")
    rt.spawn(task, name="task")
    rt.kernel.run()
    # 500 ms at full speed (500 done) + 500 remaining at half speed = 1000.
    assert result["elapsed"] == pytest.approx(1500.0)


def test_full_background_starves_task_until_release(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    cpu.set_background("hog", 100.0)
    result = {}

    def releaser():
        rt.sleep(300.0)
        cpu.clear_background("hog")

    def task():
        result["elapsed"] = cpu.execute(100.0)

    rt.spawn(releaser, name="releaser")
    rt.spawn(task, name="task")
    rt.kernel.run()
    assert result["elapsed"] == pytest.approx(400.0)


def test_partial_demand_runs_proportionally_slower(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        return cpu.execute(100.0, demand_percent=50.0)

    assert run_in_sim(rt, proc) == pytest.approx(200.0)


def test_concurrent_tasks_share_processor_fairly(rt):
    """Two simultaneous foreign tasks each get half the CPU."""
    cpu = CpuModel(rt, speed_mhz=800.0)
    elapsed = {}

    def task(name):
        elapsed[name] = cpu.execute(100.0)

    rt.spawn(lambda: task("a"), name="a")
    rt.spawn(lambda: task("b"), name="b")
    rt.kernel.run()
    # Identical tasks started together: both finish at 200 ms (half rate).
    assert elapsed["a"] == pytest.approx(200.0)
    assert elapsed["b"] == pytest.approx(200.0)


def test_late_joiner_slows_running_task(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    elapsed = {}

    def long_task():
        elapsed["long"] = cpu.execute(200.0)

    def short_task():
        rt.sleep(100.0)
        elapsed["short"] = cpu.execute(50.0)

    rt.spawn(long_task, name="long")
    rt.spawn(short_task, name="short")
    rt.kernel.run()
    # long runs alone for 100 ms (100 done), shares for 100 ms (50 done),
    # short finishes at t=200 having done its 50; long finishes its last
    # 50 alone by t=250.
    assert elapsed["short"] == pytest.approx(100.0)
    assert elapsed["long"] == pytest.approx(250.0)


def test_instantaneous_utilization_views(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    observed = {}

    def observer():
        rt.sleep(50.0)
        observed["during"] = (cpu.total_percent(), cpu.external_percent())

    def task():
        cpu.set_background("user", 30.0)
        cpu.execute(200.0)
        observed["after"] = (cpu.total_percent(), cpu.external_percent())

    rt.spawn(observer, name="observer")
    rt.spawn(task, name="task")
    rt.kernel.run()
    # During: task takes the remaining 70 % → total pinned at 100.
    assert observed["during"] == (100.0, 30.0)
    assert observed["after"] == (30.0, 30.0)


def test_windowed_average_tracks_busy_fraction(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        cpu.execute(250.0)   # busy 0..250 at 100 %
        rt.sleep(750.0)      # idle 250..1000
        return cpu.average_total(window_ms=1000.0)

    assert run_in_sim(rt, proc) == pytest.approx(25.0)


def test_external_average_excludes_foreign_task(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        cpu.set_background("user", 40.0)
        cpu.execute(60.0)  # total goes to 100, external stays 40
        rt.sleep(900.0)
        return cpu.average_external(window_ms=1000.0)

    assert run_in_sim(rt, proc) == pytest.approx(40.0, abs=1.0)


def test_busy_ms_accumulates(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        cpu.execute(100.0)
        cpu.execute(200.0)
        return cpu.busy_ms

    assert run_in_sim(rt, proc) == pytest.approx(300.0)


def test_zero_work_is_instant(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        return cpu.execute(0.0)

    assert run_in_sim(rt, proc) == 0.0


def test_negative_work_rejected(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)

    def proc():
        with pytest.raises(SimulationError):
            cpu.execute(-5.0)
        return True

    assert run_in_sim(rt, proc)


def test_background_clamped_to_valid_range(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    cpu.set_background("a", 150.0)
    assert cpu.background_percent() == 100.0
    cpu.set_background("a", -10.0)
    assert cpu.background_percent() == 0.0


def test_multiple_background_sources_sum(rt):
    cpu = CpuModel(rt, speed_mhz=800.0)
    cpu.set_background("a", 30.0)
    cpu.set_background("b", 25.0)
    assert cpu.background_percent() == 55.0
    cpu.clear_background("a")
    assert cpu.background_percent() == 25.0
