"""Node MIB wiring, load generators, cluster factories."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.node import (
    Cluster,
    LoadScript,
    LoadSimulator1,
    LoadSimulator2,
    Node,
    testbed_large,
    testbed_small,
)
from repro.node.machine import FAST_PC, SLOW_PC
from repro.sim import RandomStreams
from repro.snmp import HOST_RESOURCES, SnmpManager
from tests.conftest import run_in_sim


@pytest.fixture()
def node(rt):
    net = Network(rt)
    return Node(rt, net, "w1", FAST_PC)


def test_mib_reports_static_facts(rt, node):
    mib = node.build_mib()
    assert "800" in mib.get(HOST_RESOURCES.SYS_DESCR)
    assert mib.get(HOST_RESOURCES.SYS_NAME) == "w1"
    assert mib.get(HOST_RESOURCES.HR_MEMORY_SIZE_KB) == 256 * 1024
    assert mib.get(HOST_RESOURCES.HR_PROCESSOR_LOAD) == 0


def test_mib_processor_load_is_live(rt, node):
    mib = node.build_mib()

    def proc():
        node.cpu.set_background("user", 60.0)
        rt.sleep(1000.0)
        return mib.get(HOST_RESOURCES.HR_PROCESSOR_LOAD), mib.get(HOST_RESOURCES.TOTAL_LOAD)

    avg, instant = run_in_sim(rt, proc)
    assert avg == 60
    assert instant == 60


def test_snmp_agent_end_to_end_on_node(rt, node):
    node.start_agent()
    manager = SnmpManager(rt, node.network, "mgr")

    def proc():
        node.cpu.set_background("user", 45.0)
        rt.sleep(1000.0)
        return manager.get_one("w1", HOST_RESOURCES.EXTERNAL_LOAD)

    assert run_in_sim(rt, proc) == 45


def test_load_simulator2_saturates(rt, node):
    sim2 = LoadSimulator2(rt, node)

    def proc():
        sim2.start()
        level = node.cpu.background_percent()
        sim2.stop()
        return level, node.cpu.background_percent()

    assert run_in_sim(rt, proc) == (100.0, 0.0)


def test_load_simulator1_stays_in_band(rt, node):
    sim1 = LoadSimulator1(rt, node, rng=RandomStreams(5).stream("ls1"))
    levels = []

    def proc():
        sim1.start()
        for _ in range(20):
            rt.sleep(100.0)
            levels.append(node.cpu.background_percent())
        sim1.stop()
        rt.sleep(500.0)
        return node.cpu.background_percent()

    final = run_in_sim(rt, proc)
    assert final == 0.0
    assert levels
    assert all(30.0 <= level <= 50.0 for level in levels)


def test_load_simulator1_is_reproducible(rt):
    def trace(seed_rt):
        net = Network(seed_rt)
        node = Node(seed_rt, net, "w", FAST_PC)
        sim = LoadSimulator1(seed_rt, node, rng=RandomStreams(9).stream("ls1"))
        series = []

        def proc():
            sim.start()
            for _ in range(10):
                seed_rt.sleep(100.0)
                series.append(node.cpu.background_percent())
            sim.stop()

        seed_rt.kernel.spawn(proc, name="p")
        seed_rt.kernel.run()
        return series

    from repro.runtime import SimulatedRuntime

    rt1, rt2 = SimulatedRuntime(), SimulatedRuntime()
    try:
        assert trace(rt1) == trace(rt2)
    finally:
        rt1.shutdown()
        rt2.shutdown()


def test_load_script_executes_in_order(rt, node):
    events = []

    def proc():
        script = LoadScript(
            rt,
            [
                (100.0, lambda: events.append(("a", rt.now()))),
                (50.0, lambda: events.append(("b", rt.now()))),
                (200.0, lambda: events.append(("c", rt.now()))),
            ],
        )
        script.start()
        rt.sleep(300.0)
        return script.done

    assert run_in_sim(rt, proc) is True
    assert events == [("b", 50.0), ("a", 100.0), ("c", 200.0)]


def test_testbed_small_shape(rt):
    cluster = testbed_small(rt)
    assert len(cluster.workers) == 5
    assert all(w.spec == FAST_PC for w in cluster.workers)
    assert cluster.master.spec == FAST_PC


def test_testbed_large_shape(rt):
    cluster = testbed_large(rt)
    assert len(cluster.workers) == 13
    assert all(w.spec == SLOW_PC for w in cluster.workers)
    assert cluster.master.spec == FAST_PC  # fast master per the paper


def test_cluster_hostnames_unique_and_lookup(rt):
    cluster = testbed_small(rt, workers=4)
    names = [w.hostname for w in cluster.workers]
    assert len(set(names)) == 4
    assert cluster.worker(names[2]) is cluster.workers[2]
    with pytest.raises(KeyError):
        cluster.worker("nope")


def test_cluster_nodes_share_network(rt):
    cluster = testbed_small(rt, workers=2)
    assert cluster.master.network is cluster.workers[0].network
