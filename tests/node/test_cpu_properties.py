"""Property-based tests on the CPU model (hypothesis).

The core conservation law: however the background load dances, the
elapsed time of a job satisfies ∫ share(t) dt = work, where share(t) is
the CPU fraction the job receives.  We verify it against an independent
reconstruction of the share timeline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.node.cpu import CpuModel
from repro.runtime import SimulatedRuntime

# Schedules of (delay before change, new background level); the job runs
# under this piecewise-constant background.
schedules = st.lists(
    st.tuples(st.floats(10.0, 400.0), st.floats(0.0, 95.0)),
    min_size=0,
    max_size=6,
)


def run_with_schedule(work_ms, schedule, speed=800.0):
    runtime = SimulatedRuntime()
    try:
        cpu = CpuModel(runtime, speed_mhz=speed)
        changes = []  # (time, background level) actually applied

        def loader():
            for delay, level in schedule:
                runtime.sleep(delay)
                changes.append((runtime.now(), level))
                cpu.set_background("bg", level)

        result = {}

        def job():
            result["elapsed"] = cpu.execute(work_ms)
            result["end"] = runtime.now()

        runtime.kernel.spawn(loader, name="loader")
        runtime.kernel.spawn(job, name="job")
        runtime.kernel.run()
        return result["elapsed"], changes
    finally:
        runtime.shutdown()


def integrate_share(elapsed, changes, speed):
    """Reconstruct ∫ share dt over [0, elapsed] from the change log."""
    points = [(0.0, 0.0)] + [(t, lvl) for t, lvl in changes if t < elapsed]
    total = 0.0
    for i, (t, level) in enumerate(points):
        t_next = points[i + 1][0] if i + 1 < len(points) else elapsed
        share = max(0.0, (100.0 - level) / 100.0)
        total += share * (min(t_next, elapsed) - t)
    return total * (speed / 800.0)


@settings(max_examples=30, deadline=None)
@given(work=st.floats(50.0, 2_000.0), schedule=schedules)
def test_work_conservation_under_arbitrary_load(work, schedule):
    elapsed, changes = run_with_schedule(work, schedule)
    done = integrate_share(elapsed, changes, speed=800.0)
    assert done == pytest.approx(work, rel=1e-6, abs=1e-3)


@settings(max_examples=20, deadline=None)
@given(work=st.floats(50.0, 1_000.0), schedule=schedules,
       speed=st.sampled_from([300.0, 800.0, 1600.0]))
def test_speed_scales_inverse_linearly(work, schedule, speed):
    elapsed, changes = run_with_schedule(work, schedule, speed=speed)
    done = integrate_share(elapsed, changes, speed=speed)
    assert done == pytest.approx(work, rel=1e-6, abs=1e-3)


@settings(max_examples=25, deadline=None)
@given(work=st.floats(10.0, 1_000.0), schedule=schedules)
def test_elapsed_at_least_unloaded_duration(work, schedule):
    elapsed, _ = run_with_schedule(work, schedule)
    assert elapsed >= work - 1e-6  # background can only slow things down


@settings(max_examples=25, deadline=None)
@given(schedule=schedules)
def test_utilization_recorder_bounded(schedule):
    """Utilization stays in [0, 100] and external ≤ total everywhere."""
    runtime = SimulatedRuntime()
    try:
        cpu = CpuModel(runtime, speed_mhz=800.0)

        def loader():
            for delay, level in schedule:
                runtime.sleep(delay)
                cpu.set_background("bg", level)

        def job():
            cpu.execute(500.0)

        runtime.kernel.spawn(loader, name="loader")
        runtime.kernel.spawn(job, name="job")
        runtime.kernel.run()
        for t, total, external in cpu.recorder.history():
            assert 0.0 <= external <= total <= 100.0
    finally:
        runtime.shutdown()


@settings(max_examples=15, deadline=None)
@given(
    window=st.floats(100.0, 2_000.0),
    busy=st.floats(10.0, 900.0),
)
def test_windowed_average_matches_busy_fraction(window, busy):
    runtime = SimulatedRuntime()
    try:
        cpu = CpuModel(runtime, speed_mhz=800.0)

        def job():
            cpu.execute(busy)
            runtime.sleep(max(0.0, window - busy))

        runtime.kernel.spawn(job, name="job")
        runtime.kernel.run()
        expected = 100.0 * min(busy, window) / window
        # Query at t = max(window, busy): average over the trailing window.
        assert cpu.average_total(window) == pytest.approx(expected, abs=0.5)
    finally:
        runtime.shutdown()
