"""Node memory model tests."""

from __future__ import annotations

import pytest

from repro.errors import OutOfMemoryError
from repro.node.memory import MemoryModel


def test_allocate_and_free():
    memory = MemoryModel(total_mb=64)
    memory.allocate("classes", 300)
    assert memory.used_kb() == 300
    assert memory.available_kb() == 64 * 1024 - 300
    assert memory.holds("classes")
    memory.free("classes")
    assert memory.used_kb() == 0


def test_over_allocation_raises():
    memory = MemoryModel(total_mb=1)
    with pytest.raises(OutOfMemoryError):
        memory.allocate("huge", 2048)
    assert memory.used_kb() == 0  # failed allocation leaves no residue


def test_reallocation_replaces_not_accumulates():
    memory = MemoryModel(total_mb=1)
    memory.allocate("x", 600)
    memory.allocate("x", 700)  # would overflow if summed
    assert memory.used_kb() == 700


def test_peak_tracking():
    memory = MemoryModel(total_mb=64)
    memory.allocate("a", 1000)
    memory.allocate("b", 500)
    memory.free("a")
    assert memory.peak_kb == 1500
    assert memory.used_kb() == 500


def test_invalid_arguments():
    with pytest.raises(ValueError):
        MemoryModel(total_mb=0)
    memory = MemoryModel(total_mb=1)
    with pytest.raises(ValueError):
        memory.allocate("x", -1)


def test_free_unknown_is_noop():
    MemoryModel(total_mb=1).free("ghost")


def test_slow_pc_master_cannot_host_jini(rt):
    """The paper's deployment constraint, enforced."""
    from repro.core import AdaptiveClusterFramework
    from repro.errors import ConfigurationError
    from repro.node.cluster import Cluster
    from repro.node.machine import SLOW_PC
    from tests.core.toyapp import SumOfSquares

    cluster = Cluster(rt, master_spec=SLOW_PC)  # 64 MB master
    cluster.add_worker(SLOW_PC)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=2))
    with pytest.raises(ConfigurationError, match="cannot host"):
        framework.start()


def test_fast_pc_master_fits_service_stack(rt):
    from repro.core import AdaptiveClusterFramework
    from repro.node.cluster import testbed_small
    from tests.core.toyapp import SumOfSquares

    cluster = testbed_small(rt, workers=1)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=2))

    def experiment():
        framework.start()
        used = cluster.master.memory.used_kb()
        framework.shutdown()
        return used

    proc = rt.kernel.spawn(experiment, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.result >= (48 + 64) * 1024


def test_worker_memory_tracks_class_loading(rt):
    from repro.core import AdaptiveClusterFramework, Signal
    from repro.node.cluster import testbed_small
    from tests.core.toyapp import SumOfSquares

    cluster = testbed_small(rt, workers=1)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=4))
    node = cluster.workers[0]

    def experiment():
        framework.start()
        framework.run()
        loaded = node.memory.holds("worker-classes")
        framework.worker_hosts[0].handle_signal(Signal.STOP)
        rt.sleep(1000.0)
        unloaded = not node.memory.holds("worker-classes")
        framework.shutdown()
        return loaded, unloaded

    proc = rt.kernel.spawn(experiment, name="experiment")
    rt.kernel.run_until_idle()
    if proc.error is not None:
        raise proc.error
    assert proc.result == (True, True)
