"""Threaded-runtime binding: the same stack on real OS threads.

These tests exercise real concurrency (GIL-interleaved threads), so they
catch races the cooperative simulator can never produce.
"""

from __future__ import annotations

import threading

import pytest

from repro.net import Address, Network
from repro.runtime import ThreadedRuntime
from repro.tuplespace import JavaSpace, SpaceProxy, SpaceServer, TransactionManager
from tests.tuplespace.entries import TaskEntry


@pytest.fixture()
def rtt():
    runtime = ThreadedRuntime()
    yield runtime
    runtime.shutdown()


def test_clock_and_sleep(rtt):
    t0 = rtt.now()
    rtt.sleep(20.0)
    assert rtt.now() - t0 >= 18.0  # sleep granularity tolerance


def test_spawn_and_join(rtt):
    results = []
    handle = rtt.spawn(lambda: results.append(42), name="child")
    handle.join(timeout_ms=1_000.0)
    assert results == [42]
    assert not handle.is_alive()


def test_call_later_fires(rtt):
    fired = threading.Event()
    rtt.call_later(10.0, fired.set)
    assert fired.wait(timeout=1.0)


def test_call_later_cancel(rtt):
    fired = threading.Event()
    handle = rtt.call_later(50.0, fired.set)
    handle.cancel()
    assert not fired.wait(timeout=0.15)


def test_condition_wait_notify_across_threads(rtt):
    cond = rtt.condition()
    state = {"ready": False}

    def notifier():
        rtt.sleep(20.0)
        with cond:
            state["ready"] = True
            cond.notify_all()

    rtt.spawn(notifier, name="notifier")
    with cond:
        ok = rtt.wait_for(cond, lambda: state["ready"], timeout_ms=2_000.0)
    assert ok


def test_space_exactly_once_under_real_contention(rtt):
    """4 real consumer threads race for 200 entries: none lost/duplicated."""
    space = JavaSpace(rtt)
    taken: list[int] = []
    taken_lock = threading.Lock()

    def consumer():
        while True:
            entry = space.take(TaskEntry(), timeout_ms=300.0)
            if entry is None:
                return
            with taken_lock:
                taken.append(entry.task_id)

    consumers = [rtt.spawn(consumer, name=f"c{i}") for i in range(4)]

    def producer():
        for i in range(200):
            space.write(TaskEntry("app", i, None))

    producer_handle = rtt.spawn(producer, name="producer")
    producer_handle.join(timeout_ms=5_000.0)
    for handle in consumers:
        handle.join(timeout_ms=5_000.0)

    assert sorted(taken) == list(range(200))


def test_transactions_under_real_threads(rtt):
    space = JavaSpace(rtt)
    txns = TransactionManager(rtt)
    outcome = {}

    def aborter():
        txn = txns.create()
        space.take(TaskEntry(), txn=txn, timeout_ms=1_000.0)
        rtt.sleep(30.0)
        txn.abort()

    def claimer():
        outcome["entry"] = space.take(TaskEntry(), timeout_ms=2_000.0)

    space.write(TaskEntry("app", 7, None))
    a = rtt.spawn(aborter, name="aborter")
    b = rtt.spawn(claimer, name="claimer")
    a.join(timeout_ms=5_000.0)
    b.join(timeout_ms=5_000.0)
    assert outcome["entry"] is not None
    assert outcome["entry"].task_id == 7


def test_remote_space_over_threaded_network(rtt):
    net = Network(rtt)
    space = JavaSpace(rtt)
    SpaceServer(rtt, space, net, Address("master", 4155)).start()
    result = {}

    def client():
        proxy = SpaceProxy(net, "client", Address("master", 4155))
        proxy.write(TaskEntry("app", 1, "over-threads"))
        result["entry"] = proxy.take(TaskEntry(), timeout_ms=2_000.0)
        proxy.close()

    handle = rtt.spawn(client, name="client")
    handle.join(timeout_ms=5_000.0)
    assert result["entry"].payload == "over-threads"


def test_blocking_take_woken_by_other_thread(rtt):
    space = JavaSpace(rtt)
    result = {}

    def taker():
        result["entry"] = space.take(TaskEntry(), timeout_ms=3_000.0)

    handle = rtt.spawn(taker, name="taker")
    rtt.sleep(50.0)
    space.write(TaskEntry("app", 9, None))
    handle.join(timeout_ms=5_000.0)
    assert result["entry"].task_id == 9
