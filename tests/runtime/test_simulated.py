"""SimulatedRuntime binding surface."""

from __future__ import annotations

import pytest

from repro.runtime import SimulatedRuntime


def test_context_manager_shuts_down():
    with SimulatedRuntime() as runtime:
        handle = runtime.spawn(lambda: runtime.sleep(10.0), name="p")
        runtime.run()
        assert not handle.is_alive()
    # After exit, spawning is rejected (kernel shut down).
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        runtime.spawn(lambda: None)


def test_join_blocks_until_process_done(rt):
    order = []

    def worker():
        rt.sleep(100.0)
        order.append("worker")

    def waiter():
        handle = rt.spawn(worker, name="worker")
        handle.join()
        order.append("waiter")
        return rt.now()

    proc = rt.kernel.spawn(waiter, name="waiter")
    rt.kernel.run()
    assert order == ["worker", "waiter"]
    assert proc.result >= 100.0


def test_join_timeout_returns_early(rt):
    def worker():
        rt.sleep(10_000.0)

    def waiter():
        handle = rt.spawn(worker, name="worker")
        handle.join(timeout_ms=50.0)
        return handle.is_alive(), rt.now()

    proc = rt.kernel.spawn(waiter, name="waiter")
    rt.kernel.run(until=200.0)
    alive, t = proc.result
    assert alive
    assert 50.0 <= t <= 60.0


def test_call_later_cancel(rt):
    fired = []

    def proc():
        handle = rt.call_later(50.0, lambda: fired.append("x"))
        rt.sleep(10.0)
        handle.cancel()
        rt.sleep(100.0)
        return list(fired)

    handle = rt.kernel.spawn(proc, name="p")
    rt.kernel.run()
    assert handle.result == []


def test_run_until_is_resumable(rt):
    ticks = []

    def proc():
        for _ in range(4):
            rt.sleep(100.0)
            ticks.append(rt.now())

    rt.kernel.spawn(proc, name="ticker")
    rt.run(until=250.0)
    assert ticks == [100.0, 200.0]
    rt.run()
    assert ticks == [100.0, 200.0, 300.0, 400.0]
