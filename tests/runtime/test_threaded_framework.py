"""Capstone integration: the full adaptive stack on real OS threads.

Everything the simulated experiments exercise — SNMP monitoring, the
rule-base protocol, pause/resume, real computation — but under the wall
clock with genuine thread concurrency.  Time windows are generous to
stay robust on loaded CI machines.
"""

from __future__ import annotations

import time

import pytest

from repro.core import AdaptiveClusterFramework, FrameworkConfig, WorkerState
from repro.core.application import Application, ClassLoadProfile, Task
from repro.node.cluster import Cluster
from repro.node.machine import FAST_PC
from repro.runtime import ThreadedRuntime


class TricklingSum(Application):
    """Cheap tasks with a small real compute so runs last ~a second."""

    app_id = "threaded-sum"

    def __init__(self, n: int = 40) -> None:
        self.n = n

    def plan(self) -> list[Task]:
        return [Task(task_id=i, payload=i) for i in range(self.n)]

    def execute(self, payload):
        time.sleep(0.01)  # 10 ms of real "work"
        return payload * 2

    def aggregate(self, results):
        return sum(results.values())

    def task_cost_ms(self, task: Task) -> float:
        return 0.0

    def planning_cost_ms(self, task: Task) -> float:
        return 0.0

    def aggregation_cost_ms(self, task_id, result) -> float:
        return 0.0

    def classload_profile(self) -> ClassLoadProfile:
        return ClassLoadProfile(0.0, 0.0, 10_000)


@pytest.fixture()
def rtt():
    runtime = ThreadedRuntime()
    yield runtime
    runtime.shutdown()


def build(rtt, workers=3, **config):
    cluster = Cluster(rtt)
    cluster.add_workers(workers, FAST_PC)
    framework = AdaptiveClusterFramework(
        rtt, cluster, TricklingSum(),
        FrameworkConfig(poll_interval_ms=100.0, worker_poll_ms=30.0, **config),
    )
    return cluster, framework


def test_monitored_run_on_real_threads(rtt):
    cluster, framework = build(rtt)
    framework.start()
    report = framework.run()
    framework.shutdown()
    assert report.solution == sum(i * 2 for i in range(40))
    # Monitoring really recruited the workers (no manual start).
    starts = [e for e in framework.metrics.events_named("signal-sent")
              if e[1]["signal"] == "start"]
    assert len(starts) >= 1
    assert sum(report.results_by_worker.values()) == 40


def test_pause_resume_under_real_load_signal(rtt):
    cluster, framework = build(rtt, workers=1)
    node = cluster.workers[0]
    framework.start()

    runner = rtt.spawn(framework.run, name="master-run")
    deadline = time.monotonic() + 5.0
    host = framework.worker_hosts[0]
    while host.state != WorkerState.RUNNING and time.monotonic() < deadline:
        time.sleep(0.02)
    assert host.state == WorkerState.RUNNING

    # Raise "user" load into the pause band; the poll loop must react.
    node.cpu.set_background("user", 40.0)
    deadline = time.monotonic() + 5.0
    while host.state != WorkerState.PAUSED and time.monotonic() < deadline:
        time.sleep(0.02)
    assert host.state == WorkerState.PAUSED

    node.cpu.clear_background("user")
    deadline = time.monotonic() + 5.0
    while host.state != WorkerState.RUNNING and time.monotonic() < deadline:
        time.sleep(0.02)
    assert host.state == WorkerState.RUNNING

    runner.join(timeout_ms=20_000.0)
    # The master can consume the final result a hair before the worker
    # bumps its counter; give it a beat.
    deadline = time.monotonic() + 2.0
    while host.tasks_done < 40 and time.monotonic() < deadline:
        time.sleep(0.02)
    framework.shutdown()
    assert host.tasks_done == 40


def test_transactional_crash_recovery_on_real_threads(rtt):
    cluster, framework = build(rtt, transactional_takes=True)
    framework.start()

    def killer():
        time.sleep(0.15)  # mid-run
        framework.worker_hosts[0].crash()

    rtt.spawn(killer, name="killer")
    report = framework.run()
    framework.shutdown()
    assert report.solution == sum(i * 2 for i in range(40))
