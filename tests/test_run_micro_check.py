"""The BENCH_micro regression gate must not skip silently.

Loaded straight from ``benchmarks/run_micro.py`` (it is a script, not a
package module) so the gate logic is tested without running workloads.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "run_micro", Path(__file__).resolve().parent.parent
    / "benchmarks" / "run_micro.py")
run_micro = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(run_micro)


def test_check_passes_at_or_above_floor():
    committed = {"a_per_s": 100.0, "b_per_s": 50.0}
    current = {"a_per_s": 100.0 * run_micro.CHECK_FLOOR, "b_per_s": 60.0}
    assert run_micro.check_against(committed, current) == []


def test_check_flags_a_regression():
    committed = {"a_per_s": 100.0}
    current = {"a_per_s": 100.0 * run_micro.CHECK_FLOOR - 1.0}
    failures = run_micro.check_against(committed, current)
    assert len(failures) == 1 and "a_per_s" in failures[0]


def test_check_fails_when_a_committed_metric_is_missing():
    """A dropped or renamed workload must not retire its own gate."""
    committed = {"a_per_s": 100.0, "gone_per_s": 10.0}
    current = {"a_per_s": 120.0}
    failures = run_micro.check_against(committed, current)
    assert len(failures) == 1
    assert "gone_per_s" in failures[0] and "missing" in failures[0]


def test_check_ignores_non_throughput_and_empty_references():
    committed = {"wakeups_per_write": 16.0, "zero_per_s": 0.0}
    assert run_micro.check_against(committed, {}) == []


def test_check_enforces_shard_speedup_floor():
    committed = {}
    current = {"e2e_sharded_1shard_tasks_per_s": 100.0,
               "e2e_sharded_tasks_per_s":
                   100.0 * run_micro.SHARD_SPEEDUP_FLOOR - 1.0}
    failures = run_micro.check_against(committed, current)
    assert len(failures) == 1 and "e2e_sharded_tasks_per_s" in failures[0]
    current["e2e_sharded_tasks_per_s"] = \
        100.0 * run_micro.SHARD_SPEEDUP_FLOOR
    assert run_micro.check_against(committed, current) == []


def test_check_enforces_jain_fairness_floor():
    current = {"contention_jain_index": run_micro.JAIN_FAIRNESS_FLOOR - 0.01}
    failures = run_micro.check_against({}, current)
    assert len(failures) == 1 and "contention_jain_index" in failures[0]
    current["contention_jain_index"] = run_micro.JAIN_FAIRNESS_FLOOR
    assert run_micro.check_against({}, current) == []


def test_check_enforces_victim_p99_ceiling():
    committed = {"contention_victim_p99_gap_ms": 100.0}
    current = {"contention_victim_p99_gap_ms":
                   100.0 * run_micro.CONTENTION_P99_CEIL + 1.0}
    failures = run_micro.check_against(committed, current)
    assert len(failures) == 1 and "p99" in failures[0]
    # Lower is better: shrinking gaps never fail, and a p99 of 0 in the
    # committed file (tiny smoke runs) disables the ceiling rather than
    # dividing by zero.
    current["contention_victim_p99_gap_ms"] = 50.0
    assert run_micro.check_against(committed, current) == []
    assert run_micro.check_against(
        {"contention_victim_p99_gap_ms": 0.0}, current) == []


def test_check_enforces_baseline_floor_against_ratcheting():
    """A regression that ships its own lowered committed reference must
    still trip the frozen-baseline floor (the ratchet-down loophole)."""
    baseline = {"a_per_s": 100.0}
    committed = {"a_per_s": 70.0}  # the regressing PR re-recorded this
    current = {"a_per_s": 70.0}    # 1.0x of committed, 0.7x of baseline
    failures = run_micro.check_against(committed, current, baseline)
    assert len(failures) == 1
    assert "baseline" in failures[0] and "ratchet" in failures[0]
    current = {"a_per_s": 100.0 * run_micro.BASELINE_FLOOR}
    committed = dict(current)
    assert run_micro.check_against(committed, current, baseline) == []


def test_baseline_floor_overrides_apply_per_metric():
    key = "e2e_pipelined_tasks_per_s"
    floor = run_micro.BASELINE_FLOOR_OVERRIDES[key]
    assert floor < run_micro.BASELINE_FLOOR
    baseline = {key: 100.0}
    current = {key: 100.0 * floor}
    assert run_micro.check_against(dict(current), current, baseline) == []
    current = {key: 100.0 * floor - 1.0}
    failures = run_micro.check_against(dict(current), current, baseline)
    assert len(failures) == 1 and key in failures[0]


def test_check_enforces_absolute_floors():
    key, floor = next(iter(run_micro.ABS_FLOORS.items()))
    current = {key: floor - 1.0}
    # Committed at the same value: relative floors pass, absolute trips.
    failures = run_micro.check_against(dict(current), current)
    assert len(failures) == 1 and "absolute floor" in failures[0]
    current = {key: floor}
    assert run_micro.check_against(dict(current), current) == []


def test_check_enforces_wire_cost_ceilings():
    key = run_micro.WIRE_CELLS[0]
    committed = {key: 8.0}
    current = {key: 8.0 * run_micro.WIRE_CEIL + 0.1}
    failures = run_micro.check_against(committed, current)
    assert len(failures) == 1 and "wire" in failures[0]
    # Lower is better; shrinking traffic never fails.
    current = {key: 6.0}
    assert run_micro.check_against(committed, current) == []
