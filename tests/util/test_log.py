"""Logging wiring tests."""

from __future__ import annotations

import io
import logging

import pytest

from repro.util.log import configure, get_logger


def test_loggers_namespaced_under_repro():
    assert get_logger("worker").name == "repro.worker"
    assert get_logger("netmgmt").name == "repro.netmgmt"


def test_configure_is_idempotent():
    root = logging.getLogger("repro")
    before = list(root.handlers)
    try:
        configure(force=True)
        once = len(root.handlers)
        configure()
        assert len(root.handlers) == once
    finally:
        root.handlers = before


def test_configured_stream_receives_component_logs():
    stream = io.StringIO()
    root = logging.getLogger("repro")
    before = list(root.handlers)
    try:
        configure(level=logging.INFO, stream=stream, force=True)
        get_logger("worker").info("hello from %s", "w1")
        assert "repro.worker" in stream.getvalue()
        assert "hello from w1" in stream.getvalue()
    finally:
        root.handlers = before


def test_framework_signals_logged(rt, caplog):
    from repro.core import AdaptiveClusterFramework
    from repro.node import testbed_small
    from tests.core.toyapp import SumOfSquares

    cluster = testbed_small(rt, workers=1)
    framework = AdaptiveClusterFramework(rt, cluster, SumOfSquares(n=2))

    with caplog.at_level(logging.INFO, logger="repro"):
        def experiment():
            framework.start()
            framework.run()
            framework.shutdown()

        proc = rt.kernel.spawn(experiment, name="experiment")
        rt.kernel.run_until_idle()
        if proc.error is not None:
            raise proc.error

    messages = [r.message for r in caplog.records]
    assert any("-> Signal.START" in m or "start" in m.lower() for m in messages)
    assert any("stopped --" in m or "--start-->" in m.replace(" ", "")
               or "running" in m for m in messages)
