"""Utility module tests: ids, serialization."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import EntryError
from repro.util import IdGenerator, check_serializable, serialized_size, uuid_hex
from repro.util.serialization import deserialize, serialize


def test_id_generator_monotonic_and_prefixed():
    gen = IdGenerator("task")
    assert gen.next() == "task-1"
    assert gen.next() == "task-2"
    assert gen.next_int() == 3


def test_id_generator_thread_safe():
    gen = IdGenerator()
    seen: list[str] = []

    def grab():
        for _ in range(200):
            seen.append(gen.next())

    threads = [threading.Thread(target=grab) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(seen) == len(set(seen)) == 800


def test_uuid_hex_unique():
    assert uuid_hex() != uuid_hex()
    assert len(uuid_hex()) == 32


def test_serialize_round_trip():
    payload = {"a": [1, 2, 3], "b": np.arange(4)}
    out = deserialize(serialize(payload))
    assert out["a"] == [1, 2, 3]
    assert np.array_equal(out["b"], np.arange(4))


def test_serialized_size_grows_with_content():
    small = serialized_size([0])
    large = serialized_size(list(range(1000)))
    assert large > small


def test_unserializable_raises_entry_error():
    with pytest.raises(EntryError, match="not serializable"):
        check_serializable(lambda: None)
    with pytest.raises(EntryError):
        serialize(threading.Lock())


def test_deserialize_garbage_raises():
    with pytest.raises(EntryError):
        deserialize(b"not a pickle")
