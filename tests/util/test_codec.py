"""Compact entry codec: round-trip, canonicality, and pickle interop.

The codec's contract has three legs the space hot path leans on:

- *total*: every picklable entry round-trips (compact frame when the
  class is registered and the instance matches its schema, pickle
  fallback otherwise);
- *canonical*: the same entry value encodes to the same bytes, in this
  process and in any other (the determinism checker compares frames);
- *interoperable*: ``decode_any`` reads both codecs by first-byte
  dispatch, so stores that switch codecs keep reading their old bytes.
"""

from __future__ import annotations

import struct
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EntryError
from repro.util.codec import (
    MAGIC,
    decode_any,
    encode_entry,
    is_compact,
    peek_class,
    register_entry,
    registered_fields,
    schema_fingerprint,
)
from repro.util.serialization import serialize
from tests.tuplespace.entries import PriorityTask, ResultEntry, TaskEntry

# Scalars the inline fast paths cover, plus the shapes that take the
# pickle value tag (containers) and the big-int escape.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2 ** 70), 2 ** 70),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
payloads = st.one_of(
    scalars,
    st.lists(scalars, max_size=4),
    st.tuples(scalars, scalars),
    st.dictionaries(st.text(max_size=5), scalars, max_size=4),
)
entries = st.builds(
    TaskEntry,
    app=st.one_of(st.none(), st.text(max_size=10)),
    task_id=st.one_of(st.none(), st.integers(-(2 ** 70), 2 ** 70)),
    payload=payloads,
)


@given(entry=entries)
def test_round_trip_preserves_every_field(entry):
    decoded = decode_any(encode_entry(entry))
    assert type(decoded) is TaskEntry
    assert decoded.__dict__ == entry.__dict__


@given(entry=entries)
def test_registered_entries_use_compact_frames(entry):
    assert is_compact(encode_entry(entry))


@given(entry=entries)
def test_encoding_is_canonical(entry):
    clone = TaskEntry(entry.app, entry.task_id, entry.payload)
    assert encode_entry(entry) == encode_entry(clone)


@given(entry=entries)
@settings(max_examples=25)
def test_pickle_frames_decode_to_the_same_value(entry):
    # decode_any must accept the reference codec's bytes unchanged.
    decoded = decode_any(serialize(entry))
    assert decoded.__dict__ == entry.__dict__


def test_canonical_bytes_stable_across_process_runs():
    """The cross-process leg of the determinism contract.

    A child interpreter (fresh registration order, fresh hash seed)
    must produce byte-identical frames for the same entry values.
    """
    script = (
        "import sys; sys.path[:0] = %r\n"
        "from repro.util.codec import encode_entry\n"
        "from tests.tuplespace.entries import PriorityTask, TaskEntry\n"
        "for e in (TaskEntry('app7', 42, {'k': [1, 2.5, None]}),\n"
        "          TaskEntry(), PriorityTask('a', 1, (b'x',), 3)):\n"
        "    print(encode_entry(e).hex())\n"
    ) % (sys.path,)
    out = subprocess.run([sys.executable, "-c", script],
                         capture_output=True, text=True, check=True)
    local = [encode_entry(e).hex() for e in
             (TaskEntry("app7", 42, {"k": [1, 2.5, None]}),
              TaskEntry(), PriorityTask("a", 1, (b"x",), 3))]
    assert out.stdout.split() == local


class _Loose:
    """Module-level (picklable) but never registered with the codec."""

    def __init__(self):
        self.x = 1


def test_unregistered_class_falls_back_to_pickle():
    data = encode_entry(_Loose())
    assert not is_compact(data)
    assert decode_any(data).x == 1


def test_schema_drifted_instance_falls_back_to_pickle():
    entry = TaskEntry("a", 1, None)
    entry.extra = "grew a field"
    data = encode_entry(entry)
    assert not is_compact(data)
    decoded = decode_any(data)
    assert decoded.extra == "grew a field"


def test_subclass_has_its_own_schema():
    # PriorityTask extends TaskEntry by one field; frames must not be
    # confusable even though the shared prefix matches.
    task = decode_any(encode_entry(TaskEntry("a", 1, None)))
    prio = decode_any(encode_entry(PriorityTask("a", 1, None, 7)))
    assert type(task) is TaskEntry
    assert type(prio) is PriorityTask
    assert prio.priority == 7


def test_peek_class_reads_the_header_only():
    assert peek_class(encode_entry(TaskEntry("a", 1, None))) is TaskEntry
    assert peek_class(serialize(TaskEntry("a", 1, None))) is None


def test_unregistered_fingerprint_raises():
    bogus = bytes([MAGIC]) + struct.pack("<I", 0xDEADBEEF)
    with pytest.raises(EntryError):
        decode_any(bogus)
    with pytest.raises(EntryError):
        peek_class(bogus)


def test_corrupt_value_tag_raises():
    frame = bytearray(encode_entry(TaskEntry("a", 1, None)))
    frame[5] = 0x7A  # 'z' — not a value tag
    with pytest.raises(EntryError):
        decode_any(bytes(frame))


def test_empty_payload_raises():
    with pytest.raises(EntryError):
        decode_any(b"")


def test_fingerprint_is_a_pure_function_of_class_and_fields():
    fp = schema_fingerprint(TaskEntry, ("app", "task_id", "payload"))
    assert fp == schema_fingerprint(TaskEntry, ("app", "task_id", "payload"))
    assert fp != schema_fingerprint(TaskEntry, ("task_id", "app", "payload"))
    assert registered_fields(TaskEntry) == ("app", "task_id", "payload")
    assert registered_fields(dict) is None


def test_register_derives_schema_from_init_parameters():
    class Fresh:
        def __init__(self, a=None, b=None):
            self.a = a
            self.b = b

    register_entry(Fresh)
    assert registered_fields(Fresh) == ("a", "b")
    decoded = decode_any(encode_entry(Fresh(1, "x")))
    assert (decoded.a, decoded.b) == (1, "x")


def test_legacy_structural_container_tags_still_decode():
    """Earlier builds emitted l/t/d tags for containers; the current
    encoder pickles them, but old frames must keep decoding."""
    fp = schema_fingerprint(TaskEntry, ("app", "task_id", "payload"))
    header = bytes([MAGIC]) + struct.pack("<I", fp)
    value = (b"l" + struct.pack("<I", 2) +
             b"i" + struct.pack("<q", 1) +
             b"i" + struct.pack("<q", 2))
    legacy = (header + b"N" + b"N" + value)
    assert decode_any(legacy).payload == [1, 2]
    tup = header + b"N" + b"N" + (b"t" + struct.pack("<I", 1) + b"N")
    assert decode_any(tup).payload == (None,)
    d = (b"d" + struct.pack("<I", 1) +
         b"s" + struct.pack("<I", 1) + b"k" +
         b"i" + struct.pack("<q", 9))
    assert decode_any(header + b"N" + b"N" + d).payload == {"k": 9}


def test_memoryview_input_decodes():
    entry = TaskEntry("app", 3, [1, 2])
    assert decode_any(memoryview(encode_entry(entry))).__dict__ == \
        entry.__dict__
