"""Experiment 2 harness: the Figs 9–11 signal cycle and reaction times."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    adaptation_experiment,
    make_options_app,
    make_prefetch_app,
    make_raytrace_app,
    options_cluster,
    prefetch_cluster,
    raytrace_cluster,
)

APPS = {
    "option-pricing": (make_options_app, options_cluster),
    "ray-tracing": (make_raytrace_app, raytrace_cluster),
    "web-prefetch": (make_prefetch_app, prefetch_cluster),
}


@pytest.fixture(scope="module")
def results():
    return {
        name: adaptation_experiment(factory, cluster)
        for name, (factory, cluster) in APPS.items()
    }


@pytest.mark.parametrize("name", list(APPS))
def test_signal_sequence_matches_figures(results, name):
    """Start → Stop → Start → Pause → Resume, for every application."""
    assert results[name].signals_in_order == [
        "start", "stop", "start", "pause", "resume",
    ]


@pytest.mark.parametrize("name", list(APPS))
def test_class_loaded_twice_but_not_on_resume(results, name):
    """Stop forces a class reload on the next Start; Resume does not —
    "bypassing the overhead associated with remote node configuration"."""
    assert results[name].class_loads == 2


@pytest.mark.parametrize("name", list(APPS))
def test_client_signal_latency_is_network_scale(results, name):
    for reaction in results[name].reactions:
        assert 0.0 < reaction.client_ms < 10.0


@pytest.mark.parametrize("name", list(APPS))
def test_resume_is_cheapest_reaction(results, name):
    """Resume needs no class reload and no task drain: near-instant."""
    result = results[name]
    resume = result.reaction_for("resume")
    start = result.reaction_for("start")
    assert resume.worker_ms < 10.0
    assert resume.worker_ms < start.worker_ms


@pytest.mark.parametrize("name", list(APPS))
def test_start_reaction_includes_class_loading(results, name):
    start = results[name].reaction_for("start")
    assert start.worker_ms > 500.0  # download + load spike


@pytest.mark.parametrize("name", list(APPS))
def test_stop_waits_for_current_task(results, name):
    """"The shutdown mechanism ensures that the currently executing task
    completes and its results are written into the space"."""
    stop = results[name].reaction_for("stop")
    assert not math.isnan(stop.worker_ms)
    assert stop.worker_ms > 0.0


@pytest.mark.parametrize("name", list(APPS))
def test_loadsim2_saturates_cpu_history(results, name):
    assert results[name].peak_cpu(9_000.0, 16_000.0) == 100.0


@pytest.mark.parametrize("name", list(APPS))
def test_paused_worker_leaves_only_background_load(results, name):
    """After the Pause takes effect, total CPU = load simulator 1's 30–50 %."""
    result = results[name]
    pause = result.reaction_for("pause")
    settle = pause.at_ms + pause.worker_ms + 200.0
    window_levels = [
        total for t, total, _ in result.cpu_history if settle <= t <= 33_500.0
    ]
    assert window_levels, "no samples in the paused window"
    assert all(level <= 55.0 for level in window_levels)


def test_classload_spike_heights_differ_by_application(results):
    """Figs 9–11(a): options spikes ~80 %, ray tracing ~42 %, prefetch ~75 %."""
    def spike(name):
        result = results[name]
        start = result.reaction_for("start", occurrence=0)
        # Window = class-loading portion of the first start.
        return result.peak_cpu(start.at_ms, start.at_ms + start.worker_ms - 1.0)

    assert spike("option-pricing") == pytest.approx(80.0, abs=3.0)
    assert spike("ray-tracing") == pytest.approx(42.0, abs=3.0)
    assert spike("web-prefetch") == pytest.approx(75.0, abs=3.0)


def test_compute_drives_cpu_to_full_while_running(results):
    """The 78–100 % compute spikes of Fig. 10(a)."""
    result = results["ray-tracing"]
    # Between first start settling and loadsim2: worker computing tasks.
    assert result.peak_cpu(4_000.0, 7_900.0) == 100.0


def test_reaction_table_formats(results):
    table = results["option-pricing"].format_table()
    assert "signal" in table and "client" in table and "start" in table
