"""Intrusiveness experiment unit tests."""

from __future__ import annotations

import pytest

from repro.experiments import make_raytrace_app, raytrace_cluster
from repro.experiments.intrusiveness import (
    intrusiveness_experiment,
    stolen_cpu_ms,
)


def test_stolen_cpu_integrates_step_function():
    history = [
        (0.0, 0.0, 0.0),       # idle
        (100.0, 100.0, 40.0),  # user 40 %, worker takes the remaining 60 %
        (200.0, 40.0, 40.0),   # worker paused: only user load
    ]
    # Window [100, 300]: 100 ms at 60 % foreign + 100 ms at 0 % = 60 ms.
    assert stolen_cpu_ms(history, 100.0, 300.0) == pytest.approx(60.0)


def test_stolen_cpu_partial_overlap():
    history = [(0.0, 100.0, 0.0)]  # foreign pegged at 100 % forever
    assert stolen_cpu_ms(history, 50.0, 150.0) == pytest.approx(100.0)


def test_stolen_cpu_empty_window():
    assert stolen_cpu_ms([(0.0, 100.0, 0.0)], 100.0, 100.0) == 0.0


@pytest.fixture(scope="module")
def results():
    return (
        intrusiveness_experiment(make_raytrace_app, raytrace_cluster,
                                 monitoring=True),
        intrusiveness_experiment(make_raytrace_app, raytrace_cluster,
                                 monitoring=False),
    )


def test_monitoring_reduces_stolen_share(results):
    managed, unmanaged = results
    assert managed.stolen_share < unmanaged.stolen_share / 2


def test_both_modes_get_work_done(results):
    managed, unmanaged = results
    assert managed.tasks_done > 0
    assert unmanaged.tasks_done >= managed.tasks_done


def test_shares_are_sane(results):
    for result in results:
        assert 0.0 <= result.stolen_share <= 1.0
        assert result.window_ms == 20_000.0
