"""Full-evaluation report assembly."""

from __future__ import annotations

import pytest

from repro.experiments.report import EvaluationReport, run_full_evaluation


@pytest.fixture(scope="module")
def quick_report():
    progress: list[str] = []
    report = run_full_evaluation(
        scalability=False, dynamics=False, progress=progress.append
    )
    return report, progress


def test_quick_report_has_adaptation_and_table2(quick_report):
    report, _ = quick_report
    assert set(report.adaptation) == {"option-pricing", "ray-tracing",
                                      "web-prefetch"}
    assert len(report.classification) == 3
    assert report.scalability == {}
    assert report.dynamics == {}


def test_progress_callback_narrates_stages(quick_report):
    _, progress = quick_report
    assert any("adaptation" in msg for msg in progress)
    assert any("Table 2" in msg for msg in progress)


def test_render_mentions_each_figure(quick_report):
    report, _ = quick_report
    text = report.render()
    for fragment in ("Figure 9(b)", "Figure 10(b)", "Figure 11(b)",
                     "Table 2", "signal cycle"):
        assert fragment in text


def test_empty_report_renders_empty():
    assert EvaluationReport().render() == ""
