"""Experiment 1 harness: the figures' qualitative shapes must hold.

These are the reproduction's acceptance tests — each assertion encodes a
claim the paper makes about Figs 6, 7 and 8.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    make_options_app,
    make_prefetch_app,
    make_raytrace_app,
    options_cluster,
    prefetch_cluster,
    raytrace_cluster,
    scalability_experiment,
)


@pytest.fixture(scope="module")
def options_sweep():
    return scalability_experiment(make_options_app, options_cluster,
                                  [1, 2, 4, 8, 13])


@pytest.fixture(scope="module")
def raytrace_sweep():
    return scalability_experiment(make_raytrace_app, raytrace_cluster,
                                  [1, 2, 3, 4, 5])


@pytest.fixture(scope="module")
def prefetch_sweep():
    return scalability_experiment(make_prefetch_app, prefetch_cluster,
                                  [1, 2, 3, 4, 5])


# -- Fig. 6: option pricing -------------------------------------------------------


def test_fig6_initial_speedup_up_to_four_workers(options_sweep):
    speedups = dict(options_sweep.speedups())
    assert speedups[2] > 1.7
    assert speedups[4] > 3.0


def test_fig6_speedup_deteriorates_beyond_four(options_sweep):
    """"As the number of workers increase beyond 4, the amount of work is
    no longer sufficient to keep the workers busy"."""
    speedups = dict(options_sweep.speedups())
    assert speedups[13] < speedups[4] * 1.15  # no further meaningful gain


def test_fig6_planning_dominates_parallel_time_at_high_worker_counts(options_sweep):
    last = options_sweep.rows[-1]
    assert last.planning_ms > 0.8 * last.parallel_ms


def test_fig6_parallel_time_follows_max_worker_time_up_to_four(options_sweep):
    for row in options_sweep.rows:
        if row.workers <= 4:
            assert row.parallel_ms == pytest.approx(row.max_worker_ms, rel=0.25)


# -- Fig. 7: ray tracing -----------------------------------------------------------


def test_fig7_max_worker_time_scales_nearly_linearly(raytrace_sweep):
    rows = {r.workers: r for r in raytrace_sweep.rows}
    for n in (2, 3, 4, 5):
        ideal = rows[1].max_worker_ms / n
        assert rows[n].max_worker_ms == pytest.approx(ideal, rel=0.20)


def test_fig7_planning_time_constant_about_500ms(raytrace_sweep):
    plannings = [r.planning_ms for r in raytrace_sweep.rows]
    assert max(plannings) - min(plannings) < 50.0
    assert 300.0 <= plannings[0] <= 700.0  # "constant at 500 ms"


def test_fig7_parallel_time_dominated_by_max_worker_time(raytrace_sweep):
    for row in raytrace_sweep.rows:
        assert row.max_worker_ms > 0.75 * row.parallel_ms


def test_fig7_aggregation_follows_max_worker_time(raytrace_sweep):
    for row in raytrace_sweep.rows:
        assert row.aggregation_ms == pytest.approx(row.max_worker_ms, rel=0.35)


def test_fig7_good_overall_scalability(raytrace_sweep):
    speedups = dict(raytrace_sweep.speedups())
    assert speedups[5] > 3.5  # near-linear for 5 workers


# -- Fig. 8: web page pre-fetching ----------------------------------------------------


def test_fig8_scales_up_to_four_workers(prefetch_sweep):
    speedups = dict(prefetch_sweep.speedups())
    assert speedups[4] > 2.5
    # Adding the 5th worker buys (almost) nothing.
    assert speedups[5] == pytest.approx(speedups[4], rel=0.10)


def test_fig8_low_task_planning_overhead(prefetch_sweep):
    for row in prefetch_sweep.rows:
        assert row.planning_ms < 0.05 * row.parallel_ms


def test_fig8_aggregation_dominates_parallel_time(prefetch_sweep):
    last = prefetch_sweep.rows[-1]
    assert last.aggregation_ms > 0.8 * last.parallel_ms


# -- cross-cutting sanity ----------------------------------------------------------------


def test_tables_format(options_sweep, raytrace_sweep, prefetch_sweep):
    for sweep in (options_sweep, raytrace_sweep, prefetch_sweep):
        table = sweep.format_table()
        assert "workers" in table
        assert str(sweep.rows[0].workers) in table


def test_sweeps_are_deterministic():
    a = scalability_experiment(make_prefetch_app, prefetch_cluster, [2])
    b = scalability_experiment(make_prefetch_app, prefetch_cluster, [2])
    assert a.rows == b.rows


def test_parallel_time_decomposes_into_phases(raytrace_sweep):
    for row in raytrace_sweep.rows:
        assert row.parallel_ms == pytest.approx(
            row.planning_ms + row.aggregation_ms, rel=1e-6
        )
