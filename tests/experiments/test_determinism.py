"""Reproducibility: identical runs produce bit-identical measurements.

The whole experimental methodology rests on this — virtual time plus
seeded randomness means every figure regenerates exactly.
"""

from __future__ import annotations

from repro.experiments import (
    adaptation_experiment,
    dynamics_experiment,
    make_raytrace_app,
    raytrace_cluster,
    scalability_experiment,
)


def test_scalability_rows_bit_identical():
    a = scalability_experiment(make_raytrace_app, raytrace_cluster, [1, 3])
    b = scalability_experiment(make_raytrace_app, raytrace_cluster, [1, 3])
    assert a.rows == b.rows


def test_adaptation_fully_deterministic():
    a = adaptation_experiment(make_raytrace_app, raytrace_cluster)
    b = adaptation_experiment(make_raytrace_app, raytrace_cluster)
    assert a.signals_in_order == b.signals_in_order
    assert a.reactions == b.reactions
    assert a.cpu_history == b.cpu_history
    assert a.snmp_polls == b.snmp_polls


def test_dynamics_deterministic():
    a = dynamics_experiment(make_raytrace_app, raytrace_cluster, workers=3,
                            loaded_fractions=(0.0, 0.5))
    b = dynamics_experiment(make_raytrace_app, raytrace_cluster, workers=3,
                            loaded_fractions=(0.0, 0.5))
    assert a.rows == b.rows


def test_different_seeds_change_stochastic_details_only():
    """Seeds perturb load-sim jitter, not the structural outcome."""
    a = adaptation_experiment(make_raytrace_app, raytrace_cluster, seed=1)
    b = adaptation_experiment(make_raytrace_app, raytrace_cluster, seed=2)
    assert a.signals_in_order == b.signals_in_order == [
        "start", "stop", "start", "pause", "resume",
    ]
    assert a.class_loads == b.class_loads == 2
