"""Experiment 3 harness: behaviour with 0 %/25 %/50 % of workers loaded."""

from __future__ import annotations

import pytest

from repro.experiments import (
    dynamics_experiment,
    make_prefetch_app,
    make_raytrace_app,
    prefetch_cluster,
    raytrace_cluster,
)


@pytest.fixture(scope="module")
def raytrace_dynamics():
    return dynamics_experiment(make_raytrace_app, raytrace_cluster, workers=4)


def test_three_load_conditions(raytrace_dynamics):
    assert [r.loaded_fraction for r in raytrace_dynamics.rows] == [0.0, 0.25, 0.5]
    assert [r.loaded_workers for r in raytrace_dynamics.rows] == [0, 1, 2]


def test_parallel_time_grows_as_workers_are_lost(raytrace_dynamics):
    times = [r.total_parallel_ms for r in raytrace_dynamics.rows]
    assert times[0] < times[1] < times[2]


def test_master_overhead_constant_across_load_conditions(raytrace_dynamics):
    """"the maximum master overhead [is] expected to remain constant"."""
    overheads = [r.max_master_overhead_ms for r in raytrace_dynamics.rows]
    assert max(overheads) == pytest.approx(min(overheads), rel=0.2)


def test_loaded_runs_match_smaller_unloaded_clusters(raytrace_dynamics):
    """Losing k of 4 workers ≈ computing with 4−k workers."""
    loaded_half = raytrace_dynamics.rows[2]          # 2 of 4 loaded
    two_workers = dynamics_experiment(
        make_raytrace_app, raytrace_cluster, workers=2, loaded_fractions=(0.0,)
    ).rows[0]
    assert loaded_half.max_worker_ms == pytest.approx(
        two_workers.max_worker_ms, rel=0.15
    )


def test_prefetch_less_sensitive_to_lost_workers():
    """Aggregation-bound app: losing workers hurts less than compute-bound."""
    result = dynamics_experiment(make_prefetch_app, prefetch_cluster, workers=4,
                                 loaded_fractions=(0.0, 0.5))
    slowdown = result.rows[1].total_parallel_ms / result.rows[0].total_parallel_ms
    assert slowdown < 2.2


def test_table_formats(raytrace_dynamics):
    table = raytrace_dynamics.format_table()
    assert "loaded" in table
    assert "50%" in table
