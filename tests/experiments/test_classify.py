"""Table 2: the measured classification must match the paper's grades."""

from __future__ import annotations

import pytest

from repro.experiments.classify import classify_applications, format_table


@pytest.fixture(scope="module")
def rows():
    return {r.app_id: r for r in classify_applications()}


def test_scalability_grades_match_table2(rows):
    assert rows["option-pricing"].scalability == "Medium"
    assert rows["ray-tracing"].scalability == "High"
    assert rows["web-prefetch"].scalability == "Low"


def test_cpu_grades_match_table2(rows):
    assert rows["option-pricing"].cpu == "Adaptable"
    assert rows["ray-tracing"].cpu == "High"
    assert rows["web-prefetch"].cpu == "Low"


def test_task_dependency_matches_table2(rows):
    """"Task Dependency: No / No / Yes" — only pre-fetching has
    inter-iteration dependencies."""
    assert rows["option-pricing"].task_dependency is False
    assert rows["ray-tracing"].task_dependency is False
    assert rows["web-prefetch"].task_dependency is True


def test_memory_measured_from_real_payloads(rows):
    # The ray tracer's strip results are "relatively large" pixel arrays.
    assert rows["ray-tracing"].memory == "High"
    assert rows["ray-tracing"].payload_bytes > 30_000
    assert rows["option-pricing"].memory == "Low"


def test_format_table_contains_all_apps(rows):
    table = format_table(list(rows.values()))
    for app_id in rows:
        assert app_id in table
