"""Jini-like federation substrate.

Implements the three protocols the paper describes in Section 3:

* **discovery** — a client multicasts a presence announcement on a
  well-known group/port; lookup services respond with their address;
* **join** — a service provider registers itself (with attributes) at the
  lookup service under a lease, renewing periodically;
* **lookup** — a client sends a desired attribute set; the lookup service
  performs an associative match and returns matching services.

The master module uses this to advertise its JavaSpaces service; clients
(workers, the network-management module) find the space without static
configuration.
"""

from repro.jini.lookup import LookupService, ServiceItem, ServiceRegistration
from repro.jini.discovery import DiscoveryClient, DISCOVERY_GROUP, DISCOVERY_PORT
from repro.jini.join import JoinManager
from repro.jini.sdm import ServiceDiscoveryManager

__all__ = [
    "LookupService",
    "ServiceItem",
    "ServiceRegistration",
    "DiscoveryClient",
    "JoinManager",
    "ServiceDiscoveryManager",
    "DISCOVERY_GROUP",
    "DISCOVERY_PORT",
]
