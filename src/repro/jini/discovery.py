"""The Jini discovery protocol.

"The protocol consists of broadcasting a presence announcement by dropping
a multicast packet on a well-known port.  This packet contains the host's
IP address and port number so that the lookup server can contact it."
(paper, Section 3).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.address import Address
from repro.net.network import Network
from repro.runtime.base import Runtime

__all__ = ["DiscoveryClient", "LookupLocator", "DISCOVERY_GROUP", "DISCOVERY_PORT"]

#: Jini's well-known multicast discovery port.
DISCOVERY_PORT = 4160
DISCOVERY_GROUP = Address("224.0.1.85", DISCOVERY_PORT)


class LookupLocator:
    """Unicast discovery: reach a known registrar without multicast.

    Jini's ``LookupLocator("jini://host[:port]")`` equivalent — used when
    multicast doesn't cross the network segment.  ``probe`` confirms the
    registrar actually answers before clients commit to it.
    """

    def __init__(self, runtime: Runtime, network: Network, host: str,
                 registrar: Address) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host
        self.registrar = registrar

    def probe(self, timeout_ms: float = 100.0) -> bool:
        """True iff a lookup service answers at the address."""
        from repro.errors import ConnectionClosedError, NetworkError
        from repro.jini.join import LookupClient

        client = LookupClient(self.network, self.host, self.registrar)
        try:
            client.lookup({})
            return True
        except (NetworkError, ConnectionClosedError):
            return False
        finally:
            client.close()

    def get_registrar(self, timeout_ms: float = 100.0) -> Optional[Address]:
        return self.registrar if self.probe(timeout_ms) else None


class DiscoveryClient:
    """Finds lookup services via multicast presence announcements."""

    def __init__(self, runtime: Runtime, network: Network, host: str) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host

    def discover(
        self, timeout_ms: float = 50.0, expected: Optional[int] = None
    ) -> list[Address]:
        """Broadcast an announcement; collect registrar addresses.

        Listens for responses until ``timeout_ms`` elapses, or returns early
        once ``expected`` registrars answered.
        """
        reply_address = self.network.ephemeral(self.host)
        socket = self.network.bind_datagram(reply_address)
        try:
            socket.send_to(
                DISCOVERY_GROUP,
                {
                    "type": "discovery-request",
                    "host": reply_address.host,
                    "port": reply_address.port,
                },
            )
            registrars: list[Address] = []
            deadline = self.runtime.now() + timeout_ms
            while True:
                remaining = deadline - self.runtime.now()
                if remaining <= 0:
                    break
                received = socket.receive(timeout_ms=remaining)
                if received is None:
                    break
                message, _sender = received
                if (
                    isinstance(message, dict)
                    and message.get("type") == "discovery-response"
                ):
                    registrar = message["registrar"]
                    if registrar not in registrars:
                        registrars.append(registrar)
                    if expected is not None and len(registrars) >= expected:
                        break
            return registrars
        finally:
            socket.close()
