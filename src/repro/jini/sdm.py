"""Service discovery manager: a client-side cache of matching services.

Mirrors Jini's ``ServiceDiscoveryManager``/``LookupCache``: a client
declares the attribute query once; the manager discovers registrars,
keeps a local cache of matching services fresh, and notifies listeners
when services appear or disappear (e.g. their lease lapsed).  Freshness
here comes from periodic registrar polling (the real SDM also uses
remote events; polling keeps the protocol surface small and is what the
paper's era of clients typically fell back to).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ConnectionClosedError, LookupError_
from repro.jini.discovery import DiscoveryClient
from repro.jini.join import LookupClient
from repro.jini.lookup import ServiceItem
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime.base import Runtime

__all__ = ["ServiceDiscoveryManager"]


class ServiceDiscoveryManager:
    """Maintains a live cache of services matching an attribute query."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        query: dict[str, Any],
        refresh_interval_ms: float = 2_000.0,
        discovery_timeout_ms: float = 50.0,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host
        self.query = dict(query)
        self.refresh_interval_ms = refresh_interval_ms
        self.discovery_timeout_ms = discovery_timeout_ms
        self.running = False
        self._cache: dict[str, ServiceItem] = {}
        self._clients: dict[Address, LookupClient] = {}
        self._added: list[Callable[[ServiceItem], None]] = []
        self._removed: list[Callable[[ServiceItem], None]] = []
        self.stats = {"refreshes": 0, "discoveries": 0}

    # -- listeners -------------------------------------------------------------

    def on_added(self, callback: Callable[[ServiceItem], None]) -> None:
        self._added.append(callback)

    def on_removed(self, callback: Callable[[ServiceItem], None]) -> None:
        self._removed.append(callback)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.runtime.spawn(self._refresh_loop, name=f"sdm:{self.host}")

    def stop(self) -> None:
        self.running = False
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    # -- queries ---------------------------------------------------------------------

    def services(self) -> list[ServiceItem]:
        """Current cache contents (cheap local call)."""
        return list(self._cache.values())

    def lookup_one(self, wait_ms: float = 0.0) -> Optional[ServiceItem]:
        """A cached match, optionally waiting for one to appear."""
        deadline = self.runtime.now() + wait_ms
        while True:
            if self._cache:
                return next(iter(self._cache.values()))
            if self.runtime.now() >= deadline:
                return None
            self.runtime.sleep(min(50.0, self.refresh_interval_ms))

    # -- internals -----------------------------------------------------------------------

    def refresh_once(self) -> None:
        """One discovery + lookup round; fires add/remove callbacks."""
        self.stats["refreshes"] += 1
        registrars = DiscoveryClient(self.runtime, self.network, self.host).discover(
            timeout_ms=self.discovery_timeout_ms
        )
        self.stats["discoveries"] += len(registrars)
        found: dict[str, ServiceItem] = {}
        for registrar in registrars:
            client = self._clients.get(registrar)
            if client is None:
                client = LookupClient(self.network, self.host, registrar)
                self._clients[registrar] = client
            try:
                for item in client.lookup(self.query):
                    found[item.service_id] = item
            except (LookupError_, ConnectionClosedError):
                client.close()
                self._clients.pop(registrar, None)

        for service_id, item in found.items():
            if service_id not in self._cache:
                self._cache[service_id] = item
                for callback in self._added:
                    callback(item)
        for service_id in list(self._cache):
            if service_id not in found:
                item = self._cache.pop(service_id)
                for callback in self._removed:
                    callback(item)
        # Keep cached items fresh (attributes may change on re-registration).
        self._cache.update(found)

    def _refresh_loop(self) -> None:
        while self.running:
            self.refresh_once()
            self.runtime.sleep(self.refresh_interval_ms)
