"""The Jini lookup service (registrar).

Maintains the mapping between each registered service and its attributes,
answers associative lookups, and enforces leases on registrations.  Runs
an RPC loop on a stream address plus a discovery responder on the
multicast group (see :mod:`repro.jini.discovery`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConnectionClosedError, LookupError_
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.runtime.base import Runtime
from repro.tuplespace.lease import FOREVER, Lease
from repro.jini.discovery import DISCOVERY_GROUP

__all__ = ["ServiceItem", "ServiceRegistration", "LookupService"]


@dataclass
class ServiceItem:
    """A service as stored in (and returned by) the registrar."""

    service_id: str
    service: Any                      # proxy/address understood by clients
    attributes: dict[str, Any] = field(default_factory=dict)

    def matches(self, query: dict[str, Any]) -> bool:
        """Associative match: every query attribute must be equal."""
        return all(self.attributes.get(k) == v for k, v in query.items())


@dataclass
class ServiceRegistration:
    registration_id: int
    item: ServiceItem
    lease: Lease


class LookupService:
    """In-network registrar with register/renew/cancel/lookup RPC."""

    def __init__(self, runtime: Runtime, network: Network, address: Address) -> None:
        self.runtime = runtime
        self.network = network
        self.address = address
        self._registrations: dict[int, ServiceRegistration] = {}
        self._reg_ids = itertools.count(1)
        self._listener = None
        self._discovery_socket = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._listener = self.network.listen(self.address)
        # Join the discovery multicast group so presence announcements
        # from clients reach us.  Bound to an ephemeral port so several
        # registrars can coexist on one host; group membership, not the
        # bound port, is what routes the multicast.
        self._discovery_socket = self.network.bind_datagram(
            self.network.ephemeral(self.address.host)
        )
        self.network.join_multicast(DISCOVERY_GROUP, self._discovery_socket)
        self.runtime.spawn(self._rpc_loop, name=f"lookup-rpc:{self.address}")
        self.runtime.spawn(self._discovery_loop, name=f"lookup-discovery:{self.address}")

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()
        if self._discovery_socket is not None:
            self.network.leave_multicast(DISCOVERY_GROUP, self._discovery_socket)
            self._discovery_socket.close()

    # -- local API (also used by the RPC loop) --------------------------------------

    def register(
        self, item: ServiceItem, lease_ms: float = FOREVER
    ) -> ServiceRegistration:
        registration = ServiceRegistration(
            next(self._reg_ids), item, Lease(self.runtime, lease_ms)
        )
        self._registrations[registration.registration_id] = registration
        return registration

    def renew(self, registration_id: int, lease_ms: float) -> None:
        registration = self._registrations.get(registration_id)
        if registration is None or registration.lease.is_expired():
            raise LookupError_(f"registration {registration_id} not active")
        registration.lease.renew(lease_ms)

    def cancel(self, registration_id: int) -> None:
        registration = self._registrations.pop(registration_id, None)
        if registration is not None:
            registration.lease.cancel()

    def lookup(self, query: Optional[dict[str, Any]] = None) -> list[ServiceItem]:
        """Return all live services matching the attribute query."""
        self._reap()
        query = query or {}
        return [
            registration.item
            for registration in self._registrations.values()
            if registration.item.matches(query)
        ]

    def _reap(self) -> None:
        dead = [
            rid for rid, registration in self._registrations.items()
            if registration.lease.is_expired()
        ]
        for rid in dead:
            del self._registrations[rid]

    # -- network loops -----------------------------------------------------------------

    def _discovery_loop(self) -> None:
        """Answer multicast presence announcements with our RPC address."""
        while self._running:
            try:
                received = self._discovery_socket.receive(timeout_ms=None)
            except ConnectionClosedError:
                return
            if received is None:
                continue
            message, sender = received
            if isinstance(message, dict) and message.get("type") == "discovery-request":
                reply_to = Address(message["host"], message["port"])
                self._discovery_socket.send_to(
                    reply_to,
                    {"type": "discovery-response", "registrar": self.address},
                )

    def _rpc_loop(self) -> None:
        while self._running:
            try:
                conn = self._listener.accept(timeout_ms=None)
            except ConnectionClosedError:
                return
            if conn is None:
                continue
            self.runtime.spawn(lambda c=conn: self._serve(c), name="lookup-conn")

    def _serve(self, conn: StreamSocket) -> None:
        try:
            while True:
                request = conn.receive(timeout_ms=None)
                if request is None:
                    continue
                try:
                    conn.send({"ok": True, "value": self._dispatch(request)})
                except ConnectionClosedError:
                    raise
                except Exception as exc:
                    conn.send({"ok": False, "error": str(exc)})
        except ConnectionClosedError:
            pass
        finally:
            conn.close()

    def _dispatch(self, request: dict[str, Any]) -> Any:
        op = request.get("op")
        args = request.get("args", {})
        if op == "register":
            registration = self.register(args["item"], args["lease_ms"])
            return {
                "registration_id": registration.registration_id,
                "remaining_ms": registration.lease.remaining_ms(),
            }
        if op == "renew":
            self.renew(args["registration_id"], args["lease_ms"])
            return None
        if op == "cancel":
            self.cancel(args["registration_id"])
            return None
        if op == "lookup":
            return self.lookup(args.get("query"))
        raise LookupError_(f"unknown lookup op: {op!r}")
