"""The Jini join protocol: register a service and keep its lease alive."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ConnectionClosedError, LookupError_
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.jini.lookup import ServiceItem
from repro.runtime.base import Runtime
from repro.tuplespace.lease import FOREVER

__all__ = ["JoinManager", "LookupClient"]


class LookupClient:
    """Stream-RPC client stub for a remote :class:`LookupService`.

    Every call is bounded by ``call_timeout_ms``: a partitioned or gray-slow
    registrar must surface as :class:`ConnectionClosedError`, not hang the
    caller forever — re-discovery is exactly the moment clients can least
    afford to block.  On timeout the connection is dropped so a late reply
    can never be mistaken for the answer to the next call.
    """

    def __init__(self, network: Network, host: str, registrar: Address,
                 call_timeout_ms: Optional[float] = 5_000.0) -> None:
        self.network = network
        self.host = host
        self.registrar = registrar
        self.call_timeout_ms = call_timeout_ms
        self._conn: Optional[StreamSocket] = None

    def _call(self, op: str, args: dict[str, Any]) -> Any:
        if self._conn is None or self._conn.closed:
            self._conn = self.network.connect(self.host, self.registrar)
        self._conn.send({"op": op, "args": args})
        reply = self._conn.receive(timeout_ms=self.call_timeout_ms)
        if reply is None:
            self.close()
            raise ConnectionClosedError(
                f"registrar rpc {op!r} timed out or connection closed")
        if not reply.get("ok"):
            raise LookupError_(reply.get("error", "lookup RPC failed"))
        return reply.get("value")

    def register(self, item: ServiceItem, lease_ms: float = FOREVER) -> dict[str, Any]:
        return self._call("register", {"item": item, "lease_ms": lease_ms})

    def renew(self, registration_id: int, lease_ms: float) -> None:
        self._call("renew", {"registration_id": registration_id, "lease_ms": lease_ms})

    def cancel(self, registration_id: int) -> None:
        self._call("cancel", {"registration_id": registration_id})

    def lookup(self, query: Optional[dict[str, Any]] = None) -> list[ServiceItem]:
        return self._call("lookup", {"query": query})

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


class JoinManager:
    """Registers a service and renews its lease at half the lease period."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        registrar: Address,
        item: ServiceItem,
        lease_ms: float = 30_000.0,
    ) -> None:
        self.runtime = runtime
        self.client = LookupClient(network, host, registrar)
        self.item = item
        self.lease_ms = lease_ms
        self.registration_id: Optional[int] = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        reply = self.client.register(self.item, self.lease_ms)
        self.registration_id = reply["registration_id"]
        self._running = True
        if self.lease_ms != FOREVER:
            self.runtime.spawn(self._renewal_loop, name=f"join-renew:{self.item.service_id}")

    def _renewal_loop(self) -> None:
        while self._running:
            self.runtime.sleep(self.lease_ms / 2.0)
            if not self._running:
                return
            try:
                self.client.renew(self.registration_id, self.lease_ms)
            except LookupError_:
                return  # registration expired or was cancelled
            except ConnectionClosedError:
                continue  # transient partition/outage: retry next half-lease

    def stop(self, cancel: bool = True) -> None:
        self._running = False
        if cancel and self.registration_id is not None:
            try:
                self.client.cancel(self.registration_id)
            except (LookupError_, ConnectionClosedError):
                pass
        self.client.close()
