"""Abstract runtime interface.

Time is always expressed in milliseconds so the simulated and threaded
bindings agree with the paper's plots.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Lock(Protocol):
    """Mutual-exclusion handle (real lock or cooperative no-op)."""

    def acquire(self) -> bool: ...
    def release(self) -> None: ...
    def __enter__(self) -> Any: ...
    def __exit__(self, *exc: object) -> Any: ...


@runtime_checkable
class Condition(Protocol):
    """Monitor condition with millisecond timeouts (both runtimes)."""

    def acquire(self) -> bool: ...
    def release(self) -> None: ...
    def __enter__(self) -> Any: ...
    def __exit__(self, *exc: object) -> Any: ...
    def wait(self, timeout: Optional[float] = None) -> bool: ...
    def notify(self, n: int = 1) -> None: ...
    def notify_all(self) -> None: ...


class ProcessHandle(ABC):
    """Handle on a spawned process/thread."""

    name: str

    @abstractmethod
    def is_alive(self) -> bool: ...

    @abstractmethod
    def join(self, timeout_ms: Optional[float] = None) -> None: ...


class CancelHandle(ABC):
    @abstractmethod
    def cancel(self) -> None: ...


class Runtime(ABC):
    """Execution substrate: clock, processes, and synchronization."""

    @abstractmethod
    def now(self) -> float:
        """Current time in milliseconds."""

    @abstractmethod
    def sleep(self, delay_ms: float) -> None:
        """Block the calling process for ``delay_ms``."""

    @abstractmethod
    def spawn(self, fn: Callable[[], Any], name: str = "proc") -> ProcessHandle:
        """Start a new process running ``fn``."""

    @abstractmethod
    def call_later(self, delay_ms: float, action: Callable[[], None]) -> CancelHandle:
        """Run ``action`` after ``delay_ms`` (timer callback, not a process)."""

    @abstractmethod
    def lock(self) -> Lock: ...

    @abstractmethod
    def condition(self, lock: Optional[Lock] = None) -> Condition: ...

    # -- conveniences shared by both bindings --------------------------------

    def wait_for(
        self,
        condition: Condition,
        predicate: Callable[[], bool],
        timeout_ms: Optional[float] = None,
    ) -> bool:
        """Monitor-style wait loop; caller must hold ``condition``.

        Returns True when ``predicate()`` became true, False on timeout.
        """
        if predicate():
            return True
        deadline = None if timeout_ms is None else self.now() + timeout_ms
        while not predicate():
            remaining = None
            if deadline is not None:
                remaining = deadline - self.now()
                if remaining <= 0:
                    return False
            condition.wait(remaining)
        return True
