"""Runtime binding over real threads and the wall clock.

Used by the runnable examples: the same framework code performs genuine
parallel computation across worker threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.runtime.base import CancelHandle, Condition, Lock, ProcessHandle, Runtime


class _ThreadHandle(ProcessHandle):
    def __init__(self, thread: threading.Thread) -> None:
        self._thread = thread
        self.name = thread.name

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def join(self, timeout_ms: Optional[float] = None) -> None:
        self._thread.join(None if timeout_ms is None else timeout_ms / 1000.0)


class _TimerHandle(CancelHandle):
    def __init__(self, timer: threading.Timer) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()


class _ThreadedCondition:
    """Adapter: ``threading.Condition`` with timeouts in milliseconds."""

    def __init__(self, lock: Optional[threading.Lock] = None) -> None:
        self._cond = threading.Condition(lock)

    def acquire(self) -> bool:
        return self._cond.acquire()

    def release(self) -> None:
        self._cond.release()

    def __enter__(self) -> "_ThreadedCondition":
        self._cond.__enter__()
        return self

    def __exit__(self, *exc: object) -> Any:
        return self._cond.__exit__(*exc)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._cond.wait(None if timeout is None else max(0.0, timeout) / 1000.0)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()


class ThreadedRuntime(Runtime):
    """Wall-clock runtime for real parallel execution."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()
        self._threads: list[threading.Thread] = []

    def now(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def sleep(self, delay_ms: float) -> None:
        time.sleep(max(0.0, delay_ms) / 1000.0)

    def spawn(self, fn: Callable[[], Any], name: str = "proc") -> ProcessHandle:
        thread = threading.Thread(target=fn, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()
        return _ThreadHandle(thread)

    def call_later(self, delay_ms: float, action: Callable[[], None]) -> CancelHandle:
        timer = threading.Timer(max(0.0, delay_ms) / 1000.0, action)
        timer.daemon = True
        timer.start()
        return _TimerHandle(timer)

    def lock(self) -> Lock:
        return threading.RLock()

    def condition(self, lock: Optional[Lock] = None) -> Condition:
        return _ThreadedCondition(lock)  # type: ignore[arg-type]

    def shutdown(self) -> None:
        """Best-effort join of spawned threads (they are daemons)."""
        for thread in self._threads:
            thread.join(0.2)
