"""Runtime abstraction: the seam between real time and virtual time.

Framework code (tuple space, master/worker, SNMP, …) is written once
against :class:`Runtime`.  Two bindings exist:

* :class:`SimulatedRuntime` — deterministic virtual time on the
  discrete-event kernel; used by every experiment/benchmark.
* :class:`ThreadedRuntime` — real threads and the wall clock; used by the
  runnable examples so they perform genuine parallel computation.
"""

from repro.runtime.base import Runtime, Condition, Lock, ProcessHandle
from repro.runtime.simulated import SimulatedRuntime
from repro.runtime.threaded import ThreadedRuntime

__all__ = [
    "Runtime",
    "Condition",
    "Lock",
    "ProcessHandle",
    "SimulatedRuntime",
    "ThreadedRuntime",
]
