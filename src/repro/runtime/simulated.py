"""Runtime binding over the discrete-event kernel (virtual time)."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.base import CancelHandle, Condition, Lock, ProcessHandle, Runtime
from repro.sim.condition import SimCondition, SimLock
from repro.sim.kernel import EventHandle, SimKernel, SimProcess


class _SimProcessHandle(ProcessHandle):
    def __init__(self, runtime: "SimulatedRuntime", proc: SimProcess) -> None:
        self._runtime = runtime
        self._proc = proc
        self.name = proc.name

    def is_alive(self) -> bool:
        return not self._proc.finished

    def join(self, timeout_ms: Optional[float] = None) -> None:
        """Busy-wait in virtual time until the process finishes.

        Virtual-time polling is free (each poll is one heap event), so a
        short poll interval keeps join latency negligible.
        """
        runtime = self._runtime
        deadline = None if timeout_ms is None else runtime.now() + timeout_ms
        while not self._proc.finished:
            if deadline is not None and runtime.now() >= deadline:
                return
            runtime.sleep(1.0)


class _SimCancelHandle(CancelHandle):
    def __init__(self, handle: EventHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class SimulatedRuntime(Runtime):
    """Deterministic virtual-time runtime used by all experiments."""

    def __init__(self, kernel: Optional[SimKernel] = None) -> None:
        self.kernel = kernel if kernel is not None else SimKernel()
        # Bind the clock directly: ``now()`` runs on every space operation,
        # lease check, and deadline computation, so the instance attribute
        # shadows the delegating method below to skip one call frame.
        self.now = self.kernel.now  # type: ignore[method-assign]

    # -- Runtime interface -----------------------------------------------------

    def now(self) -> float:
        return self.kernel.now()

    def sleep(self, delay_ms: float) -> None:
        self.kernel.sleep(delay_ms)

    def spawn(self, fn: Callable[[], Any], name: str = "proc") -> ProcessHandle:
        return _SimProcessHandle(self, self.kernel.spawn(fn, name=name))

    def call_later(self, delay_ms: float, action: Callable[[], None]) -> CancelHandle:
        return _SimCancelHandle(self.kernel.call_later(delay_ms, action))

    def lock(self) -> Lock:
        return SimLock(self.kernel)

    def condition(self, lock: Optional[Lock] = None) -> Condition:
        return SimCondition(self.kernel, lock)  # type: ignore[arg-type]

    # -- simulation control -----------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.kernel.run(until=until)

    def run_until_idle(self) -> float:
        return self.kernel.run_until_idle()

    def shutdown(self) -> None:
        self.kernel.shutdown()

    def __enter__(self) -> "SimulatedRuntime":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
