"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Simulation-control exceptions (:class:`SimKilled`)
deliberately derive from :class:`BaseException` so that application-level
``except Exception`` handlers inside simulated processes do not swallow a
kernel shutdown request.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no event can wake them."""


class SimKilled(BaseException):
    """Raised inside a simulated process when the kernel shuts it down.

    Derives from BaseException on purpose: user code catching ``Exception``
    must not accidentally survive a kernel shutdown.
    """


class NetworkError(ReproError):
    """Errors from the simulated network substrate."""


class AddressInUseError(NetworkError):
    """A socket is already bound to the requested address."""


class ConnectionRefusedError_(NetworkError):
    """No listener at the destination address."""


class ConnectionClosedError(NetworkError):
    """The peer closed the stream socket."""


class TimeoutError_(ReproError):
    """A blocking operation exceeded its timeout."""


class SpaceError(ReproError):
    """Errors from the tuple-space engine."""


class EntryError(SpaceError):
    """An object is not a valid space entry (e.g. not serializable)."""


class TransactionError(SpaceError):
    """Illegal transaction usage (wrong manager, reuse after completion)."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted (explicitly or by lease expiry)."""


class LeaseError(SpaceError):
    """Illegal lease operation (renewal after expiry/cancel)."""


class FencedError(SpaceError):
    """The operation carried a stale primary epoch and was rejected.

    Raised by a space server when a client (or the server itself) is
    behind the cluster's current epoch — e.g. a proxy still talking to a
    deposed primary, or a revived old primary that has been superseded
    by a promoted standby.  The proxy reacts by re-discovering the
    current primary through the lookup service and retrying; the request
    was rejected *before* execution, so the retry is safe even for
    non-idempotent operations."""


class AdmissionError(SpaceError):
    """The operation was refused by the space's admission controller.

    Raised by a space server when a tenant is over quota (too many tasks
    in flight, write rate above its token bucket) or when the server
    sheds load under a queue-depth watermark.  Like :class:`FencedError`
    the check runs *before* dispatch, so a rejected operation has **no
    side effects** and a retry is safe even for non-idempotent
    operations.  ``retry_after_ms`` is the server's hint for when the
    client should try again (token-bucket refill time, or the shedding
    backoff); proxies honour it with capped-exponential backoff.

    ``admitted_entries`` is a *client-side* annotation, never marshalled:
    a sharded router's scatter ``write_all`` splits one bulk write over
    several servers, each of which is individually pre-dispatch-atomic —
    but one shard can admit its group while another rejects.  The router
    then attaches the entries that **did** land before re-raising, so
    recorders can log them as committed (not rejected) and retriers can
    drop them from the re-issued remainder instead of duplicating them.
    A server-raised (or wire-reconstructed) ``AdmissionError`` always has
    an empty tuple: the lone server rejected before executing anything."""

    def __init__(self, message: str, retry_after_ms: float = 0.0,
                 tenant: str | None = None, reason: str = "quota") -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)
        self.tenant = tenant
        self.reason = reason
        self.admitted_entries: tuple = ()


class OutOfMemoryError(ReproError):
    """A node's modelled RAM cannot satisfy an allocation."""


class LookupError_(ReproError):
    """Errors from the Jini-like lookup/discovery substrate."""


class SnmpError(ReproError):
    """Errors from the SNMP substrate."""


class BadCommunityError(SnmpError):
    """Community string rejected by the agent."""


class NoSuchOidError(SnmpError):
    """The requested OID is not present in the agent MIB."""


class CodecError(SnmpError):
    """Malformed PDU bytes."""


class FrameworkError(ReproError):
    """Errors from the adaptive-cluster framework core."""


class IllegalTransitionError(FrameworkError):
    """A worker state transition not permitted by the Fig. 5 state machine."""


class ConfigurationError(FrameworkError):
    """Invalid framework configuration."""


class MasterCrashedError(FrameworkError):
    """The master process was killed (fault injection); the run did not
    complete and may be resumed from its space checkpoint."""
