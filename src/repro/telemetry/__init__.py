"""End-to-end telemetry: distributed tracing + unified metrics registry.

One :class:`Telemetry` object per framework bundles the two halves —
a :class:`~repro.telemetry.trace.Tracer` (per-task span trees) and a
:class:`~repro.telemetry.registry.Registry` (typed instruments over the
per-component stats) — plus the optional periodic snapshotter that
mirrors registry values into the legacy ``Metrics`` series.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.blackbox import FlightRecorder, PostmortemBundle
from repro.telemetry.console import cluster_snapshot, cluster_table
from repro.telemetry.doctor import DoctorReport, analyze_job
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsSnapshotter,
    Registry,
)
from repro.telemetry.slo import DEFAULT_RULES, SloAlert, SloRule, SloWatchdog
from repro.telemetry.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_RULES",
    "DoctorReport",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsSnapshotter",
    "NULL_SPAN",
    "PostmortemBundle",
    "Registry",
    "SloAlert",
    "SloRule",
    "SloWatchdog",
    "Span",
    "Telemetry",
    "Tracer",
    "analyze_job",
    "cluster_snapshot",
    "cluster_table",
]


class Telemetry:
    """Tracer + registry pair bound to one runtime."""

    def __init__(self, runtime: Any, trace: bool = False) -> None:
        self.runtime = runtime
        self.tracer = Tracer(runtime, enabled=trace)
        self.registry = Registry()
        self.snapshotter: Optional[MetricsSnapshotter] = None

    def enable_snapshots(self, metrics: Any,
                         interval_ms: float = 1_000.0) -> bool:
        """Mirror registry values into ``metrics`` every ``interval_ms``
        of runtime time (sim runtime only; returns ``False`` elsewhere)."""
        self.snapshotter = MetricsSnapshotter(self.registry, metrics,
                                              interval_ms=interval_ms)
        return self.snapshotter.attach(self.runtime)

    def prometheus_text(self) -> str:
        return self.registry.prometheus_text()
