"""Per-task distributed tracing over the simulated cluster.

A :class:`Tracer` records :class:`Span` objects — named intervals on the
runtime clock (virtual ms under the sim runtime, wall-clock ms under the
threaded runtime) grouped by a ``trace_id``.  The master mints one trace
per task (``"<app_id>/<task_id>"``), stamps it into the ``TaskEntry``,
and every layer the task passes through (proxy RPC, worker compute, WAL
commit, master aggregation) hangs child spans off it, yielding a
causally-ordered span tree per task.

Determinism contract: trace IDs are minted *unconditionally* — whether
tracing is enabled only controls whether spans are recorded, never the
bytes that travel over the simulated network.  Entry payloads are
therefore identical with tracing on and off, and since the latency model
charges per-KB transfer time, virtual timelines (and hence the chaos
``--verify-determinism`` traces) cannot diverge between the two modes.

Zero-cost-when-disabled: hot paths guard with
``if tracer is not None and tracer.enabled`` and the disabled
:meth:`Tracer.start` returns the shared :data:`NULL_SPAN`, so unguarded
callers still work without allocating.

Exports: JSONL (one span per line) and the Chrome ``trace_event`` format
(open the file at https://ui.perfetto.dev).  Virtual milliseconds map to
trace microseconds, one Chrome "thread" per simulated process.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterable, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One named interval in a trace.  Mutable until :meth:`end` is called."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "proc",
                 "start_ms", "end_ms", "attrs", "_clock")

    def __init__(self, clock: Callable[[], float], name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str], proc: Optional[str],
                 start_ms: float, attrs: dict) -> None:
        self._clock = clock
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.proc = proc
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        end = self.end_ms if self.end_ms is not None else self.start_ms
        return end - self.start_ms

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def end(self, **attrs: Any) -> None:
        """Close the span at the current clock reading (idempotent)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end_ms is None:
            self.end_ms = self._clock()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.end(status="error", error=exc_type.__name__)
        else:
            self.end()
        return False

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms if self.end_ms is not None else self.start_ms,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.proc is not None:
            record["proc"] = self.proc
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id!r}, "
                f"[{self.start_ms}..{self.end_ms}], proc={self.proc!r})")


class _NullSpan:
    """Shared no-op span returned by a disabled tracer."""

    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    proc = None
    start_ms = 0.0
    end_ms = 0.0
    attrs: dict = {}
    duration_ms = 0.0

    def annotate(self, **attrs: Any) -> None:
        pass

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Activation:
    """Context manager pushing a span onto the tracer's thread-local stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span if isinstance(span, Span) else None

    def __enter__(self):
        if self._span is not None:
            self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            self._tracer._pop()
        return False


class Tracer:
    """Span recorder bound to a runtime clock.

    Span IDs come from a plain counter, so under the sim runtime (which
    executes in a deterministic order) two identically-seeded runs mint
    identical IDs — the span-propagation tests pin this down.
    """

    def __init__(self, runtime: Any, enabled: bool = False) -> None:
        self.runtime = runtime
        self.enabled = enabled
        self.spans: list[Span] = []
        #: Optional observer invoked with each span as it is recorded
        #: (the flight recorder rings recent spans through this).  Only
        #: fires when tracing is enabled, so it cannot affect timelines.
        self.sink: Optional[Callable[[Span], None]] = None
        self._next_id = 0
        self._tls = threading.local()

    # -- clock / context -----------------------------------------------------

    def _now(self) -> float:
        return self.runtime.now()

    def _push(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)

    def _pop(self) -> None:
        self._tls.stack.pop()

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span on this thread, if any."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def activate(self, span: Optional[Span]) -> _Activation:
        """``with tracer.activate(span):`` — set the ambient span so nested
        RPCs (and log lines) attach to it.  ``None``/null spans are no-ops."""
        return _Activation(self, span)

    # -- recording -----------------------------------------------------------

    def start(self, name: str, trace_id: str, parent_id: Optional[str] = None,
              span_id: Optional[str] = None, proc: Optional[str] = None,
              **attrs: Any):
        """Open a span at the current clock reading."""
        if not self.enabled:
            return NULL_SPAN
        if span_id is None:
            self._next_id += 1
            span_id = f"s{self._next_id}"
        span = Span(self._now, name, trace_id, span_id, parent_id, proc,
                    self._now(), attrs)
        self.spans.append(span)
        if self.sink is not None:
            self.sink(span)
        return span

    def record(self, name: str, trace_id: str, start_ms: float, end_ms: float,
               parent_id: Optional[str] = None, span_id: Optional[str] = None,
               proc: Optional[str] = None, **attrs: Any) -> Optional[Span]:
        """Record a span with explicit timestamps (used when work is batched
        and per-item shares are only known after the fact)."""
        if not self.enabled:
            return None
        if span_id is None:
            self._next_id += 1
            span_id = f"s{self._next_id}"
        span = Span(self._now, name, trace_id, span_id, parent_id, proc,
                    start_ms, attrs)
        span.end_ms = end_ms
        self.spans.append(span)
        if self.sink is not None:
            self.sink(span)
        return span

    def instant(self, name: str, trace_id: str, parent_id: Optional[str] = None,
                proc: Optional[str] = None, **attrs: Any) -> Optional[Span]:
        """Record a zero-duration marker (rendered as an instant event)."""
        now = self._now()
        return self.record(name, trace_id, now, now, parent_id=parent_id,
                           proc=proc, **attrs)

    # -- queries -------------------------------------------------------------

    def find(self, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def by_trace(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def coverage(self, start_ms: float, end_ms: float,
                 names: Optional[Iterable[str]] = None) -> float:
        """Fraction of ``[start_ms, end_ms]`` covered by the union of spans
        (optionally restricted to ``names``).  1.0 means the whole window
        is accounted for by at least one span."""
        if end_ms <= start_ms:
            return 1.0
        wanted = set(names) if names is not None else None
        intervals = []
        for span in self.spans:
            if wanted is not None and span.name not in wanted:
                continue
            lo = max(span.start_ms, start_ms)
            hi = min(span.end_ms if span.end_ms is not None else span.start_ms,
                     end_ms)
            if hi > lo:
                intervals.append((lo, hi))
        intervals.sort()
        covered = 0.0
        cursor = start_ms
        for lo, hi in intervals:
            if hi <= cursor:
                continue
            covered += hi - max(lo, cursor)
            cursor = hi
        return covered / (end_ms - start_ms)

    # -- export --------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                       for span in self.spans)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def chrome_trace(self) -> dict:
        """Spans as a Chrome ``trace_event`` document (Perfetto-loadable).

        Virtual ms become trace µs; each simulated process (``span.proc``)
        gets its own named "thread" row, spans without a process share a
        catch-all row per trace family.
        """
        tids: dict[str, int] = {}
        events: list[dict] = []

        def tid_for(proc: str) -> int:
            tid = tids.get(proc)
            if tid is None:
                tid = tids[proc] = len(tids) + 1
            return tid

        for span in self.spans:
            proc = span.proc if span.proc is not None else span.trace_id
            end_ms = span.end_ms if span.end_ms is not None else span.start_ms
            args = {"trace_id": span.trace_id, "span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            event = {
                "name": span.name,
                "cat": span.trace_id,
                "pid": 1,
                "tid": tid_for(proc),
                "ts": round(span.start_ms * 1000.0, 3),
                "args": args,
            }
            if end_ms > span.start_ms:
                event["ph"] = "X"
                event["dur"] = round((end_ms - span.start_ms) * 1000.0, 3)
            else:
                event["ph"] = "i"
                event["s"] = "t"
            events.append(event)

        meta = [{"name": "process_name", "ph": "M", "pid": 1,
                 "args": {"name": "repro cluster"}}]
        for proc, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": tid, "args": {"name": proc}})
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
