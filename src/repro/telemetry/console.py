"""Cluster console: render the framework's live state as a text table.

``repro top`` drives this — one row per worker (state, tasks completed,
throughput, RPC health, signal reaction latency) plus space, failover,
admission and SLO-alert summary lines.  The renderer only *reads*
framework state, so it can be called from a monitor process mid-run
(live frames) or once after ``framework.run()`` returns (final
snapshot).  :func:`cluster_snapshot` yields the same state as one plain
dict for ``repro top --json`` and CI scripts.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["cluster_snapshot", "cluster_table"]


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:,.0f}" if value is not None else "-"


def _signal_latencies(metrics: Any, hostname: str) -> list[float]:
    out = []
    for _, payload in metrics.events_named("signal-honored"):
        if payload.get("worker") == hostname:
            latency = payload.get("latency_ms")
            if latency is not None:
                out.append(float(latency))
    return out


def cluster_table(framework: Any, report: Any = None) -> str:
    """One frame of the cluster console for ``framework``."""
    runtime = framework.runtime
    metrics = framework.metrics
    now = runtime.now()

    header = (f"{'worker':<12} {'state':<10} {'tasks':>5} {'tasks/s':>8} "
              f"{'busy ms':>9} {'reconn':>6} {'retry':>5} "
              f"{'sig p50':>8} {'sig max':>8}")
    lines = [f"cluster {framework.app.app_id!r}  t={now:,.0f} ms",
             header, "-" * len(header)]

    for host in framework.worker_hosts:
        hostname = host.node.hostname
        busy_ms = host.worker_time_ms()
        rate = (host.tasks_done / (busy_ms / 1000.0)
                if busy_ms else 0.0)
        proxy = host._proxy
        reconnects = proxy.reconnects if proxy is not None else 0
        retries = proxy.retries if proxy is not None else 0
        latencies = sorted(_signal_latencies(metrics, hostname))
        p50 = latencies[len(latencies) // 2] if latencies else None
        worst = latencies[-1] if latencies else None
        lines.append(
            f"{hostname:<12} {str(host.state):<10} {host.tasks_done:>5} "
            f"{rate:>8.2f} {_fmt_ms(busy_ms):>9} {reconnects:>6} "
            f"{retries:>5} {_fmt_ms(p50):>8} {_fmt_ms(worst):>8}")

    lines.append("-" * len(header))
    spaces = getattr(framework, "spaces", None) or [framework.space]
    if len(spaces) > 1:
        # Sharded space: one line per partition, then the merged totals.
        for i, space in enumerate(spaces):
            stats = space.stats
            queued = stats["writes"] - stats["takes"] - stats["expired"]
            lines.append(
                f"shard {i:<2} writes={stats['writes']} "
                f"takes={stats['takes']} reads={stats['reads']} "
                f"queue≈{max(queued, 0)} wakeups={stats['wakeups']} "
                f"bytes={stats['bytes_written']:,}")
    totals = {
        key: sum(space.stats[key] for space in spaces)
        for key in ("writes", "takes", "reads", "expired",
                    "wakeups", "bytes_written")
    }
    queued = totals["writes"] - totals["takes"] - totals["expired"]
    lines.append(
        f"space: writes={totals['writes']} takes={totals['takes']} "
        f"reads={totals['reads']} queue≈{max(queued, 0)} "
        f"wakeups={totals['wakeups']} bytes={totals['bytes_written']:,}")

    supervisors = getattr(framework, "supervisors", None) or []
    if supervisors:
        # Failover/fencing health: one summary line for the supervisor
        # fleet — current epoch per shard, promotions performed, and how
        # many stale-epoch RPCs the fence turned away.
        epochs = ",".join(str(s.epoch) for s in supervisors)
        failovers = sum(s.failovers for s in supervisors)
        fenced = (framework.total_fenced_rpcs()
                  if hasattr(framework, "total_fenced_rpcs") else 0)
        stalls = sum(getattr(server, "repl_stalls", 0)
                     for server in getattr(framework, "space_servers", []))
        lines.append(
            f"failover: epoch={epochs} failovers={failovers} "
            f"fenced_rpcs={fenced} repl_stalls={stalls}")

    admissions = [server.admission
                  for server in getattr(framework, "space_servers", [])
                  if getattr(server, "admission", None) is not None]
    if admissions:
        # Multi-tenant job service: admission verdict totals over every
        # server, then the DRR dispatcher's per-tenant take grants.
        totals_a: dict[str, int] = {}
        for admission in admissions:
            for key, value in admission.stats.items():
                totals_a[key] = totals_a.get(key, 0) + value
        lines.append(
            f"admission: checked={totals_a.get('checked', 0)} "
            f"admitted={totals_a.get('admitted', 0)} "
            f"rejected={totals_a.get('rejected', 0)} "
            f"shed={totals_a.get('shed', 0)}")
        grants = (framework.tenant_grants()
                  if hasattr(framework, "tenant_grants") else {})
        if grants:
            lines.append("tenants: " + " ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(grants.items())))
    governor = getattr(framework, "governor", None)
    if governor is not None:
        lines.append(
            f"preemption: preemptions={governor.stats['preemptions']} "
            f"released={governor.stats['tasks_released']} "
            f"polls={governor.stats['polls']}")

    watchdog = getattr(framework, "watchdog", None)
    if watchdog is not None and watchdog.alerts:
        # SLO pane: active alerts first (worst news on top), then the
        # resolved history so a post-run frame still tells the story.
        active = [a for a in watchdog.alerts if a.active]
        lines.append(f"alerts: {len(active)} active / "
                     f"{len(watchdog.alerts)} total")
        for alert in watchdog.alerts:
            state = "ACTIVE" if alert.active else \
                f"resolved t={alert.resolved_ms:,.0f}"
            lines.append(
                f"  [{state}] {alert.rule.name}: "
                f"{alert.rule.metric} {alert.rule.op} "
                f"{alert.rule.threshold:g} (value {alert.value:g} "
                f"at t={alert.fired_ms:,.0f})")

    if report is not None:
        lines.append(
            f"job:   parallel={report.parallel_ms:,.0f} ms "
            f"planning={report.planning_ms:,.0f} ms "
            f"aggregation={report.aggregation_ms:,.0f} ms "
            f"(complete={report.complete})")
    return "\n".join(lines)


def cluster_snapshot(framework: Any, report: Any = None) -> dict:
    """The console's state as one JSON-ready dict (``repro top --json``).

    Mirrors :func:`cluster_table` section by section so scripts and CI
    never have to scrape the table renderer.
    """
    runtime = framework.runtime
    metrics = framework.metrics
    snapshot: dict[str, Any] = {
        "app": framework.app.app_id,
        "t_ms": runtime.now(),
    }

    workers = []
    for host in framework.worker_hosts:
        hostname = host.node.hostname
        busy_ms = host.worker_time_ms()
        proxy = host._proxy
        latencies = sorted(_signal_latencies(metrics, hostname))
        workers.append({
            "host": hostname,
            "state": str(host.state),
            "tasks": host.tasks_done,
            "tasks_per_s": (host.tasks_done / (busy_ms / 1000.0)
                            if busy_ms else 0.0),
            "busy_ms": busy_ms,
            "reconnects": proxy.reconnects if proxy is not None else 0,
            "retries": proxy.retries if proxy is not None else 0,
            "signal_p50_ms": (latencies[len(latencies) // 2]
                              if latencies else None),
            "signal_max_ms": latencies[-1] if latencies else None,
        })
    snapshot["workers"] = workers

    spaces = getattr(framework, "spaces", None) or [framework.space]
    shard_stats = []
    for space in spaces:
        stats = space.stats
        queued = stats["writes"] - stats["takes"] - stats["expired"]
        shard_stats.append({
            "writes": stats["writes"], "takes": stats["takes"],
            "reads": stats["reads"], "queue": max(queued, 0),
            "wakeups": stats["wakeups"],
            "bytes_written": stats["bytes_written"],
        })
    snapshot["shards"] = shard_stats
    snapshot["space"] = {
        key: sum(shard[key] for shard in shard_stats)
        for key in ("writes", "takes", "reads", "queue",
                    "wakeups", "bytes_written")
    }

    supervisors = getattr(framework, "supervisors", None) or []
    if supervisors:
        snapshot["failover"] = {
            "epochs": [s.epoch for s in supervisors],
            "failovers": sum(s.failovers for s in supervisors),
            "fenced_rpcs": (framework.total_fenced_rpcs()
                            if hasattr(framework, "total_fenced_rpcs")
                            else 0),
            "repl_stalls": sum(
                getattr(server, "repl_stalls", 0)
                for server in getattr(framework, "space_servers", [])),
        }

    admissions = [server.admission
                  for server in getattr(framework, "space_servers", [])
                  if getattr(server, "admission", None) is not None]
    if admissions:
        totals_a: dict[str, int] = {}
        for admission in admissions:
            for key, value in admission.stats.items():
                totals_a[key] = totals_a.get(key, 0) + value
        snapshot["admission"] = totals_a
        grants = (framework.tenant_grants()
                  if hasattr(framework, "tenant_grants") else {})
        if grants:
            snapshot["tenants"] = dict(sorted(grants.items()))
    governor = getattr(framework, "governor", None)
    if governor is not None:
        snapshot["preemption"] = dict(governor.stats)

    watchdog = getattr(framework, "watchdog", None)
    if watchdog is not None:
        snapshot["alerts"] = [a.to_dict() for a in watchdog.alerts]

    if report is not None:
        snapshot["job"] = {
            "parallel_ms": report.parallel_ms,
            "planning_ms": report.planning_ms,
            "aggregation_ms": report.aggregation_ms,
            "complete": report.complete,
        }
    return snapshot
