"""Unified metrics registry: typed instruments behind one namespace.

The per-component ``stats`` dicts (space, WAL, proxy, netmgmt, network)
grew organically and are disjoint; the :class:`Registry` absorbs them
behind labeled, typed instruments with a single naming scheme
(``<component>.<counter>``, e.g. ``space.writes``, ``wal.syncs``,
``netmgmt.polls``).  Components keep their cheap plain-attribute
counters on the hot path — the registry reads them lazily through
*collectors* at exposition time, so registration costs nothing per op.

Instruments:

- :class:`Counter` — monotone total (``inc``).
- :class:`Gauge` — last-value sample (``set``).
- :class:`Histogram` — HDR-style log-bucketed distribution with
  deterministic (RNG-free) quantile estimation: 8 sub-buckets per
  octave bound the relative quantile error by ``2**(1/8)`` (≈ 9%).

Exposition: :meth:`Registry.prometheus_text` renders the Prometheus
text format; :class:`MetricsSnapshotter` periodically snapshots every
instrument into the existing :class:`repro.core.metrics.Metrics` series
(riding the sim kernel's ``on_advance`` hook, so snapshots consume no
kernel events and cannot perturb deterministic schedules).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Mapping, Optional

__all__ = ["Counter", "Gauge", "Histogram", "Registry", "MetricsSnapshotter"]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time sample; keeps only the last value set."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Log-bucketed histogram with deterministic quantiles.

    Buckets are geometric with ``SUB_BUCKETS`` per octave: a positive
    value ``v`` lands in bucket ``floor(log2(v) * SUB_BUCKETS)``, whose
    upper edge is ``2 ** ((i + 1) / SUB_BUCKETS)``.  ``quantile`` returns
    that upper edge (clamped to the observed max), so the estimate always
    satisfies ``true_q <= est <= true_q * 2**(1/SUB_BUCKETS)`` — no
    reservoir, no RNG, O(1) memory per occupied bucket.
    """

    __slots__ = ("count", "sum", "min", "max", "_zero", "_buckets")
    kind = "histogram"
    SUB_BUCKETS = 8

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._zero = 0  # observations <= 0
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero += 1
            return
        index = math.floor(math.log2(value) * self.SUB_BUCKETS)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound on the q-quantile (nearest-rank), within one
        sub-bucket (relative factor ``2**(1/8)``) of the true value."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = self._zero
        if rank <= seen:
            return min(0.0, self.max)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                upper = 2.0 ** ((index + 1) / self.SUB_BUCKETS)
                return min(upper, self.max)
        return self.max

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs for exposition."""
        out = []
        cumulative = self._zero
        if self._zero:
            out.append((0.0, cumulative))
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            out.append((2.0 ** ((index + 1) / self.SUB_BUCKETS), cumulative))
        return out


def _label_key(labels: Mapping[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


def _mangle(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    mangled = "".join(out)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _fmt(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Registry:
    """Get-or-create home for every instrument, plus lazy collectors."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple], Any] = {}
        self._kinds: dict[str, str] = {}
        self._collectors: list[Callable[[], Iterable[tuple[str, dict, float]]]] = []

    # -- instrument factories ------------------------------------------------

    def _get(self, name: str, factory: type, labels: Mapping[str, str]):
        kind = factory.kind
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise ValueError(
                f"instrument {name!r} already registered as {known}, "
                f"not {kind}")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = factory()
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(name, Histogram, labels)

    # -- lazy collectors -----------------------------------------------------

    def expose(self, name: str, fn: Callable[[], float],
               **labels: str) -> None:
        """Expose a single value read through ``fn`` at dump time."""
        self._collectors.append(lambda: [(name, dict(labels), float(fn()))])

    def expose_dict(self, prefix: str, mapping: Mapping[str, float],
                    **labels: str) -> None:
        """Expose every ``key: value`` of a live stats mapping as
        ``<prefix>.<key>`` — a read-through view, sampled at dump time."""
        label_dict = dict(labels)

        def collect():
            return [(f"{prefix}.{key}", label_dict, float(value))
                    for key, value in mapping.items()]

        self._collectors.append(collect)

    # -- iteration / exposition ----------------------------------------------

    def samples(self) -> list[tuple[str, dict, str, Any]]:
        """Flat ``(name, labels, kind, instrument_or_value)`` list: typed
        instruments first (in registration order), then collector reads."""
        out = []
        for (name, label_key), instrument in self._instruments.items():
            out.append((name, dict(label_key), instrument.kind, instrument))
        for collect in self._collectors:
            for name, labels, value in collect():
                out.append((name, labels, "gauge", value))
        return out

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Current scalar value of a counter/gauge (or collector sample)."""
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            return getattr(instrument, "value", None)
        for collect in self._collectors:
            for sample_name, sample_labels, value in collect():
                if sample_name == name and _label_key(sample_labels) == key[1]:
                    return value
        return None

    def prometheus_text(self) -> str:
        """Render every instrument in the Prometheus text format."""
        groups: dict[str, list[tuple[dict, str, Any]]] = {}
        kinds: dict[str, str] = {}
        for name, labels, kind, instrument in self.samples():
            groups.setdefault(name, []).append((labels, kind, instrument))
            kinds.setdefault(name, kind)

        lines = []
        for name in sorted(groups):
            mangled = _mangle(name)
            lines.append(f"# TYPE {mangled} {kinds[name]}")
            for labels, kind, instrument in groups[name]:
                label_str = ""
                if labels:
                    inner = ",".join(f'{k}="{v}"'
                                     for k, v in sorted(labels.items()))
                    label_str = "{" + inner + "}"
                if kind == "histogram":
                    for upper, cumulative in instrument.bucket_counts():
                        le = ",".join(filter(None, [label_str[1:-1] if labels
                                                    else "",
                                                    f'le="{_fmt(upper)}"']))
                        lines.append(f"{mangled}_bucket{{{le}}} {cumulative}")
                    le = ",".join(filter(None, [label_str[1:-1] if labels
                                                else "", 'le="+Inf"']))
                    lines.append(f"{mangled}_bucket{{{le}}} {instrument.count}")
                    lines.append(f"{mangled}_sum{label_str} "
                                 f"{_fmt(instrument.sum)}")
                    lines.append(f"{mangled}_count{label_str} "
                                 f"{instrument.count}")
                else:
                    value = (instrument.value if kind != "histogram"
                             and hasattr(instrument, "value") else instrument)
                    lines.append(f"{mangled}{label_str} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    # -- Metrics-series snapshots --------------------------------------------

    def snapshot_into(self, metrics: Any, prefix: str = "telemetry/") -> None:
        """Record every instrument's current value into a ``Metrics``
        series (histograms record count / p50 / p95)."""
        for name, labels, kind, instrument in self.samples():
            suffix = ""
            if labels:
                suffix = "{" + ",".join(f"{k}={v}" for k, v
                                        in sorted(labels.items())) + "}"
            series = f"{prefix}{name}{suffix}"
            if kind == "histogram":
                metrics.record(series + ".count", instrument.count)
                metrics.record(series + ".p50", instrument.quantile(0.50))
                metrics.record(series + ".p95", instrument.quantile(0.95))
            elif hasattr(instrument, "value"):
                metrics.record(series, instrument.value)
            else:
                metrics.record(series, float(instrument))


class MetricsSnapshotter:
    """Periodically snapshot a registry into ``Metrics`` series.

    Attaches to the sim kernel's ``on_advance`` hook — called once per
    distinct virtual time — rather than scheduling events, so enabling
    snapshots cannot change the event schedule (determinism-safe) and
    costs one comparison per time bucket when idle.
    """

    def __init__(self, registry: Registry, metrics: Any,
                 interval_ms: float = 1_000.0,
                 prefix: str = "telemetry/") -> None:
        self.registry = registry
        self.metrics = metrics
        self.interval_ms = float(interval_ms)
        self.prefix = prefix
        #: Extra per-frame observers ``fn(now_ms)`` run after each
        #: snapshot (the SLO watchdog evaluates its rules here).  They
        #: ride the same on_advance hook, so they schedule nothing and
        #: cannot perturb deterministic event order.
        self.on_frame: list = []
        self._last_ms: Optional[float] = None
        self._kernel = None
        self._hook = None

    def attach(self, runtime: Any) -> bool:
        """Chain onto ``runtime.kernel.on_advance``; returns ``False`` for
        runtimes without the hook (threaded), where callers should fall
        back to explicit :meth:`tick` calls."""
        kernel = getattr(runtime, "kernel", None)
        if kernel is None or not hasattr(kernel, "on_advance"):
            return False
        previous = kernel.on_advance

        def hook(now_ms: float, _prev=previous) -> None:
            if _prev is not None:
                _prev(now_ms)
            self.tick(now_ms)

        kernel.on_advance = hook
        self._kernel = kernel
        self._hook = hook
        return True

    def detach(self) -> None:
        if self._kernel is not None and self._kernel.on_advance is self._hook:
            self._kernel.on_advance = None
        self._kernel = None
        self._hook = None

    def tick(self, now_ms: float) -> None:
        if self._last_ms is not None and \
                now_ms - self._last_ms < self.interval_ms:
            return
        self._last_ms = now_ms
        self.registry.snapshot_into(self.metrics, self.prefix)
        for observer in self.on_frame:
            observer(now_ms)
