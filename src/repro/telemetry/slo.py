"""Declarative SLO watchdogs riding the metrics snapshot frames.

An :class:`SloWatchdog` holds a handful of :class:`SloRule` objects —
written in a one-line grammar, see :meth:`SloRule.parse` — and evaluates
them once per :class:`~repro.telemetry.registry.MetricsSnapshotter`
frame (it registers on ``snapshotter.on_frame``).  Because snapshot
frames ride the kernel's ``on_advance`` hook, rule evaluation schedules
no events and reads instruments that already exist: enabling watchdogs
cannot perturb a deterministic run's timeline, and with a fixed seed the
same alerts fire at the same virtual times every run.

Rule grammar::

    <name>: <metric>[.rate|.pNN] (>|<) <threshold> [for <N>s|<N>ms]

- ``metric`` is a registry sample name (``space.queue_depth``,
  ``admission.shed`` …).  When several label sets exist, gauge/quantile
  reads take the **max** across them (an SLO on queue depth means "any
  shard too deep"), while ``.rate`` sums totals first (sheds/sec is a
  cluster-wide rate).
- ``.rate`` turns a counter into a per-second rate between frames.
- ``.pNN`` reads quantile NN of a histogram (``task.latency_ms.p99``).
- ``for Ns`` requires the breach to *sustain* that long before firing
  (hysteresis against one-frame spikes).

Alerts land in three places: :attr:`SloWatchdog.alerts` (the pane that
``repro top`` renders), a ``slo-alert`` metrics event, and — when
tracing is on — an ``slo.alert`` instant span in the trace.  The
``slo-alert`` event name is deliberately **not** in the chaos
determinism-compared event set: alerts are derived observations, and
comparing them would double-count any divergence already caught by the
primary events.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SloRule", "SloAlert", "SloWatchdog", "DEFAULT_RULES"]

_RULE_RE = re.compile(
    r"^\s*(?P<name>[\w.-]+)\s*:\s*"
    r"(?P<metric>[\w./-]+?)"
    r"(?:\.(?P<mode>rate|p\d{1,2}))?\s*"
    r"(?P<op>[<>])\s*"
    r"(?P<threshold>-?\d+(?:\.\d+)?)"
    r"(?:\s+for\s+(?P<sustain>\d+(?:\.\d+)?)\s*(?P<unit>m?s))?\s*$")


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective."""

    name: str
    metric: str
    op: str                      # ">" or "<"
    threshold: float
    mode: Optional[str] = None   # None | "rate" | "pNN"
    sustain_ms: float = 0.0

    @classmethod
    def parse(cls, text: str) -> "SloRule":
        """Parse ``"queue-depth: space.queue_depth > 5000 for 2s"``."""
        match = _RULE_RE.match(text)
        if match is None:
            raise ValueError(f"unparseable SLO rule: {text!r}")
        sustain_ms = 0.0
        if match["sustain"] is not None:
            sustain_ms = float(match["sustain"])
            if match["unit"] == "s":
                sustain_ms *= 1000.0
        return cls(name=match["name"], metric=match["metric"],
                   op=match["op"], threshold=float(match["threshold"]),
                   mode=match["mode"], sustain_ms=sustain_ms)

    def describe(self) -> str:
        metric = self.metric if self.mode is None \
            else f"{self.metric}.{self.mode}"
        text = f"{self.name}: {metric} {self.op} {self.threshold:g}"
        if self.sustain_ms:
            text += f" for {self.sustain_ms:g}ms"
        return text

    def breached(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" \
            else value < self.threshold


@dataclass
class SloAlert:
    """One firing (or resolved) rule instance."""

    rule: SloRule
    fired_ms: float
    value: float
    resolved_ms: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_ms is None

    def to_dict(self) -> dict:
        out = {"rule": self.rule.name, "metric": self.rule.metric,
               "op": self.rule.op, "threshold": self.rule.threshold,
               "fired_ms": self.fired_ms, "value": self.value}
        if self.resolved_ms is not None:
            out["resolved_ms"] = self.resolved_ms
        return out


#: The objectives the framework watches by default; each maps to a
#: failure mode an earlier PR introduced machinery for (backlogs, lagging
#: standbys, fenced zombies, admission sheds, tail latency).
DEFAULT_RULES = (
    SloRule.parse("queue-depth: space.queue_depth > 5000 for 2s"),
    SloRule.parse("replication-lag: space.replication_lag > 256 for 1s"),
    SloRule.parse("fenced-rpcs: space.fenced_rpcs.rate > 10 for 1s"),
    SloRule.parse("admission-shed: admission.shed.rate > 100 for 1s"),
    SloRule.parse("task-latency-p99: task.latency_ms.p99 > 60000"),
)


@dataclass
class _RuleState:
    breach_since: Optional[float] = None
    prev_total: Optional[float] = None
    prev_ms: Optional[float] = None
    active: Optional[SloAlert] = None


class SloWatchdog:
    """Evaluate SLO rules against a registry, once per snapshot frame."""

    def __init__(self, registry: Any, rules=DEFAULT_RULES,
                 metrics: Any = None, tracer: Any = None) -> None:
        self.registry = registry
        self.rules = tuple(SloRule.parse(r) if isinstance(r, str) else r
                           for r in rules)
        self.metrics = metrics
        self.tracer = tracer
        self.alerts: list[SloAlert] = []
        self._states = {rule.name: _RuleState() for rule in self.rules}

    # -- wiring --------------------------------------------------------------

    def attach(self, snapshotter: Any) -> None:
        """Ride the snapshotter's frames (determinism-safe)."""
        snapshotter.on_frame.append(self.evaluate)

    # -- queries -------------------------------------------------------------

    @property
    def active(self) -> list[SloAlert]:
        return [a for a in self.alerts if a.active]

    def to_dict(self) -> dict:
        return {"rules": [r.describe() for r in self.rules],
                "alerts": [a.to_dict() for a in self.alerts]}

    # -- evaluation ----------------------------------------------------------

    def _read(self, rule: SloRule, samples: dict,
              now_ms: float, state: _RuleState) -> Optional[float]:
        """The rule's current value, or None when unreadable this frame."""
        rows = samples.get(rule.metric)
        if not rows:
            return None
        if rule.mode is None:
            # Worst (max) value across label sets: "any shard too deep".
            return max(_scalar(instrument) for _, instrument in rows)
        if rule.mode == "rate":
            # Cluster-wide rate: sum totals, then delta against the
            # previous frame.  First frame only primes the baseline.
            total = sum(_scalar(instrument) for _, instrument in rows)
            prev_total, prev_ms = state.prev_total, state.prev_ms
            state.prev_total, state.prev_ms = total, now_ms
            if prev_total is None or now_ms <= prev_ms:
                return None
            return (total - prev_total) / (now_ms - prev_ms) * 1000.0
        # pNN — max across label sets, same "worst case" reading.
        q = int(rule.mode[1:]) / 100.0
        quantiles = [instrument.quantile(q) for _, instrument in rows
                     if hasattr(instrument, "quantile")]
        return max(quantiles) if quantiles else None

    def evaluate(self, now_ms: float) -> None:
        """Evaluate every rule against the registry's current samples."""
        samples: dict[str, list] = {}
        for name, labels, kind, instrument in self.registry.samples():
            samples.setdefault(name, []).append((labels, instrument))
        for rule in self.rules:
            state = self._states[rule.name]
            value = self._read(rule, samples, now_ms, state)
            breached = value is not None and rule.breached(value)
            if breached:
                if state.breach_since is None:
                    state.breach_since = now_ms
                sustained = now_ms - state.breach_since >= rule.sustain_ms
                if sustained and state.active is None:
                    self._fire(rule, state, now_ms, value)
            else:
                state.breach_since = None
                if state.active is not None:
                    self._resolve(rule, state, now_ms)

    def _fire(self, rule: SloRule, state: _RuleState,
              now_ms: float, value: float) -> None:
        alert = SloAlert(rule=rule, fired_ms=now_ms, value=value)
        self.alerts.append(alert)
        state.active = alert
        if self.metrics is not None:
            self.metrics.event("slo-alert", rule=rule.name,
                               metric=rule.metric, value=value,
                               threshold=rule.threshold)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("slo.alert", trace_id="slo", proc="slo",
                                rule=rule.name, value=value,
                                threshold=rule.threshold)

    def _resolve(self, rule: SloRule, state: _RuleState,
                 now_ms: float) -> None:
        state.active.resolved_ms = now_ms
        state.active = None
        if self.metrics is not None:
            self.metrics.event("slo-resolved", rule=rule.name)


def _scalar(instrument: Any) -> float:
    value = getattr(instrument, "value", None)
    if value is not None:
        return float(value)
    if hasattr(instrument, "quantile"):   # histogram without .pNN mode
        return float(instrument.count)
    return float(instrument)
