"""Always-on black-box flight recorder and postmortem bundles.

Aircraft keep a flight recorder running whether or not anyone expects a
crash; so does this cluster.  The :class:`FlightRecorder` rings the most
recent spans (per simulated process) and metrics events through bounded
deques, costing O(1) per record and a fixed memory ceiling — cheap
enough to leave on for every chaos campaign.  When something goes wrong
— a supervisor promotes a standby, a checker gate fails, a determinism
replay diverges — :meth:`dump` freezes the rings plus the surrounding
context (Prometheus metrics text, checker-history tail, the fault plan
that was running) into a :class:`PostmortemBundle` that CI uploads as an
artifact, so the failure is debuggable without re-running the campaign.

Determinism: the recorder only *observes* hooks that already fire
(``Metrics.on_event``, ``Tracer.sink``); it schedules nothing, reads no
clock of its own, and its rings never feed back into the run.  The
byte-identical-with-tracing-off invariant is untouched — with tracing
off the span ring simply stays empty while events still record.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["FlightRecorder", "PostmortemBundle"]

#: Metrics events that trip an automatic postmortem dump.  Promotion is
#: the flagship: a standby taking over means the primary died, and the
#: moments leading up to that death are exactly what the ring holds.
TRIGGERS = ("standby-promoted",)


@dataclass
class PostmortemBundle:
    """One frozen snapshot of recent history around an incident."""

    reason: str
    t_ms: float
    trigger: Optional[dict] = None
    alerts: list = field(default_factory=list)
    spans: dict = field(default_factory=dict)     # proc -> [span dicts]
    events: list = field(default_factory=list)    # (t, name, payload)
    metrics_text: str = ""
    history: Optional[dict] = None
    fault_plan: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "t_ms": self.t_ms,
            "trigger": self.trigger,
            "alerts": list(self.alerts),
            "spans": self.spans,
            "events": [
                {"t_ms": t, "name": name, "payload": payload}
                for t, name, payload in self.events
            ],
            "metrics": self.metrics_text,
            "history": self.history,
            "fault_plan": self.fault_plan,
        }

    def write(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True,
                      default=repr)
            fh.write("\n")
        return path

    def has_alert(self, name: str) -> bool:
        """Did an event/alert with this name make it into the bundle?"""
        if self.trigger is not None and self.trigger.get("name") == name:
            return True
        if any(evt_name == name for _, evt_name, _ in self.events):
            return True
        return any(a.get("rule") == name for a in self.alerts
                   if isinstance(a, dict))


class FlightRecorder:
    """Bounded ring buffers of recent spans/events, dumpable on demand."""

    def __init__(self, runtime: Any, span_capacity: int = 256,
                 event_capacity: int = 512,
                 history_tail: int = 64) -> None:
        self.runtime = runtime
        self.span_capacity = int(span_capacity)
        self.event_capacity = int(event_capacity)
        self.history_tail = int(history_tail)
        self.bundles: list[PostmortemBundle] = []
        self.fault_plan: Optional[dict] = None
        self.watchdog: Any = None
        self._spans: dict[str, deque] = {}
        self._events: deque = deque(maxlen=self.event_capacity)
        self._metrics: Any = None
        self._tracer: Any = None
        self._registry: Any = None
        self._history: Any = None

    # -- wiring --------------------------------------------------------------

    def attach(self, metrics: Any = None, tracer: Any = None,
               registry: Any = None, history: Any = None) -> None:
        """Hook the observation points.  Any subset may be None."""
        if metrics is not None:
            self._metrics = metrics
            metrics.on_event = self._on_event
        if tracer is not None:
            self._tracer = tracer
            tracer.sink = self._on_span
        self._registry = registry
        if history is not None:
            self._history = history

    # -- ring writers --------------------------------------------------------

    def _on_span(self, span: Any) -> None:
        proc = span.proc if span.proc is not None else "-"
        ring = self._spans.get(proc)
        if ring is None:
            ring = self._spans[proc] = deque(maxlen=self.span_capacity)
        ring.append(span)

    def _on_event(self, now: float, name: str, payload: dict) -> None:
        self._events.append((now, name, payload))
        if name in TRIGGERS:
            self.dump(reason=name,
                      trigger={"name": name, "t_ms": now, **payload})

    # -- dumping -------------------------------------------------------------

    def dump(self, reason: str,
             trigger: Optional[dict] = None) -> PostmortemBundle:
        """Freeze the rings into a bundle (and keep it on ``bundles``)."""
        spans = {proc: [span.to_dict() for span in ring]
                 for proc, ring in sorted(self._spans.items())}
        alerts = []
        if self.watchdog is not None:
            alerts = [a.to_dict() for a in self.watchdog.alerts]
        metrics_text = ""
        if self._registry is not None:
            metrics_text = self._registry.prometheus_text()
        history = None
        if self._history is not None:
            ops = getattr(self._history, "ops", [])
            tail = ops[-self.history_tail:]
            history = {
                "total_ops": len(ops),
                "tail": [
                    {"op": op.op, "entry_class": op.entry_class,
                     "key": op.key, "client": op.client,
                     "invoked_ms": op.invoked_ms,
                     "responded_ms": op.responded_ms,
                     "status": op.status, "count": op.count}
                    for op in tail
                ],
            }
        bundle = PostmortemBundle(
            reason=reason,
            t_ms=self.runtime.now(),
            trigger=trigger,
            alerts=alerts,
            spans=spans,
            events=list(self._events),
            metrics_text=metrics_text,
            history=history,
            fault_plan=self.fault_plan,
        )
        self.bundles.append(bundle)
        return bundle
