"""Critical-path attribution: *why* did this job take as long as it did?

:func:`analyze_job` walks one job's span tree (the ``job`` root plus
``planning`` / ``task`` / ``compute`` / ``aggregate`` / ``scatter`` /
``rpc.*`` / ``wal.*`` / ``admission.backoff`` spans the layers below
recorded) and attributes every instant of the job window
``[job.start_ms, job.end_ms]`` to exactly one *phase*, so the per-phase
milliseconds always sum to the job's wall time — no double counting, no
residue.

Attribution is a priority sweep: the window is cut at every span
boundary, and each elementary segment goes to the highest-priority phase
with a span covering it (see :data:`PHASE_ORDER`).  The ordering encodes
"how useful was the cluster right then":

1. ``compute``   — any worker was executing task payload; the cluster
   made forward progress, whatever the master was doing.
2. ``planning``  — the master's serial task-planning path.
3. ``aggregate`` — the master's per-task aggregation CPU.
4. ``admission`` — the master backing off an admission rejection.
5. ``scatter``   — a scatter-gather fan-out had RPCs in flight (the
   intersection of ``scatter`` spans with ``rpc.*`` spans, so camped
   waits inside a scatter do not masquerade as fan-out cost).
6. ``rpc``       — some request/reply (or class load) was in flight.
7. ``wal``       — durability barriers (commits/syncs are instants
   under simulation, so this phase is usually 0 ms; the counts still
   appear in the report).
8. ``queue``     — the remainder: nothing above was happening, so the
   job was waiting on queues/scheduling.

Everything derives from recorded spans — deterministic span IDs and
virtual timestamps — so the same seed always renders the byte-identical
report.  The analyzer runs strictly *after* a job (CLI ``repro doctor``,
``run_micro --check`` explanations); nothing here touches the hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = [
    "PHASE_ORDER",
    "DoctorReport",
    "PhaseSlice",
    "TaskCost",
    "WorkerLane",
    "analyze_job",
    "explain_phase_regression",
]

#: Phases in sweep priority order (highest first); ``queue`` is the
#: implicit remainder and always comes last.
PHASE_ORDER = ("compute", "planning", "aggregate", "admission",
               "scatter", "rpc", "wal", "queue")

#: Density ramp for the per-worker utilization timelines.
_RAMP = " .:-=+*#%@"


def _span_interval(span: Any, lo: float, hi: float) -> Optional[tuple]:
    """The span clipped to ``[lo, hi]``, or None if disjoint/empty."""
    start = span.start_ms
    end = span.end_ms if span.end_ms is not None else span.start_ms
    start, end = max(start, lo), min(end, hi)
    if end <= start:
        return None
    return (start, end)


def _union(intervals: Iterable[tuple]) -> list[tuple]:
    """Merge overlapping ``(lo, hi)`` intervals into a sorted union."""
    merged: list[tuple] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def _intersect(a: Sequence[tuple], b: Sequence[tuple]) -> list[tuple]:
    """Intersection of two merged interval lists."""
    out: list[tuple] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _total(intervals: Iterable[tuple]) -> float:
    return sum(hi - lo for lo, hi in intervals)


#: Exact span-name → phase map; ``rpc.*`` is handled by prefix in
#: :func:`_phase_of` (RPC span names carry the method).
_PHASE_BY_NAME = {
    "compute": "compute",
    "planning": "planning",
    "aggregate": "aggregate",
    "admission.backoff": "admission",
    "scatter": "scatter",
    "class-load": "rpc",
    "wal.commit": "wal",
    "wal.sync": "wal",
}


def _phase_of(span: Any) -> Optional[str]:
    """Which phase a span feeds (None = structural, e.g. job/task)."""
    name = span.name
    phase = _PHASE_BY_NAME.get(name)
    if phase is None and name.startswith("rpc."):
        return "rpc"
    return phase


@dataclass(frozen=True)
class PhaseSlice:
    """One phase's share of the job window."""

    name: str
    ms: float
    fraction: float
    spans: int

    def to_dict(self) -> dict:
        return {"name": self.name, "ms": round(self.ms, 3),
                "fraction": round(self.fraction, 6), "spans": self.spans}


@dataclass(frozen=True)
class WorkerLane:
    """One worker's utilization over the job window."""

    proc: str
    busy_ms: float
    utilization: float
    tasks: int
    timeline: str

    def to_dict(self) -> dict:
        return {"proc": self.proc, "busy_ms": round(self.busy_ms, 3),
                "utilization": round(self.utilization, 6),
                "tasks": self.tasks, "timeline": self.timeline}


@dataclass(frozen=True)
class TaskCost:
    """Per-task cost split: where one task's lifetime went."""

    trace_id: str
    total_ms: float
    compute_ms: float
    rpc_ms: float
    wait_ms: float
    worker: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id,
                "total_ms": round(self.total_ms, 3),
                "compute_ms": round(self.compute_ms, 3),
                "rpc_ms": round(self.rpc_ms, 3),
                "wait_ms": round(self.wait_ms, 3),
                "worker": self.worker}


@dataclass
class DoctorReport:
    """The full attribution for one job window.

    ``phases`` partition the window exactly: ``sum(p.ms) == wall_ms`` up
    to float rounding, which is what makes the report a *closed*
    explanation rather than a list of overlapping measurements.
    """

    app: str
    start_ms: float
    end_ms: float
    phases: tuple[PhaseSlice, ...]
    workers: tuple[WorkerLane, ...]
    slowest: tuple[TaskCost, ...]
    counts: dict = field(default_factory=dict)

    @property
    def wall_ms(self) -> float:
        return self.end_ms - self.start_ms

    def phase_ms(self) -> dict[str, float]:
        return {p.name: p.ms for p in self.phases}

    def attributed_fraction(self) -> float:
        """Sum of phase fractions — 1.0 by construction (the acceptance
        check for "attribution sums to 100% of job wall time")."""
        return sum(p.fraction for p in self.phases)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "window": {"start_ms": round(self.start_ms, 3),
                       "end_ms": round(self.end_ms, 3),
                       "wall_ms": round(self.wall_ms, 3)},
            "phases": [p.to_dict() for p in self.phases],
            "workers": [w.to_dict() for w in self.workers],
            "slowest_tasks": [t.to_dict() for t in self.slowest],
            "counts": dict(self.counts),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        lines = [
            f"doctor — job {self.app!r}",
            f"window: {self.start_ms:,.1f} .. {self.end_ms:,.1f} ms  "
            f"(wall {self.wall_ms:,.1f} ms, "
            f"{self.counts.get('tasks', 0)} tasks, "
            f"{self.counts.get('spans', 0)} spans)",
            "phase attribution (sums to 100.0% of job wall time):",
        ]
        bar_width = 24
        for p in self.phases:
            bar = "#" * int(round(p.fraction * bar_width))
            lines.append(
                f"  {p.name:<10} {p.ms:>12,.1f} ms  {p.fraction:>6.1%}  "
                f"|{bar:<{bar_width}}|  ({p.spans} spans)")
        if self.counts.get("wal_commits") or self.counts.get("wal_syncs"):
            lines.append(
                f"  wal barriers: {self.counts.get('wal_commits', 0)} "
                f"commits, {self.counts.get('wal_syncs', 0)} syncs "
                f"(instant under simulation)")
        if self.workers:
            width = len(self.workers[0].timeline)
            lines.append(f"per-worker utilization "
                         f"({width} buckets over the window):")
            for lane in self.workers:
                lines.append(
                    f"  {lane.proc:<12} |{lane.timeline}| "
                    f"{lane.utilization:>6.1%} busy  "
                    f"{lane.tasks:>4} tasks  {lane.busy_ms:>10,.1f} ms")
        if self.slowest:
            lines.append("slowest tasks (total = compute + rpc + wait):")
            for t in self.slowest:
                lines.append(
                    f"  {t.trace_id:<20} total {t.total_ms:>9,.1f} ms = "
                    f"compute {t.compute_ms:>8,.1f} + rpc {t.rpc_ms:>7,.1f}"
                    f" + wait {t.wait_ms:>8,.1f}   [{t.worker}]")
        return "\n".join(lines)


def _pick_job_span(spans: Sequence[Any], app: Optional[str]) -> Any:
    """The *last* matching ``job`` span — a warm benchmark runs the same
    job twice on one tracer, and the warm run is the one under study."""
    chosen = None
    for span in spans:
        if span.name != "job":
            continue
        if app is not None and span.attrs.get("app") != app:
            continue
        chosen = span
    if chosen is None:
        raise ValueError(
            "no 'job' span recorded — was the run traced? "
            "(FrameworkConfig(trace=True) / repro doctor runs it for you)")
    return chosen


def analyze_job(tracer_or_spans: Any, app: Optional[str] = None,
                top_tasks: int = 5, lane_width: int = 40) -> DoctorReport:
    """Attribute one job's wall time to phases (see module docstring).

    ``tracer_or_spans`` is a :class:`~repro.telemetry.trace.Tracer` or a
    plain span list; ``app`` pins a specific job when several apps share
    the tracer.  Deterministic: identical spans → identical report.
    """
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    job = _pick_job_span(spans, app)
    lo = job.start_ms
    hi = job.end_ms if job.end_ms is not None else job.start_ms
    if hi <= lo:
        raise ValueError(f"job span has an empty window [{lo}, {hi}]")

    # -- bucket spans by phase, clipped to the window ------------------------
    # One pass over the span list collects everything downstream needs
    # (phase buckets, worker lanes, per-task cost inputs): the analysis
    # is on the run_micro --check path, so span-count-linear work is
    # done once, with the clip inlined.
    raw: dict[str, list[tuple]] = {name: [] for name in PHASE_ORDER}
    span_counts: dict[str, int] = {name: 0 for name in PHASE_ORDER}
    wal_commits = wal_syncs = 0
    task_spans: list[Any] = []
    by_proc: dict[str, list[tuple]] = {}
    tasks_by_proc: dict[str, int] = {}
    compute_by_trace: dict[str, list[tuple]] = {}
    rpc_by_trace: dict[str, list[tuple]] = {}
    worker_by_trace: dict[str, str] = {}
    for span in spans:
        name = span.name
        if name == "wal.commit":
            wal_commits += 1
        elif name == "wal.sync":
            wal_syncs += 1
        start = span.start_ms
        end = span.end_ms if span.end_ms is not None else start
        if name == "task":
            if start < hi:
                task_spans.append(span)
            continue
        a = start if start > lo else lo
        b = end if end < hi else hi
        if b <= a:
            continue
        interval = (a, b)
        if name == "compute":
            raw["compute"].append(interval)
            span_counts["compute"] += 1
            compute_by_trace.setdefault(span.trace_id, []).append(interval)
            if span.proc is not None:
                worker_by_trace[span.trace_id] = span.proc
                by_proc.setdefault(span.proc, []).append(interval)
                tasks_by_proc[span.proc] = tasks_by_proc.get(span.proc, 0) + 1
            continue
        phase = _phase_of(span)
        if phase is None:
            continue
        raw[phase].append(interval)
        span_counts[phase] += 1
        if phase == "rpc" and name.startswith("rpc."):
            rpc_by_trace.setdefault(span.trace_id, []).append(interval)

    merged = {name: _union(intervals) for name, intervals in raw.items()}
    # Scatter only counts while its fan-out RPCs are actually in flight;
    # the camped waits inside a scatter loop fall through to lower
    # priorities (usually queue wait), which is what they are.
    merged["scatter"] = _intersect(merged["scatter"], merged["rpc"])

    # -- priority sweep ------------------------------------------------------
    cuts = {lo, hi}
    for name in PHASE_ORDER[:-1]:
        for a, b in merged[name]:
            cuts.add(a)
            cuts.add(b)
    points = sorted(cuts)
    attributed = {name: 0.0 for name in PHASE_ORDER}
    cursors = {name: 0 for name in PHASE_ORDER[:-1]}
    for a, b in zip(points, points[1:]):
        winner = "queue"
        for name in PHASE_ORDER[:-1]:
            intervals = merged[name]
            i = cursors[name]
            while i < len(intervals) and intervals[i][1] <= a:
                i += 1
            cursors[name] = i
            if i < len(intervals) and intervals[i][0] <= a:
                winner = name
                break
        attributed[winner] += b - a

    wall = hi - lo
    phases = tuple(
        PhaseSlice(name=name, ms=attributed[name],
                   fraction=attributed[name] / wall,
                   spans=span_counts[name])
        for name in PHASE_ORDER
    )

    # -- per-worker utilization lanes ----------------------------------------
    lanes = []
    bucket = wall / lane_width
    scale = (len(_RAMP) - 1) / bucket
    top_bucket = lane_width - 1
    for proc in sorted(by_proc):
        intervals = _union(by_proc[proc])
        busy = _total(intervals)
        # Distribute each (sorted, disjoint) interval into its buckets
        # arithmetically — O(intervals + buckets), no per-cell scan.
        cov = [0.0] * lane_width
        for s, e in intervals:
            bs = min(int((s - lo) / bucket), top_bucket)
            be = min(int((e - lo) / bucket), top_bucket)
            if bs == be:
                cov[bs] += e - s
            else:
                cov[bs] += lo + (bs + 1) * bucket - s
                for k in range(bs + 1, be):
                    cov[k] = bucket
                cov[be] += e - (lo + be * bucket)
        cells = [_RAMP[int(c * scale + 0.5)] for c in cov]
        lanes.append(WorkerLane(
            proc=proc, busy_ms=busy, utilization=busy / wall,
            tasks=tasks_by_proc.get(proc, 0), timeline="".join(cells)))

    # -- per-task cost split -------------------------------------------------
    # Rank by clipped duration first, then run the interval algebra only
    # for the ``top_tasks`` actually reported — the split is the priciest
    # per-task work and the report never shows more than the top N.
    ranked = []
    for span in task_spans:
        interval = _span_interval(span, lo, hi)
        if interval is not None:
            ranked.append((interval, span))
    ranked.sort(key=lambda r: (r[0][0] - r[0][1], r[1].trace_id))
    costs = []
    for interval, span in ranked[:top_tasks]:
        total = interval[1] - interval[0]
        window = [interval]
        compute = _total(_intersect(
            _union(compute_by_trace.get(span.trace_id, [])), window))
        rpc = _total(_intersect(
            _union(rpc_by_trace.get(span.trace_id, [])), window))
        costs.append(TaskCost(
            trace_id=span.trace_id, total_ms=total, compute_ms=compute,
            rpc_ms=rpc, wait_ms=max(0.0, total - compute - rpc),
            worker=worker_by_trace.get(span.trace_id, "-")))

    return DoctorReport(
        app=str(job.attrs.get("app", job.trace_id)),
        start_ms=lo, end_ms=hi,
        phases=phases, workers=tuple(lanes),
        slowest=tuple(costs),
        counts={
            "tasks": len(task_spans),
            "spans": len(spans),
            "rpcs": span_counts["rpc"],
            "wal_commits": wal_commits,
            "wal_syncs": wal_syncs,
        },
    )


def explain_phase_regression(committed: Mapping[str, float],
                             current: Mapping[str, float],
                             prefix: str = "doctor_",
                             suffix: str = "_ms",
                             min_growth_ms: float = 1.0) -> list[str]:
    """Which phase grew?  Human-readable lines for a throughput failure.

    ``committed``/``current`` are benchmark cell dicts holding
    ``<prefix><phase><suffix>`` entries (deterministic virtual-time
    milliseconds).  Returns lines sorted by absolute growth, largest
    first; empty when no phase grew by at least ``min_growth_ms``.
    """
    deltas = []
    for name in PHASE_ORDER:
        key = f"{prefix}{name}{suffix}"
        if key not in committed or key not in current:
            continue
        before, after = float(committed[key]), float(current[key])
        if after - before >= min_growth_ms:
            deltas.append((after - before, name, before, after))
    deltas.sort(key=lambda d: (-d[0], d[1]))
    lines = []
    for growth, name, before, after in deltas:
        ratio = after / before if before > 0 else float("inf")
        lines.append(
            f"doctor: phase '{name}' grew {before:,.1f} → {after:,.1f} "
            f"virtual ms ({ratio:.2f}x, +{growth:,.1f} ms)")
    return lines
