"""The rank-driven prefetcher (the application logic around the ranks).

"For each web page requested … the page's URL is scanned to see if it
belongs to a web page cluster.  If it does, the links contained in the
page to other pages on the local server are parsed out", the ranks of the
linked pages are computed, and "the important pages are then pre-fetched
into the cache for faster access."
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.prefetch.cache import PrefetchCache
from repro.apps.prefetch.webgraph import WebPageCluster

__all__ = ["PageRankPrefetcher"]


class PageRankPrefetcher:
    """Prefetches the highest-ranked pages linked from each request."""

    def __init__(
        self,
        cluster: WebPageCluster,
        ranks: np.ndarray,
        cache: Optional[PrefetchCache] = None,
        top_k: int = 3,
    ) -> None:
        if len(ranks) != len(cluster):
            raise ValueError("rank vector size must match the cluster")
        self.cluster = cluster
        self.ranks = np.asarray(ranks, dtype=float)
        self.cache = cache if cache is not None else PrefetchCache()
        self.top_k = top_k
        self.requests = 0
        self.prefetches = 0

    def handle_request(self, url: str) -> bool:
        """Serve a request; returns True on a cache hit.

        After serving, prefetch the top-k ranked pages this page links to.
        """
        self.requests += 1
        hit = self.cache.get(url) is not None
        page = self.cluster.by_url(url)
        if page is None:
            return hit  # outside the cluster: nothing to prefetch
        self.cache.put(url)
        candidates = sorted(
            page.links, key=lambda pid: self.ranks[pid], reverse=True
        )[: self.top_k]
        for page_id in candidates:
            target = self.cluster.page(page_id).url
            if target not in self.cache:
                self.cache.put(target)
                self.prefetches += 1
        return hit

    def predicted_next(self, url: str) -> list[str]:
        """The pages this prefetcher would fetch after ``url``."""
        page = self.cluster.by_url(url)
        if page is None:
            return []
        ranked = sorted(page.links, key=lambda pid: self.ranks[pid], reverse=True)
        return [self.cluster.page(pid).url for pid in ranked[: self.top_k]]
