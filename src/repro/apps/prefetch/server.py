"""Web-server access-time model.

"The overall objective of this application is to optimize access time
experienced by the web user" — this module closes the loop: a served
request costs ``cache_ms`` on a pre-fetch hit and ``fetch_ms`` on a miss,
and a synthetic rank-following browsing session measures the mean access
time with and without rank-based pre-fetching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps.prefetch.cache import PrefetchCache
from repro.apps.prefetch.predictor import PageRankPrefetcher
from repro.apps.prefetch.webgraph import WebPageCluster

__all__ = ["ServerTimings", "WebServerModel", "simulate_browsing_session"]


@dataclass(frozen=True)
class ServerTimings:
    """Per-request costs (ms): a cache hit vs a full backend fetch."""

    cache_ms: float = 3.0
    fetch_ms: float = 90.0


@dataclass
class AccessStats:
    requests: int = 0
    hits: int = 0
    total_ms: float = 0.0
    per_request_ms: list[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class WebServerModel:
    """Serves requests through (optionally) a rank-driven pre-fetch cache."""

    def __init__(
        self,
        cluster: WebPageCluster,
        ranks: Optional[np.ndarray] = None,
        timings: ServerTimings = ServerTimings(),
        cache_capacity: int = 48,
        top_k: int = 3,
    ) -> None:
        self.cluster = cluster
        self.timings = timings
        self.stats = AccessStats()
        if ranks is not None:
            self.prefetcher: Optional[PageRankPrefetcher] = PageRankPrefetcher(
                cluster, ranks, cache=PrefetchCache(capacity=cache_capacity),
                top_k=top_k,
            )
        else:
            self.prefetcher = None
            self._plain_cache = PrefetchCache(capacity=cache_capacity)

    def serve(self, url: str) -> float:
        """Serve one request; returns the user-visible access time (ms)."""
        if self.prefetcher is not None:
            hit = self.prefetcher.handle_request(url)
        else:
            hit = self._plain_cache.get(url) is not None
            self._plain_cache.put(url)
        latency = self.timings.cache_ms if hit else self.timings.fetch_ms
        self.stats.requests += 1
        self.stats.hits += int(hit)
        self.stats.total_ms += latency
        self.stats.per_request_ms.append(latency)
        return latency


def simulate_browsing_session(
    server: WebServerModel,
    ranks: np.ndarray,
    n_requests: int = 300,
    follow_rank_probability: float = 0.7,
    new_session_every: int = 25,
    seed: int = 7,
) -> AccessStats:
    """A user mostly clicking important links, occasionally starting over.

    The premise of the paper's approach: "if the requested pages link to
    an important page, that page has a higher probability of being the
    next one requested."
    """
    cluster = server.cluster
    rng = np.random.default_rng(seed)
    url = cluster.page(0).url
    for i in range(n_requests):
        server.serve(url)
        if (i + 1) % new_session_every == 0:
            url = cluster.page(int(rng.integers(len(cluster)))).url
            continue
        page = cluster.by_url(url)
        ranked = sorted(page.links, key=lambda p: ranks[p], reverse=True)
        if rng.random() < follow_rank_probability:
            next_id = ranked[0]
        else:
            next_id = int(rng.choice(page.links))
        url = cluster.page(next_id).url
    return server.stats
