"""The pre-fetch cache: bounded LRU keyed by URL."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

__all__ = ["PrefetchCache"]


class PrefetchCache:
    """LRU cache holding pre-fetched pages "for faster access"."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, url: str, content: Any = True) -> None:
        if url in self._entries:
            self._entries.move_to_end(url)
            self._entries[url] = content
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[url] = content

    def get(self, url: str) -> Optional[Any]:
        """Look up a page; records hit/miss statistics."""
        if url in self._entries:
            self.hits += 1
            self._entries.move_to_end(url)
            return self._entries[url]
        self.misses += 1
        return None

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
