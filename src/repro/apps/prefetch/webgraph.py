"""Synthetic web-page clusters.

"This scheme targets access to web page clusters, i.e. groups of closely
related pages such as pages of a single company."  The generator builds a
site with a preferential-attachment flavour: early pages (home, section
indexes) accumulate more in-links, giving the rank vector realistic skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["WebPage", "WebPageCluster", "generate_cluster"]


@dataclass
class WebPage:
    """A page in the cluster with its outgoing local links."""

    page_id: int
    url: str
    links: list[int] = field(default_factory=list)


class WebPageCluster:
    """A group of closely related pages on one server."""

    def __init__(self, domain: str, pages: list[WebPage]) -> None:
        self.domain = domain
        self.pages = pages
        self._by_url = {page.url: page for page in pages}

    def __len__(self) -> int:
        return len(self.pages)

    def page(self, page_id: int) -> WebPage:
        return self.pages[page_id]

    def by_url(self, url: str) -> Optional[WebPage]:
        return self._by_url.get(url)

    def contains_url(self, url: str) -> bool:
        """URL-scan step of the algorithm: does it belong to this cluster?"""
        return url in self._by_url

    def successors(self, page_id: int) -> list[int]:
        return list(self.pages[page_id].links)

    def adjacency(self) -> np.ndarray:
        """Dense 0/1 link matrix A[i, j] = 1 iff page j links to page i."""
        n = len(self.pages)
        a = np.zeros((n, n))
        for page in self.pages:
            for target in page.links:
                a[target, page.page_id] = 1.0
        return a


def generate_cluster(
    n_pages: int = 500,
    domain: str = "www.example.com",
    mean_links: float = 8.0,
    seed: int = 0,
) -> WebPageCluster:
    """Generate a synthetic cluster with preferential attachment.

    Every page links somewhere (no dangling pages — matching the paper's
    stochastic-matrix construction, which assumes n successors ≥ 1).
    """
    rng = np.random.default_rng(seed)
    pages = [
        WebPage(page_id=i, url=f"http://{domain}/page{i}.html")
        for i in range(n_pages)
    ]
    # Hierarchy bias: real sites link back to the home page and section
    # indexes, so early page ids attract links ∝ 1/(1+id); accumulated
    # popularity adds the rich-get-richer effect on top.
    hierarchy = 1.0 / (1.0 + np.arange(n_pages))
    popularity = np.ones(n_pages)
    for page in pages:
        k = max(1, int(rng.poisson(mean_links)))
        k = min(k, n_pages - 1)
        weights = hierarchy * popularity
        weights[page.page_id] = 0.0  # no self links
        weights /= weights.sum()
        targets = rng.choice(n_pages, size=k, replace=False, p=weights)
        page.links = sorted(int(t) for t in targets)
        popularity[targets] += 1.0
    return WebPageCluster(domain, pages)
