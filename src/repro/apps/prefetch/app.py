"""Framework adapter for the pre-fetching application (paper §5.1.3).

"In our experiments, the two matrices used are of sizes 500×500 and
500×1.  Tasks are created by dividing the matrices into strips of size
20, leading to 25 tasks.  The workers take these tasks from the JavaSpace
and perform the iterations in parallel."

One framework run distributes one power-iteration round (25 strip tasks);
``rounds`` chained runs converge to the rank vector (inter-iteration
dependencies are resolved at the master, which is why the paper calls the
aggregation the bottleneck: "Task Aggregation Time dominates … This
involves assimilating the results returned by the workers and creating
the resultant matrix").

Calibration: small inputs → tiny planning cost; aggregation per result is
the dominant master cost (Fig. 8's aggregation-bound curve, scaling to
~4 workers).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.prefetch.pagerank import matvec_strip, stochastic_matrix
from repro.apps.prefetch.webgraph import WebPageCluster, generate_cluster
from repro.core.application import Application, ClassLoadProfile, Task

__all__ = ["PrefetchApplication"]


class PrefetchApplication(Application):
    """One distributed PageRank power-iteration round in 25 strips."""

    app_id = "web-prefetch"

    def __init__(
        self,
        cluster: Optional[WebPageCluster] = None,
        n_pages: int = 500,
        strip_size: int = 20,
        damping: float = 0.85,
        x0: Optional[np.ndarray] = None,
        seed: int = 0,
        # calibrated cost model (reference ms, see DESIGN.md §5)
        task_cost: float = 1100.0,
        planning_cost: float = 8.0,
        aggregation_cost: float = 280.0,
    ) -> None:
        self.cluster = cluster if cluster is not None else generate_cluster(
            n_pages=n_pages, seed=seed
        )
        n = len(self.cluster)
        if n % strip_size != 0:
            raise ValueError("strip_size must divide the page count evenly")
        self.matrix = stochastic_matrix(self.cluster)
        self.strip_size = strip_size
        self.damping = damping
        self.x = np.full(n, 1.0 / n) if x0 is None else np.asarray(x0, dtype=float)
        self._task_cost = task_cost
        self._planning_cost = planning_cost
        self._aggregation_cost = aggregation_cost

    @property
    def n_strips(self) -> int:
        return len(self.cluster) // self.strip_size

    # -- functional behaviour ----------------------------------------------------------

    def plan(self) -> list[Task]:
        """25 strip tasks: each carries its matrix rows and the current x."""
        n = len(self.cluster)
        tasks = []
        for index in range(self.n_strips):
            r0 = index * self.strip_size
            r1 = r0 + self.strip_size
            tasks.append(
                Task(
                    task_id=index,
                    payload={
                        "rows": self.matrix[r0:r1],
                        "x": self.x,
                        "damping": self.damping,
                        "n": n,
                    },
                )
            )
        return tasks

    def execute(self, payload: Any) -> np.ndarray:
        return matvec_strip(
            payload["rows"], payload["x"], payload["damping"], payload["n"]
        )

    def aggregate(self, results: dict[int, Any]) -> Optional[np.ndarray]:
        """Assemble the resultant 500×1 matrix (the updated rank vector)."""
        if any(strip is None for strip in results.values()):
            return None  # compute_real=False run
        return np.concatenate([results[i] for i in sorted(results)])

    def advance(self, new_x: np.ndarray) -> None:
        """Feed one round's output into the next (inter-iteration dependency)."""
        self.x = np.asarray(new_x, dtype=float)

    # -- cost model ------------------------------------------------------------------------

    def task_cost_ms(self, task: Task) -> float:
        # Work is proportional to strip rows (matvec flops); the default
        # 20-row strip costs the calibrated base.
        return self._task_cost * (self.strip_size / 20.0)

    def planning_cost_ms(self, task: Task) -> float:
        # "This application has a low task planning overhead … primarily
        # due to the small amount of data … communicated".
        return self._planning_cost

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        # Fixed per-result bookkeeping plus size-proportional assimilation
        # ("assimilating the results … and creating the resultant matrix").
        fixed = 15.0
        proportional = (self._aggregation_cost - fixed) * (self.strip_size / 20.0)
        return fixed + proportional

    def classload_profile(self) -> ClassLoadProfile:
        # Fig. 11(a): the startup spike reaches ~75 % CPU.
        return ClassLoadProfile(work_ref_ms=880.0, demand_percent=75.0,
                                bundle_bytes=250_000)
