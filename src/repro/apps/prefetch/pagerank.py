"""PageRank: stochastic matrix + power iteration, full and strip-parallel.

The paper's construction: "If page j has n successors (links), then the
ij-th entry is 1/n if page i is one of those n successors of page j, 0
otherwise" — a column-stochastic matrix whose principal eigenvector
(computed by "matrix operations and iterative eigenvector computations")
is the rank vector.  "Parallelism is achieved by distributing the matrix
and performing the computation on local portions in parallel": each task
computes a horizontal strip of ``y = d·M·x + (1−d)/n``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.prefetch.webgraph import WebPageCluster

__all__ = [
    "stochastic_matrix",
    "power_iteration_step",
    "matvec_strip",
    "pagerank_power",
]


def stochastic_matrix(cluster: WebPageCluster) -> np.ndarray:
    """The paper's column-stochastic link matrix (dense, n×n)."""
    n = len(cluster)
    matrix = np.zeros((n, n))
    for page in cluster.pages:
        successors = page.links
        if not successors:
            # Dangling page: distribute uniformly (standard fix).
            matrix[:, page.page_id] = 1.0 / n
        else:
            matrix[successors, page.page_id] = 1.0 / len(successors)
    return matrix


def matvec_strip(
    strip: np.ndarray,
    x: np.ndarray,
    damping: float,
    n: int,
    teleport: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One task's work: rows ``strip`` of ``d·M·x + (1−d)·v``.

    ``teleport`` is the personalization vector ``v`` (rows matching the
    strip); ``None`` means the uniform ``1/n`` of classic PageRank.
    """
    if teleport is None:
        return damping * (strip @ x) + (1.0 - damping) / n
    return damping * (strip @ x) + (1.0 - damping) * teleport


def power_iteration_step(matrix: np.ndarray, x: np.ndarray,
                         damping: float = 0.85,
                         teleport: Optional[np.ndarray] = None) -> np.ndarray:
    """One full (sequential) power-iteration step — the reference the
    strip-parallel version must match exactly."""
    n = matrix.shape[0]
    return matvec_strip(matrix, x, damping, n, teleport)


def pagerank_power(
    matrix: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    x0: Optional[np.ndarray] = None,
    teleport: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, int]:
    """Power iteration to convergence; returns ``(ranks, iterations)``.

    A ``teleport`` distribution yields *personalized* PageRank: random
    restarts land on the given pages (e.g. a user's bookmarks), biasing
    importance toward their neighbourhood — useful for per-user
    pre-fetching policies.
    """
    n = matrix.shape[0]
    if teleport is not None:
        teleport = np.asarray(teleport, dtype=float)
        if teleport.shape != (n,):
            raise ValueError("teleport vector must have one entry per page")
        if teleport.min() < 0 or not np.isclose(teleport.sum(), 1.0):
            raise ValueError("teleport vector must be a probability distribution")
    x = np.full(n, 1.0 / n) if x0 is None else np.asarray(x0, dtype=float).copy()
    for iteration in range(1, max_iter + 1):
        x_next = power_iteration_step(matrix, x, damping, teleport)
        if np.abs(x_next - x).sum() < tol:
            return x_next, iteration
        x = x_next
    return x, max_iter
