"""Distributed PageRank driver: framework rounds until convergence.

The pre-fetch application distributes one power-iteration round per
framework run (25 strip tasks); this driver chains rounds — resolving
the inter-iteration dependency at the master, as the paper describes —
until the rank vector converges or a round budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps.prefetch.app import PrefetchApplication
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.node.cluster import Cluster
from repro.runtime.base import Runtime

__all__ = ["DistributedPageRank", "PageRankRun"]


@dataclass
class PageRankRun:
    ranks: np.ndarray
    rounds: int
    converged: bool
    total_parallel_ms: float
    per_round_ms: list[float] = field(default_factory=list)


class DistributedPageRank:
    """Runs PageRank rounds through the adaptive framework."""

    def __init__(
        self,
        runtime: Runtime,
        cluster: Cluster,
        app: PrefetchApplication,
        config: Optional[FrameworkConfig] = None,
        tol: float = 1e-8,
        max_rounds: int = 60,
    ) -> None:
        self.runtime = runtime
        self.cluster = cluster
        self.app = app
        self.config = config if config is not None else FrameworkConfig(
            poll_interval_ms=500.0
        )
        self.tol = tol
        self.max_rounds = max_rounds

    def run(self) -> PageRankRun:
        """Iterate to convergence; call from a runtime process."""
        per_round: list[float] = []
        converged = False
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            framework = AdaptiveClusterFramework(
                self.runtime, self.cluster, self.app, self.config
            )
            framework.start()
            report = framework.run()
            framework.shutdown()
            per_round.append(report.parallel_ms)
            new_x = report.solution
            delta = float(np.abs(new_x - self.app.x).sum())
            self.app.advance(new_x)
            if delta < self.tol:
                converged = True
                break
        return PageRankRun(
            ranks=self.app.x,
            rounds=rounds,
            converged=converged,
            total_parallel_ms=sum(per_round),
            per_round_ms=per_round,
        )
