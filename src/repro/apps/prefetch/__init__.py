"""PageRank-based web page pre-fetching (paper §5.1.3).

"The overall objective … is to optimize access time experienced by the
web user by pre-fetching web pages that are likely to be requested."
The page-rank-based approach scores the pages a requested page links to
and pre-fetches the most important ones.

Pieces:

* :mod:`webgraph` — synthetic web-page clusters with link structure and
  the paper's stochastic-matrix construction;
* :mod:`pagerank` — power-iteration eigenvector computation, full and
  strip-parallel;
* :mod:`cache` / :mod:`predictor` — the LRU pre-fetch cache and the
  rank-driven prefetcher that consumes the computed ranks;
* :mod:`app` — the framework adapter (500×500 matrix, strips of 20 →
  25 tasks).
"""

from repro.apps.prefetch.webgraph import WebPage, WebPageCluster, generate_cluster
from repro.apps.prefetch.pagerank import (
    matvec_strip,
    pagerank_power,
    power_iteration_step,
    stochastic_matrix,
)
from repro.apps.prefetch.cache import PrefetchCache
from repro.apps.prefetch.predictor import PageRankPrefetcher
from repro.apps.prefetch.app import PrefetchApplication
from repro.apps.prefetch.distributed import DistributedPageRank, PageRankRun
from repro.apps.prefetch.server import (
    ServerTimings,
    WebServerModel,
    simulate_browsing_session,
)

__all__ = [
    "WebPage",
    "WebPageCluster",
    "generate_cluster",
    "stochastic_matrix",
    "pagerank_power",
    "power_iteration_step",
    "matvec_strip",
    "PrefetchCache",
    "PageRankPrefetcher",
    "PrefetchApplication",
    "DistributedPageRank",
    "PageRankRun",
    "ServerTimings",
    "WebServerModel",
    "simulate_browsing_session",
]
