"""The paper's three evaluated applications.

* :mod:`repro.apps.options` — parallel Monte Carlo stock-option pricing
  (Broadie–Glasserman high/low estimators), §5.1.1;
* :mod:`repro.apps.raytrace` — parallel ray tracing (600×600 image in 24
  scanline strips), §5.1.2;
* :mod:`repro.apps.prefetch` — PageRank-based web-page pre-fetching
  (strip-parallel power iteration), §5.1.3.

Each package contains the real algorithm (usable standalone) plus an
``app`` module adapting it to :class:`repro.core.Application` with the
calibrated cost model (see DESIGN.md §5).
"""
