"""Option contract model.

"A stock option is defined by the underlying security, the option type
(call or put), the strike price, and an expiration date.  Furthermore,
factors such as interest rate and volatility affect the pricing."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class OptionType(enum.Enum):
    """Call (right to buy) or put (right to sell)."""

    CALL = "call"
    PUT = "put"


@dataclass(frozen=True)
class OptionContract:
    """An option on a single underlying following GBM."""

    option_type: OptionType
    spot: float              # current underlying price S0
    strike: float            # K
    rate: float              # risk-free rate r (annualized, cont. comp.)
    volatility: float        # sigma (annualized)
    maturity_years: float    # T
    exercise_dates: int = 1  # 1 = European; >1 = Bermudan/American-style

    def __post_init__(self) -> None:
        if self.spot <= 0 or self.strike <= 0:
            raise ValueError("spot and strike must be positive")
        if self.volatility < 0 or self.maturity_years <= 0:
            raise ValueError("volatility must be >=0 and maturity positive")
        if self.exercise_dates < 1:
            raise ValueError("need at least one exercise date")

    def payoff(self, prices: np.ndarray) -> np.ndarray:
        """Exercise value at the given underlying prices (vectorized)."""
        prices = np.asarray(prices, dtype=float)
        if self.option_type == OptionType.CALL:
            return np.maximum(prices - self.strike, 0.0)
        return np.maximum(self.strike - prices, 0.0)

    def step_discount(self) -> float:
        """Discount factor for one inter-exercise-date interval."""
        dt = self.maturity_years / self.exercise_dates
        return float(np.exp(-self.rate * dt))


#: The contract priced in the experiments (an at-the-money Bermudan call
#: with three exercise dates — the canonical Broadie–Glasserman setting).
PAPER_CONTRACT = OptionContract(
    option_type=OptionType.CALL,
    spot=100.0,
    strike=100.0,
    rate=0.05,
    volatility=0.2,
    maturity_years=1.0,
    exercise_dates=3,
)
