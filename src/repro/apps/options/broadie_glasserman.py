"""Broadie–Glasserman stochastic-tree estimators.

The method (Broadie & Glasserman 1997) prices American/Bermudan options by
simulating random trees: from each node, ``b`` independent GBM branches
lead to the next exercise date.  Two estimators are computed on the tree:

* the **high** estimator applies dynamic programming directly —
  ``Θ = max(payoff, disc · mean(children))`` — which is biased *high*
  because the same branches decide *and* value continuation;
* the **low** estimator removes that foresight bias with a leave-one-out
  rule: branch ``j``'s continuation decision uses the other ``b−1``
  branches, and its value uses branch ``j`` alone; averaging over ``j``
  gives a *low*-biased estimate.

The true price is bracketed: ``E[low] ≤ price ≤ E[high]`` — the paper's
"first [iteration] obtains a high estimate and the second … a low
estimate".  Everything is vectorized across simulations and tree levels:
level ``k`` holds an array of shape ``(n_sims, b**k)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.options.mc import simulate_gbm_steps
from repro.apps.options.model import OptionContract

__all__ = ["BGEstimate", "bg_tree_estimate", "bg_price_interval"]


@dataclass(frozen=True)
class BGEstimate:
    """Aggregatable sufficient statistics of one batch of tree simulations."""

    estimator: str          # "high" | "low"
    n_sims: int
    sum_values: float       # Σ root-node estimates
    sum_squares: float      # Σ root-node estimates²

    @property
    def mean(self) -> float:
        return self.sum_values / self.n_sims

    @property
    def stderr(self) -> float:
        if self.n_sims < 2:
            return float("inf")
        variance = (self.sum_squares - self.sum_values**2 / self.n_sims) / (
            self.n_sims - 1
        )
        return math.sqrt(max(0.0, variance) / self.n_sims)

    def merge(self, other: "BGEstimate") -> "BGEstimate":
        if other.estimator != self.estimator:
            raise ValueError("cannot merge high with low estimates")
        return BGEstimate(
            self.estimator,
            self.n_sims + other.n_sims,
            self.sum_values + other.sum_values,
            self.sum_squares + other.sum_squares,
        )


def _simulate_tree(
    contract: OptionContract,
    n_sims: int,
    branches: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Price levels: ``levels[k]`` has shape ``(n_sims, branches**k)``."""
    d = contract.exercise_dates
    dt = contract.maturity_years / d
    levels = [np.full((n_sims, 1), contract.spot)]
    for _ in range(d):
        prev = levels[-1]
        children = simulate_gbm_steps(prev, contract, dt, rng, branches=branches)
        levels.append(children.reshape(n_sims, -1))
    return levels


def _high_backward(
    contract: OptionContract, levels: list[np.ndarray], branches: int
) -> np.ndarray:
    disc = contract.step_discount()
    theta = contract.payoff(levels[-1])
    for k in range(len(levels) - 2, -1, -1):
        n_sims, width = levels[k].shape
        continuation = disc * theta.reshape(n_sims, width, branches).mean(axis=2)
        exercise = contract.payoff(levels[k])
        if k == 0:
            # The root is not exercisable "now" in the Bermudan convention
            # used here only if t=0 is not an exercise date; Broadie &
            # Glasserman allow immediate exercise, so we keep the max.
            theta = np.maximum(exercise, continuation)
        else:
            theta = np.maximum(exercise, continuation)
    return theta[:, 0]


def _low_backward(
    contract: OptionContract, levels: list[np.ndarray], branches: int
) -> np.ndarray:
    disc = contract.step_discount()
    b = branches
    eta = contract.payoff(levels[-1])
    for k in range(len(levels) - 2, -1, -1):
        n_sims, width = levels[k].shape
        child_vals = disc * eta.reshape(n_sims, width, b)
        exercise = contract.payoff(levels[k])[..., None]        # (n, w, 1)
        total = child_vals.sum(axis=2, keepdims=True)           # (n, w, 1)
        loo_mean = (total - child_vals) / (b - 1)               # leave-one-out
        # Exercise if it beats the continuation estimated WITHOUT branch j;
        # otherwise value continuation WITH branch j alone.
        eta_j = np.where(exercise >= loo_mean, exercise, child_vals)
        eta = eta_j.mean(axis=2)
    return eta[:, 0]


def bg_tree_estimate(
    contract: OptionContract,
    estimator: str,
    n_sims: int,
    branches: int = 5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> BGEstimate:
    """Run ``n_sims`` independent tree simulations of one estimator.

    This is exactly one of the paper's MC subtasks ("each MC task consists
    of two iterations, the first one obtains a high estimate and the
    second one obtains a low estimate").
    """
    if estimator not in ("high", "low"):
        raise ValueError(f"estimator must be 'high' or 'low': {estimator}")
    if branches < 2:
        raise ValueError("need at least 2 branches for the low estimator")
    if rng is None:
        rng = np.random.default_rng(seed if seed is not None else 0)
    levels = _simulate_tree(contract, n_sims, branches, rng)
    if estimator == "high":
        roots = _high_backward(contract, levels, branches)
    else:
        roots = _low_backward(contract, levels, branches)
    return BGEstimate(
        estimator=estimator,
        n_sims=n_sims,
        sum_values=float(roots.sum()),
        sum_squares=float((roots**2).sum()),
    )


def bg_price_interval(
    high: BGEstimate, low: BGEstimate, z: float = 1.96
) -> tuple[float, float, float]:
    """Point estimate and a conservative confidence interval.

    Following Broadie–Glasserman: the interval ``[low.mean − z·se_low,
    high.mean + z·se_high]`` covers the true price; the midpoint is the
    point estimate.
    """
    lo = low.mean - z * low.stderr
    hi = high.mean + z * high.stderr
    return (low.mean + high.mean) / 2.0, lo, hi
