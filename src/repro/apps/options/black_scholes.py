"""Black–Scholes closed form (validation reference for the MC pricers)."""

from __future__ import annotations

import math

from repro.apps.options.model import OptionContract, OptionType

__all__ = ["black_scholes_price", "black_scholes_greeks"]


def _norm_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def black_scholes_price(contract: OptionContract) -> float:
    """European price under Black–Scholes.

    Only valid for ``exercise_dates == 1``; used to validate the Monte
    Carlo machinery (a Bermudan price must lie at or above it for calls
    on non-dividend stock, equal in fact).
    """
    s, k = contract.spot, contract.strike
    r, sigma, t = contract.rate, contract.volatility, contract.maturity_years
    if sigma == 0.0:
        forward = s * math.exp(r * t)
        intrinsic = max(forward - k, 0.0) if contract.option_type == OptionType.CALL \
            else max(k - forward, 0.0)
        return math.exp(-r * t) * intrinsic
    d1 = (math.log(s / k) + (r + 0.5 * sigma * sigma) * t) / (sigma * math.sqrt(t))
    d2 = d1 - sigma * math.sqrt(t)
    if contract.option_type == OptionType.CALL:
        return s * _norm_cdf(d1) - k * math.exp(-r * t) * _norm_cdf(d2)
    return k * math.exp(-r * t) * _norm_cdf(-d2) - s * _norm_cdf(-d1)


def _norm_pdf(x: float) -> float:
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def black_scholes_greeks(contract: OptionContract) -> dict[str, float]:
    """Closed-form delta and vega (validation for the pathwise MC Greeks)."""
    s, k = contract.spot, contract.strike
    r, sigma, t = contract.rate, contract.volatility, contract.maturity_years
    if sigma == 0.0:
        raise ValueError("greeks undefined at zero volatility in this form")
    d1 = (math.log(s / k) + (r + 0.5 * sigma * sigma) * t) / (sigma * math.sqrt(t))
    delta = _norm_cdf(d1)
    if contract.option_type == OptionType.PUT:
        delta -= 1.0
    vega = s * math.sqrt(t) * _norm_pdf(d1)
    return {
        "price": black_scholes_price(contract),
        "delta": delta,
        "vega": vega,
    }
