"""Stock-option pricing by parallel Monte Carlo simulation.

The paper prices options with "Monte Carlo simulations, based on the
Broadie and Glasserman MC algorithm" — the stochastic-tree method for
American-style options that produces a *high* (upper-biased) and a *low*
(lower-biased) estimator bracketing the true price.  Includes GBM path
simulation, a European MC pricer and the Black–Scholes closed form for
validation.
"""

from repro.apps.options.model import OptionContract, OptionType
from repro.apps.options.black_scholes import black_scholes_price
from repro.apps.options.mc import european_mc_price, simulate_gbm_terminal
from repro.apps.options.broadie_glasserman import (
    BGEstimate,
    bg_tree_estimate,
)
from repro.apps.options.app import OptionPricingApplication

__all__ = [
    "OptionContract",
    "OptionType",
    "black_scholes_price",
    "european_mc_price",
    "simulate_gbm_terminal",
    "BGEstimate",
    "bg_tree_estimate",
    "OptionPricingApplication",
]
