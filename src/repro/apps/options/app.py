"""Framework adapter for the option-pricing application (paper §5.1.1).

"The number of simulations was set to 10 000.  The problem domain is
divided into 50 tasks, each comprising 100 simulations.  As each MC
simulation consists of two independent iterations, a total of 100
sub-tasks were created" — so ``plan`` emits 100 entries: 50 blocks × the
{high, low} estimator pair, 100 tree simulations each.

Calibration (DESIGN.md §5): per-task planning cost at the master is what
makes Fig. 6 flatten past ~4 workers — the master creates tasks slower
than ≥5 slow workers drain them.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps.options.broadie_glasserman import (
    BGEstimate,
    bg_price_interval,
    bg_tree_estimate,
)
from repro.apps.options.model import PAPER_CONTRACT, OptionContract
from repro.core.application import Application, ClassLoadProfile, Task

__all__ = ["OptionPricingApplication"]


class OptionPricingApplication(Application):
    """Parallel Broadie–Glasserman pricing as a bag of 100 subtasks."""

    app_id = "option-pricing"

    def __init__(
        self,
        contract: OptionContract = PAPER_CONTRACT,
        n_simulations: int = 10_000,
        n_blocks: int = 50,
        branches: int = 5,
        seed: int = 2001,
        # calibrated cost model (reference ms, see DESIGN.md §5)
        task_cost: float = 400.0,
        planning_cost: float = 260.0,
        aggregation_cost: float = 15.0,
    ) -> None:
        if n_simulations % (2 * n_blocks) != 0:
            raise ValueError("n_simulations must divide evenly into 2·n_blocks subtasks")
        self.contract = contract
        self.n_simulations = n_simulations
        self.n_blocks = n_blocks
        # 10 000 simulations = 50 blocks × {high, low} × 100 tree sims each.
        self.sims_per_block = n_simulations // (2 * n_blocks)
        self.branches = branches
        self.seed = seed
        self._task_cost = task_cost
        self._planning_cost = planning_cost
        self._aggregation_cost = aggregation_cost

    # -- functional behaviour ------------------------------------------------------

    def plan(self) -> list[Task]:
        tasks = []
        task_id = 0
        for block in range(self.n_blocks):
            for estimator in ("high", "low"):
                tasks.append(
                    Task(
                        task_id=task_id,
                        payload={
                            "estimator": estimator,
                            "n_sims": self.sims_per_block,
                            "seed": self.seed * 1_000_003 + block * 2
                            + (estimator == "low"),
                        },
                    )
                )
                task_id += 1
        return tasks

    def execute(self, payload: Any) -> BGEstimate:
        return bg_tree_estimate(
            self.contract,
            estimator=payload["estimator"],
            n_sims=payload["n_sims"],
            branches=self.branches,
            seed=payload["seed"],
        )

    def aggregate(self, results: dict[int, Any]) -> dict[str, float]:
        high: Optional[BGEstimate] = None
        low: Optional[BGEstimate] = None
        for estimate in results.values():
            if estimate is None:
                continue  # compute_real=False runs carry no payloads
            if estimate.estimator == "high":
                high = estimate if high is None else high.merge(estimate)
            else:
                low = estimate if low is None else low.merge(estimate)
        if high is None or low is None:
            return {"price": float("nan"), "ci_low": float("nan"),
                    "ci_high": float("nan"), "high": float("nan"),
                    "low": float("nan")}
        price, ci_low, ci_high = bg_price_interval(high, low)
        return {
            "price": price,
            "ci_low": ci_low,
            "ci_high": ci_high,
            "high": high.mean,
            "low": low.mean,
        }

    # -- cost model --------------------------------------------------------------------

    def task_cost_ms(self, task: Task) -> float:
        return self._task_cost * (task.payload["n_sims"] / 100.0)

    def planning_cost_ms(self, task: Task) -> float:
        return self._planning_cost

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        return self._aggregation_cost

    def classload_profile(self) -> ClassLoadProfile:
        # Fig. 9(a): the startup spike reaches ~80 % CPU.
        return ClassLoadProfile(work_ref_ms=900.0, demand_percent=80.0,
                                bundle_bytes=300_000)
