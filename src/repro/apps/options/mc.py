"""Geometric-Brownian-motion simulation and the European MC pricer."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.apps.options.model import OptionContract

__all__ = ["simulate_gbm_terminal", "simulate_gbm_steps", "european_mc_price",
           "european_mc_greeks"]


def simulate_gbm_terminal(
    contract: OptionContract, n_paths: int, rng: np.random.Generator
) -> np.ndarray:
    """Terminal prices S_T for ``n_paths`` GBM paths (exact lognormal step)."""
    t = contract.maturity_years
    drift = (contract.rate - 0.5 * contract.volatility**2) * t
    diffusion = contract.volatility * math.sqrt(t)
    z = rng.standard_normal(n_paths)
    return contract.spot * np.exp(drift + diffusion * z)


def simulate_gbm_steps(
    start_prices: np.ndarray,
    contract: OptionContract,
    dt_years: float,
    rng: np.random.Generator,
    branches: int = 1,
) -> np.ndarray:
    """One exact GBM step from each start price, ``branches`` children each.

    Returns an array of shape ``start_prices.shape + (branches,)`` when
    ``branches > 1``, else ``start_prices.shape``.
    """
    start_prices = np.asarray(start_prices, dtype=float)
    drift = (contract.rate - 0.5 * contract.volatility**2) * dt_years
    diffusion = contract.volatility * math.sqrt(dt_years)
    if branches == 1:
        z = rng.standard_normal(start_prices.shape)
        return start_prices * np.exp(drift + diffusion * z)
    z = rng.standard_normal(start_prices.shape + (branches,))
    return start_prices[..., None] * np.exp(drift + diffusion * z)


def european_mc_price(
    contract: OptionContract,
    n_paths: int,
    rng: Optional[np.random.Generator] = None,
    antithetic: bool = True,
) -> tuple[float, float]:
    """European Monte Carlo price; returns ``(price, standard_error)``.

    Uses antithetic variates by default (halves the variance at no cost —
    the kind of algorithmic optimization the performance guide asks for
    before any micro-tuning).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    t = contract.maturity_years
    discount = math.exp(-contract.rate * t)
    if antithetic:
        half = (n_paths + 1) // 2
        z = rng.standard_normal(half)
        z = np.concatenate([z, -z])[:n_paths]
    else:
        z = rng.standard_normal(n_paths)
    drift = (contract.rate - 0.5 * contract.volatility**2) * t
    terminal = contract.spot * np.exp(drift + contract.volatility * math.sqrt(t) * z)
    payoffs = discount * contract.payoff(terminal)
    price = float(payoffs.mean())
    stderr = float(payoffs.std(ddof=1) / math.sqrt(n_paths))
    return price, stderr


def european_mc_greeks(
    contract: OptionContract,
    n_paths: int,
    rng: Optional[np.random.Generator] = None,
) -> dict[str, float]:
    """Pathwise Monte Carlo Greeks for a European option.

    Pathwise derivative estimators (Glasserman, ch. 7):

    * delta: ``e^{-rT} · 1{exercised} · ∂S_T/∂S_0`` with
      ``∂S_T/∂S_0 = S_T / S_0`` under GBM (sign flipped for puts);
    * vega:  ``e^{-rT} · 1{exercised} · S_T · (ln(S_T/S_0) − (r+σ²/2)T)/σ``.

    Returns ``{"price", "delta", "vega"}`` from one set of common paths.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    from repro.apps.options.model import OptionType

    t = contract.maturity_years
    sigma = contract.volatility
    discount = math.exp(-contract.rate * t)
    terminal = simulate_gbm_terminal(contract, n_paths, rng)
    if contract.option_type == OptionType.CALL:
        exercised = terminal > contract.strike
        sign = 1.0
    else:
        exercised = terminal < contract.strike
        sign = -1.0
    price = float((discount * contract.payoff(terminal)).mean())
    delta = float(
        (discount * sign * exercised * terminal / contract.spot).mean()
    )
    dst_dsigma = terminal * (
        np.log(terminal / contract.spot)
        - (contract.rate + 0.5 * sigma**2) * t
    ) / sigma
    vega = float((discount * sign * exercised * dst_dsigma).mean())
    return {"price": price, "delta": delta, "vega": vega}
