"""Parallel ray tracing (paper §5.1.2).

A vectorized Whitted-style ray tracer: rays are traced in NumPy batches
(one batch per scanline strip), with Phong shading, hard shadows and
specular reflections.  "In our experiments the 600×600 image plane was
divided into rectangular slices of 25×600 thus creating 24 independent
tasks" — the replicated-worker pattern the application adapter exposes.
"""

from repro.apps.raytrace.geometry import CheckerPlane, Material, Sphere
from repro.apps.raytrace.scene import Light, Scene, default_scene
from repro.apps.raytrace.camera import Camera
from repro.apps.raytrace.render import render_image, render_rows
from repro.apps.raytrace.sceneio import (
    load_scene,
    save_scene,
    scene_from_dict,
    scene_to_dict,
)
from repro.apps.raytrace.app import RayTracingApplication

__all__ = [
    "Material",
    "Sphere",
    "CheckerPlane",
    "Light",
    "Scene",
    "default_scene",
    "Camera",
    "render_rows",
    "render_image",
    "scene_to_dict",
    "scene_from_dict",
    "load_scene",
    "save_scene",
    "RayTracingApplication",
]
