"""Scene (de)serialization: plain-dict / JSON scene descriptions.

Lets users author scenes in JSON files and feed them to the distributed
renderer without writing Python:

    {"objects": [{"type": "sphere", "center": [0,1,4], "radius": 1,
                  "material": {"color": [1,0,0], "reflectivity": 0.3}}],
     "lights": [{"position": [-4,6,0], "intensity": 0.9}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.apps.raytrace.geometry import CheckerPlane, Material, Sphere
from repro.apps.raytrace.scene import Light, Scene

__all__ = ["scene_to_dict", "scene_from_dict", "load_scene", "save_scene"]

_MATERIAL_FIELDS = ("diffuse", "specular", "shininess", "reflectivity",
                    "transparency", "refractive_index")


def _material_to_dict(material: Material) -> dict[str, Any]:
    out: dict[str, Any] = {"color": list(material.color)}
    defaults = Material(color=(0, 0, 0))
    for field in _MATERIAL_FIELDS:
        value = getattr(material, field)
        if value != getattr(defaults, field):
            out[field] = value
    return out


def _material_from_dict(data: dict[str, Any]) -> Material:
    kwargs = {k: data[k] for k in _MATERIAL_FIELDS if k in data}
    return Material(color=tuple(data["color"]), **kwargs)


def scene_to_dict(scene: Scene) -> dict[str, Any]:
    """A JSON-serializable description of ``scene``."""
    objects = []
    for obj in scene.objects:
        if isinstance(obj, Sphere):
            objects.append({
                "type": "sphere",
                "center": list(obj.center),
                "radius": obj.radius,
                "material": _material_to_dict(obj.material),
            })
        elif isinstance(obj, CheckerPlane):
            objects.append({
                "type": "checker-plane",
                "height": obj.height,
                "square": obj.square,
                "alt_color": list(obj.alt_color),
                "material": _material_to_dict(obj.material),
            })
        else:  # pragma: no cover - future primitive types
            raise ValueError(f"cannot serialize {type(obj).__name__}")
    return {
        "objects": objects,
        "lights": [
            {"position": list(light.position), "intensity": light.intensity}
            for light in scene.lights
        ],
        "ambient": scene.ambient,
        "background": list(scene.background),
    }


def scene_from_dict(data: dict[str, Any]) -> Scene:
    """Rebuild a scene from :func:`scene_to_dict` output (or hand-written
    JSON of the same shape)."""
    objects = []
    for spec in data.get("objects", []):
        kind = spec.get("type")
        material = _material_from_dict(spec["material"])
        if kind == "sphere":
            objects.append(Sphere(center=tuple(spec["center"]),
                                  radius=float(spec["radius"]),
                                  material=material))
        elif kind == "checker-plane":
            objects.append(CheckerPlane(
                height=float(spec.get("height", 0.0)),
                material=material,
                alt_color=tuple(spec.get("alt_color", (0.1, 0.1, 0.1))),
                square=float(spec.get("square", 1.0)),
            ))
        else:
            raise ValueError(f"unknown object type {kind!r}")
    lights = tuple(
        Light(position=tuple(spec["position"]),
              intensity=float(spec.get("intensity", 1.0)))
        for spec in data.get("lights", [])
    )
    return Scene(
        objects=tuple(objects),
        lights=lights,
        ambient=float(data.get("ambient", 0.08)),
        background=tuple(data.get("background", (0.15, 0.18, 0.30))),
    )


def save_scene(scene: Scene, path: Union[str, Path]) -> None:
    """Write ``scene`` as indented JSON to ``path``."""
    Path(path).write_text(json.dumps(scene_to_dict(scene), indent=2))


def load_scene(path: Union[str, Path]) -> Scene:
    """Read a scene from a JSON file produced by :func:`save_scene`."""
    return scene_from_dict(json.loads(Path(path).read_text()))
