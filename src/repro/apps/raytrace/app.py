"""Framework adapter for parallel ray tracing (paper §5.1.2).

"The 600×600 image plane was divided into rectangular slices of 25×600
thus creating 24 independent tasks.  The input for each task consisted of
the four coordinates describing the region of computation.  The output
produced by each task was relatively large, consisting of an array of
pixel values."

Calibration: compute-dominated coarse tasks, constant ≈500 ms total
planning (Fig. 7's flat planning curve), aggregation that follows the
max worker time.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.raytrace.camera import Camera
from repro.apps.raytrace.render import render_rows
from repro.apps.raytrace.scene import Scene, default_scene
from repro.core.application import Application, ClassLoadProfile, Task

__all__ = ["RayTracingApplication"]


class RayTracingApplication(Application):
    """600×600 frame in 24 scanline strips of 25 rows."""

    app_id = "ray-tracing"

    def __init__(
        self,
        scene: Optional[Scene] = None,
        camera: Optional[Camera] = None,
        width: int = 600,
        height: int = 600,
        strip_rows: int = 25,
        max_depth: int = 3,
        # calibrated cost model (reference ms, see DESIGN.md §5)
        task_cost: float = 2500.0,
        planning_cost: float = 20.0,
        aggregation_cost: float = 30.0,
    ) -> None:
        if height % strip_rows != 0:
            raise ValueError("strip_rows must divide height evenly")
        self.scene = scene if scene is not None else default_scene()
        self.camera = camera if camera is not None else Camera()
        self.width = width
        self.height = height
        self.strip_rows = strip_rows
        self.max_depth = max_depth
        self._task_cost = task_cost
        self._planning_cost = planning_cost
        self._aggregation_cost = aggregation_cost

    @property
    def n_strips(self) -> int:
        return self.height // self.strip_rows

    # -- functional behaviour --------------------------------------------------------

    def plan(self) -> list[Task]:
        tasks = []
        for index in range(self.n_strips):
            y0 = index * self.strip_rows
            # "four coordinates describing the region of computation"
            region = (0, y0, self.width, y0 + self.strip_rows)
            tasks.append(Task(task_id=index, payload={"region": region}))
        return tasks

    def execute(self, payload: Any) -> np.ndarray:
        x0, y0, x1, y1 = payload["region"]
        assert x0 == 0 and x1 == self.width, "strips span full width"
        return render_rows(
            self.scene, self.camera, y0, y1, self.width, self.height, self.max_depth
        )

    def aggregate(self, results: dict[int, Any]) -> Optional[np.ndarray]:
        """Compose the image from the scanline strips."""
        if any(strip is None for strip in results.values()):
            return None  # compute_real=False run
        strips = [results[i] for i in sorted(results)]
        return np.vstack(strips)

    # -- cost model ----------------------------------------------------------------------

    def task_cost_ms(self, task: Task) -> float:
        return self._task_cost

    def planning_cost_ms(self, task: Task) -> float:
        # 24 tasks × ~20 ms ≈ the constant 500 ms planning line of Fig. 7.
        return self._planning_cost

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        return self._aggregation_cost

    def classload_profile(self) -> ClassLoadProfile:
        # Fig. 10(a): the startup spike reaches ~42 % CPU.
        return ClassLoadProfile(work_ref_ms=850.0, demand_percent=42.0,
                                bundle_bytes=350_000)
