"""Batch renderer: shade whole ray waves per bounce.

The shading loop is organized wave-by-wave instead of ray-by-ray: each
iteration intersects the current wave of rays, shades the hits (ambient +
Phong diffuse/specular with hard shadows), accumulates each ray's
contribution weighted by its running throughput, and spawns the next wave
— reflected rays (mirror term) plus refracted rays (dielectric term,
Snell's law with total-internal-reflection fallback).  Everything stays
in NumPy; no per-pixel Python.

Anti-aliasing is regular-grid supersampling: ``samples_per_axis`` ² rays
per pixel at fixed sub-pixel offsets, averaged — deterministic, so
parallel strips still compose bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.raytrace.camera import Camera
from repro.apps.raytrace.scene import Scene

__all__ = ["render_rows", "render_image"]

_EPS = 1e-4
_MIN_WEIGHT = 1e-3


def _local_shading(scene: Scene, mat, base, points, normals, view) -> np.ndarray:
    shaded = scene.ambient * base
    for light in scene.lights:
        to_light = np.asarray(light.position) - points
        dist = np.linalg.norm(to_light, axis=1)
        l_dir = to_light / dist[:, None]
        shadow_origin = points + normals * _EPS
        lit = ~scene.occluded(shadow_origin, l_dir, dist - 2 * _EPS)
        if not lit.any():
            continue
        lambert = np.maximum(np.einsum("ij,ij->i", normals, l_dir), 0.0)
        half_vec = l_dir + view
        half_norm = np.linalg.norm(half_vec, axis=1, keepdims=True)
        half_vec = np.divide(half_vec, half_norm, out=np.zeros_like(half_vec),
                             where=half_norm > 0)
        spec_angle = np.maximum(np.einsum("ij,ij->i", normals, half_vec), 0.0)
        diffuse = mat.diffuse * lambert[:, None] * base
        specular = (mat.specular * spec_angle**mat.shininess)[:, None]
        contribution = light.intensity * (diffuse + specular)
        contribution[~lit] = 0.0
        shaded += contribution
    return shaded


def _refract(directions: np.ndarray, normals: np.ndarray,
             eta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Snell refraction for unit ``directions`` against unit ``normals``
    (oriented against the ray).  Returns (refracted_dirs, tir_mask)."""
    cos_in = -np.einsum("ij,ij->i", directions, normals)
    sin2_t = eta**2 * np.maximum(0.0, 1.0 - cos_in**2)
    tir = sin2_t > 1.0
    cos_t = np.sqrt(np.maximum(0.0, 1.0 - sin2_t))
    refracted = (
        eta[:, None] * directions
        + (eta * cos_in - cos_t)[:, None] * normals
    )
    norm = np.linalg.norm(refracted, axis=1, keepdims=True)
    refracted = np.divide(refracted, norm, out=refracted, where=norm > 0)
    return refracted, tir


def _shade_batch(
    scene: Scene,
    origins: np.ndarray,
    directions: np.ndarray,
    max_depth: int,
) -> np.ndarray:
    n = origins.shape[0]
    color = np.zeros((n, 3))
    # The current wave: rays with a pixel index and a throughput weight.
    pix = np.arange(n)
    weight = np.ones(n)

    for depth in range(max_depth + 1):
        if pix.size == 0:
            break
        obj_index, t = scene.nearest_hit(origins, directions)
        miss = obj_index < 0
        if miss.any():
            np.add.at(color, pix[miss],
                      weight[miss, None] * np.asarray(scene.background))
        hit = ~miss
        if not hit.any():
            break

        h_pix = pix[hit]
        h_origins = origins[hit]
        h_dirs = directions[hit]
        h_t = t[hit]
        h_obj = obj_index[hit]
        h_weight = weight[hit]
        points = h_origins + h_dirs * h_t[:, None]

        next_origins: list[np.ndarray] = []
        next_dirs: list[np.ndarray] = []
        next_pix: list[np.ndarray] = []
        next_weight: list[np.ndarray] = []

        for index, obj in enumerate(scene.objects):
            mask = h_obj == index
            if not mask.any():
                continue
            mat = obj.material
            pts = points[mask]
            nrm = obj.normals(pts)
            dirs = h_dirs[mask]
            w = h_weight[mask]
            p = h_pix[mask]

            # Orient normals against the incoming rays; entering rays use
            # 1/ior, exiting rays ior (for the dielectric term).
            inside = np.einsum("ij,ij->i", dirs, nrm) > 0.0
            oriented = np.where(inside[:, None], -nrm, nrm)

            local_fraction = max(0.0, 1.0 - mat.reflectivity - mat.transparency)
            if local_fraction > 0.0:
                base = obj.colors(pts)
                local = _local_shading(scene, mat, base, pts, oriented, -dirs)
                np.add.at(color, p, (w * local_fraction)[:, None] * local)

            reflect_weight = np.full(pts.shape[0], mat.reflectivity) * w

            if mat.transparency > 0.0:
                eta = np.where(inside, mat.refractive_index,
                               1.0 / mat.refractive_index)
                refracted, tir = _refract(dirs, oriented, eta)
                through = ~tir
                if through.any():
                    next_origins.append(pts[through] - oriented[through] * _EPS)
                    next_dirs.append(refracted[through])
                    next_pix.append(p[through])
                    next_weight.append(w[through] * mat.transparency)
                # Total internal reflection: the dielectric term reflects.
                reflect_weight[tir] += mat.transparency * w[tir]

            strong = reflect_weight > _MIN_WEIGHT
            if strong.any():
                d = dirs[strong]
                o_n = oriented[strong]
                reflected = d - 2.0 * np.einsum("ij,ij->i", d, o_n)[:, None] * o_n
                reflected /= np.linalg.norm(reflected, axis=1, keepdims=True)
                next_origins.append(pts[strong] + o_n * _EPS)
                next_dirs.append(reflected)
                next_pix.append(p[strong])
                next_weight.append(reflect_weight[strong])

        if not next_pix:
            break
        origins = np.concatenate(next_origins)
        directions = np.concatenate(next_dirs)
        pix = np.concatenate(next_pix)
        weight = np.concatenate(next_weight)
        keep = weight > _MIN_WEIGHT
        origins, directions = origins[keep], directions[keep]
        pix, weight = pix[keep], weight[keep]

    return np.clip(color, 0.0, 1.0)


#: Fixed sub-pixel sample offsets per AA level (regular grid).
def _sample_offsets(samples_per_axis: int) -> list[tuple[float, float]]:
    if samples_per_axis < 1:
        raise ValueError("samples_per_axis must be >= 1")
    if samples_per_axis == 1:
        return [(0.5, 0.5)]
    step = 1.0 / samples_per_axis
    return [
        ((i + 0.5) * step, (j + 0.5) * step)
        for j in range(samples_per_axis)
        for i in range(samples_per_axis)
    ]


def render_rows(
    scene: Scene,
    camera: Camera,
    y0: int,
    y1: int,
    width: int,
    height: int,
    max_depth: int = 3,
    samples_per_axis: int = 1,
) -> np.ndarray:
    """Render pixel rows ``[y0, y1)``; returns uint8 RGB of shape
    ``(y1-y0, width, 3)`` — one strip task's output ("an array of pixel
    values", relatively large, as the paper notes).

    ``samples_per_axis`` > 1 enables n×n supersampled anti-aliasing.
    """
    offsets = _sample_offsets(samples_per_axis)
    accum = np.zeros(((y1 - y0) * width, 3))
    for offset in offsets:
        origins, directions = camera.rays_for_rows(y0, y1, width, height,
                                                   offset=offset)
        accum += _shade_batch(scene, origins, directions, max_depth)
    colors = accum / len(offsets)
    return (colors.reshape(y1 - y0, width, 3) * 255.0).astype(np.uint8)


def render_image(
    scene: Scene,
    camera: Camera,
    width: int,
    height: int,
    max_depth: int = 3,
    samples_per_axis: int = 1,
) -> np.ndarray:
    """Full-frame reference render (sequential baseline)."""
    return render_rows(scene, camera, 0, height, width, height, max_depth,
                       samples_per_axis)
