"""Scene primitives with batch ray intersection.

Every intersection routine takes ray origins/directions of shape (N, 3)
and returns hit distances of shape (N,) with ``inf`` for misses — rays
are processed in NumPy batches rather than Python loops (the vectorize-
your-inner-loop rule from the performance guides).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Material", "Sphere", "CheckerPlane"]

_EPS = 1e-6


@dataclass(frozen=True)
class Material:
    """Phong material with optional mirror and dielectric terms.

    Colors are RGB in [0, 1].  ``reflectivity`` + ``transparency`` must
    not exceed 1; the remainder is the local (diffuse/specular) term.
    Refraction follows Snell's law with ``refractive_index`` and falls
    back to reflection on total internal reflection.
    """

    color: tuple[float, float, float]
    diffuse: float = 0.8
    specular: float = 0.5
    shininess: float = 50.0
    reflectivity: float = 0.0
    transparency: float = 0.0
    refractive_index: float = 1.5

    def __post_init__(self) -> None:
        if self.reflectivity + self.transparency > 1.0 + 1e-9:
            raise ValueError("reflectivity + transparency must be <= 1")

    def base_colors(self, points: np.ndarray) -> np.ndarray:
        """Surface color at each point, shape (N, 3)."""
        return np.broadcast_to(np.asarray(self.color, dtype=float),
                               (points.shape[0], 3)).copy()


@dataclass(frozen=True)
class Sphere:
    center: tuple[float, float, float]
    radius: float
    material: Material

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        center = np.asarray(self.center, dtype=float)
        oc = origins - center
        # directions are unit vectors: a == 1
        b = 2.0 * np.einsum("ij,ij->i", oc, directions)
        c = np.einsum("ij,ij->i", oc, oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        hit = disc >= 0.0
        t = np.full(origins.shape[0], np.inf)
        if not hit.any():
            return t
        sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
        t_near = (-b - sqrt_disc) / 2.0
        t_far = (-b + sqrt_disc) / 2.0
        # Nearest positive root.
        chosen = np.where(t_near > _EPS, t_near, t_far)
        valid = hit & (chosen > _EPS)
        t[valid] = chosen[valid]
        return t

    def normals(self, points: np.ndarray) -> np.ndarray:
        normals = points - np.asarray(self.center, dtype=float)
        return normals / np.linalg.norm(normals, axis=1, keepdims=True)

    def colors(self, points: np.ndarray) -> np.ndarray:
        return self.material.base_colors(points)


@dataclass(frozen=True)
class CheckerPlane:
    """A horizontal plane y = height with a checkerboard texture."""

    height: float
    material: Material
    alt_color: tuple[float, float, float] = (0.1, 0.1, 0.1)
    square: float = 1.0

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        dy = directions[:, 1]
        t = np.full(origins.shape[0], np.inf)
        moving = np.abs(dy) > _EPS
        t_hit = np.where(moving, (self.height - origins[:, 1]) / np.where(moving, dy, 1.0),
                         np.inf)
        valid = moving & (t_hit > _EPS)
        t[valid] = t_hit[valid]
        return t

    def normals(self, points: np.ndarray) -> np.ndarray:
        n = np.zeros_like(points)
        n[:, 1] = 1.0
        return n

    def colors(self, points: np.ndarray) -> np.ndarray:
        checker = (
            np.floor(points[:, 0] / self.square).astype(int)
            + np.floor(points[:, 2] / self.square).astype(int)
        ) % 2
        base = np.asarray(self.material.color, dtype=float)
        alt = np.asarray(self.alt_color, dtype=float)
        return np.where(checker[:, None] == 0, base, alt)
