"""Pinhole camera generating primary rays per scanline strip."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Camera"]


@dataclass(frozen=True)
class Camera:
    """Axis-aligned pinhole camera looking down +z."""

    position: tuple[float, float, float] = (0.0, 1.2, -2.5)
    fov_degrees: float = 60.0

    def rays_for_rows(
        self,
        y0: int,
        y1: int,
        width: int,
        height: int,
        offset: tuple[float, float] = (0.5, 0.5),
    ) -> tuple[np.ndarray, np.ndarray]:
        """Origins/directions for pixel rows ``y0 ≤ y < y1``.

        Returns arrays of shape ``((y1-y0)*width, 3)``, row-major —
        exactly one strip task's primary rays.  ``offset`` is the
        sub-pixel sample position in [0, 1)² (anti-aliasing shoots
        several offsets per pixel and averages).
        """
        if not (0 <= y0 < y1 <= height):
            raise ValueError(f"bad row range [{y0}, {y1}) for height {height}")
        ox, oy = offset
        aspect = width / height
        half = np.tan(np.radians(self.fov_degrees) / 2.0)
        xs = (2.0 * (np.arange(width) + ox) / width - 1.0) * half * aspect
        ys = (1.0 - 2.0 * (np.arange(y0, y1) + oy) / height) * half
        grid_x, grid_y = np.meshgrid(xs, ys)
        directions = np.stack(
            [grid_x.ravel(), grid_y.ravel(), np.ones(grid_x.size)], axis=1
        )
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        origins = np.broadcast_to(
            np.asarray(self.position, dtype=float), directions.shape
        ).copy()
        return origins, directions
