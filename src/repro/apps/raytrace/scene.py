"""Scene description and the benchmark scene."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from repro.apps.raytrace.geometry import CheckerPlane, Material, Sphere

__all__ = ["Light", "Scene", "default_scene"]

Primitive = Union[Sphere, CheckerPlane]


@dataclass(frozen=True)
class Light:
    """A point light."""

    position: tuple[float, float, float]
    intensity: float = 1.0


@dataclass(frozen=True)
class Scene:
    objects: tuple[Primitive, ...]
    lights: tuple[Light, ...]
    ambient: float = 0.08
    background: tuple[float, float, float] = (0.15, 0.18, 0.30)

    def nearest_hit(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-ray nearest object index (−1 = miss) and hit distance."""
        n = origins.shape[0]
        best_t = np.full(n, np.inf)
        best_obj = np.full(n, -1, dtype=int)
        for index, obj in enumerate(self.objects):
            t = obj.intersect(origins, directions)
            closer = t < best_t
            best_t[closer] = t[closer]
            best_obj[closer] = index
        return best_obj, best_t

    def occluded(
        self, points: np.ndarray, directions: np.ndarray, max_dist: np.ndarray
    ) -> np.ndarray:
        """Shadow test: is anything between each point and its light?"""
        blocked = np.zeros(points.shape[0], dtype=bool)
        for obj in self.objects:
            t = obj.intersect(points, directions)
            blocked |= t < max_dist
            if blocked.all():
                break
        return blocked


def default_scene() -> Scene:
    """The benchmark scene: three spheres over a checkered floor."""
    red = Material(color=(0.95, 0.25, 0.20), diffuse=0.9, specular=0.8,
                   shininess=120.0, reflectivity=0.25)
    green = Material(color=(0.20, 0.80, 0.30), diffuse=0.9, specular=0.4,
                     shininess=40.0, reflectivity=0.15)
    mirror = Material(color=(0.85, 0.85, 0.95), diffuse=0.3, specular=1.0,
                      shininess=300.0, reflectivity=0.65)
    floor = Material(color=(0.9, 0.9, 0.9), diffuse=0.9, specular=0.1,
                     shininess=10.0, reflectivity=0.1)
    return Scene(
        objects=(
            Sphere(center=(0.0, 1.0, 4.0), radius=1.0, material=mirror),
            Sphere(center=(-1.9, 0.6, 3.0), radius=0.6, material=red),
            Sphere(center=(1.8, 0.8, 3.2), radius=0.8, material=green),
            CheckerPlane(height=0.0, material=floor),
        ),
        lights=(
            Light(position=(-4.0, 6.0, 0.0), intensity=0.9),
            Light(position=(3.0, 4.0, -1.0), intensity=0.5),
        ),
    )
