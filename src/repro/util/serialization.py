"""Serialization helpers emulating JavaSpaces entry requirements.

JavaSpaces requires entries to be ``Serializable``; the space proxy
serializes entry fields before transmitting them.  We emulate this with
pickle: :func:`check_serializable` enforces the constraint at write time
and :func:`serialized_size` provides the byte size used by network and
planning cost models.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import EntryError

_PROTOCOL = pickle.HIGHEST_PROTOCOL


def serialize(obj: Any) -> bytes:
    """Pickle ``obj``, raising :class:`EntryError` if it cannot be pickled."""
    try:
        return pickle.dumps(obj, protocol=_PROTOCOL)
    except Exception as exc:  # pickle raises a zoo of types
        raise EntryError(f"object of type {type(obj).__name__} is not serializable: {exc}") from exc


def deserialize(data: bytes) -> Any:
    """Unpickle bytes produced by :func:`serialize`."""
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise EntryError(f"cannot deserialize payload: {exc}") from exc


def serialized_size(obj: Any) -> int:
    """Byte size of ``obj`` once serialized (used by cost models)."""
    return len(serialize(obj))


def check_serializable(obj: Any) -> None:
    """Raise :class:`EntryError` unless ``obj`` survives a pickle round trip."""
    serialize(obj)
