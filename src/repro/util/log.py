"""Logging: thin wrapper over stdlib ``logging`` with a repro namespace.

Components log under ``repro.<component>``; :func:`configure` installs a
handler with virtual-time-friendly formatting for CLI runs.  Library code
never configures logging on import (standard library etiquette).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure"]

_ROOT = "repro"


def get_logger(component: str) -> logging.Logger:
    """Logger for a framework component (e.g. ``netmgmt``, ``worker``)."""
    return logging.getLogger(f"{_ROOT}.{component}")


def configure(level: int = logging.INFO, stream=None, force: bool = False) -> None:
    """Attach a stream handler to the repro root logger (idempotent)."""
    root = logging.getLogger(_ROOT)
    if root.handlers and not force:
        return
    if force:
        root.handlers.clear()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(name)s %(levelname)s %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)
