"""Logging: thin wrapper over stdlib ``logging`` with a repro namespace.

Components log under ``repro.<component>``; :func:`configure` installs a
handler with virtual-time-friendly formatting for CLI runs.  Library code
never configures logging on import (standard library etiquette).

Passing ``clock`` (usually ``runtime.now``) prefixes every record with
the runtime clock — ``[t=12.345]`` — via a logging filter, and passing
``tracer`` adds the active span's ``%(trace_id)s`` so log lines correlate
with the telemetry trace.  Both default off, keeping the plain format.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Callable, Optional

__all__ = ["get_logger", "configure"]

_ROOT = "repro"


def get_logger(component: str) -> logging.Logger:
    """Logger for a framework component (e.g. ``netmgmt``, ``worker``)."""
    return logging.getLogger(f"{_ROOT}.{component}")


class _RuntimeContextFilter(logging.Filter):
    """Stamp records with the runtime clock and the active trace.

    A filter rather than a Formatter subclass so the fields are plain
    ``%()``-style attributes any downstream formatter can use.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 tracer: Any = None) -> None:
        super().__init__()
        self._clock = clock
        self._tracer = tracer

    def filter(self, record: logging.LogRecord) -> bool:
        record.vt = self._clock() if self._clock is not None else 0.0
        span = self._tracer.current if self._tracer is not None else None
        trace_id = getattr(span, "trace_id", None) if span is not None else None
        record.trace_id = trace_id if trace_id is not None else "-"
        return True


def configure(level: int = logging.INFO, stream=None, force: bool = False,
              clock: Optional[Callable[[], float]] = None,
              tracer: Any = None) -> None:
    """Attach a stream handler to the repro root logger (idempotent).

    ``clock``: zero-arg callable returning the current runtime time in
    ms; adds a ``[t=12.345]`` prefix.  ``tracer``: a telemetry tracer;
    adds the active span's trace ID as ``[<trace_id>]`` (``[-]`` when no
    span is active).
    """
    root = logging.getLogger(_ROOT)
    if root.handlers and not force:
        return
    if force:
        root.handlers.clear()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    parts = []
    if clock is not None:
        parts.append("[t=%(vt).3f]")
    parts.append("%(name)s %(levelname)s")
    if tracer is not None:
        parts.append("[%(trace_id)s]")
    parts.append("%(message)s")
    handler.setFormatter(logging.Formatter(" ".join(parts)))
    if clock is not None or tracer is not None:
        handler.addFilter(_RuntimeContextFilter(clock, tracer))
    root.addHandler(handler)
    root.setLevel(level)
