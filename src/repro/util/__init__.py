"""Small shared utilities: id generation, serialization checks, time helpers."""

from repro.util.ids import IdGenerator, uuid_hex
from repro.util.serialization import serialized_size, check_serializable

__all__ = ["IdGenerator", "uuid_hex", "serialized_size", "check_serializable"]
