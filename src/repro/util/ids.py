"""Deterministic and random identifier generation.

Experiments need reproducible ids, so the library uses per-scope counters
(:class:`IdGenerator`) rather than UUIDs wherever an id appears in recorded
metrics.  ``uuid_hex`` remains for contexts where global uniqueness matters
more than determinism (e.g. ad-hoc service ids in the threaded runtime).
"""

from __future__ import annotations

import itertools
import threading
import uuid


def uuid_hex() -> str:
    """Return a random 32-char hex identifier."""
    return uuid.uuid4().hex


class IdGenerator:
    """Thread-safe monotonically increasing id source.

    Ids are formatted ``"{prefix}-{n}"`` so that logs and metrics stay
    human-readable and stable across runs.
    """

    def __init__(self, prefix: str = "id") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            return f"{self._prefix}-{next(self._counter)}"

    def next_int(self) -> int:
        with self._lock:
            return next(self._counter)
