"""Compact self-describing entry codec (the ``codec="compact"`` hot path).

Pickle is general but pays for that generality on every entry: each frame
re-describes the class, the field names, and the object protocol.  Space
entries are the opposite of general — a handful of flat classes whose
instances differ only in field *values*.  This module exploits that: a
class registers its field schema once (:func:`register_entry`), and an
encoded entry is then just a 5-byte header plus the field values in
schema order.

Frame format (little-endian throughout)::

    +------+----------------+----------------------------------+
    | 0xC3 | fingerprint u32| value_0 value_1 ... value_{n-1}  |
    +------+----------------+----------------------------------+

The fingerprint is ``crc32("<module>.<qualname>:<field,field,...>")`` —
a pure function of the class identity and its schema, so it is stable
across processes and registration orders (no sequence-number coupling).
Each value is a tag byte plus payload:

    ``N`` None                ``T``/``F`` bool
    ``i`` int64 ``<q``        ``I`` big int  (u32 length + signed bytes)
    ``f`` float64 ``<d``      ``s`` str      (u32 length + UTF-8)
    ``b`` bytes   (u32 + raw) ``p`` pickle value (u32 length + pickle bytes)

    Containers and any other non-scalar value ride in a ``p`` tag — the
    C pickler encodes a payload list faster than a per-element Python
    loop, and its bytes are equally canonical for plain containers.  The
    decoder additionally accepts structural ``l``/``t`` (list/tuple:
    u32 count + values) and ``d`` (dict: u32 count + key/value pairs)
    tags emitted by earlier builds.

Every encoder is deterministic, which gives the *canonical encoding*
contract the determinism checker relies on: the same entry value always
encodes to the same bytes, in every process, on every run.

Interop with pickle is by first-byte dispatch: frames from
:func:`repro.util.serialization.serialize` always start with pickle's
``PROTO`` opcode ``0x80`` (protocol ≥ 2), compact frames with ``0xC3``.
:func:`decode_any` accepts either, so stores that switch codecs keep
reading their old bytes — a WAL written under ``codec="pickle"`` replays
fine under ``codec="compact"`` and vice versa.

Unregistered classes and registered instances whose attribute set has
drifted from the schema silently fall back to whole-object pickle; the
codec never changes *what* round-trips, only how fast and how small.
"""

from __future__ import annotations

import struct
from typing import Any, Optional
from zlib import crc32

from repro.errors import EntryError
from repro.util.serialization import deserialize, serialize

__all__ = [
    "MAGIC",
    "register_entry",
    "registered_fields",
    "encode_entry",
    "decode_any",
    "is_compact",
    "peek_class",
]

#: First byte of every compact frame.  Anything else is assumed to be a
#: pickle frame (``serialize`` always emits protocol ≥ 2, whose first
#: byte is the PROTO opcode ``0x80``).
MAGIC = 0xC3
_MAGIC_BYTE = bytes([MAGIC])

_pack_u32 = struct.Struct("<I").pack
_pack_i64 = struct.Struct("<q").pack
_pack_f64 = struct.Struct("<d").pack
_unpack_u32 = struct.Struct("<I").unpack_from
_unpack_i64 = struct.Struct("<q").unpack_from
_unpack_f64 = struct.Struct("<d").unpack_from

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class _Schema:
    __slots__ = ("cls", "fields", "fingerprint", "header")

    def __init__(self, cls: type, fields: tuple[str, ...]) -> None:
        self.cls = cls
        self.fields = fields
        self.fingerprint = schema_fingerprint(cls, fields)
        self.header = _MAGIC_BYTE + _pack_u32(self.fingerprint)


_BY_CLASS: dict[type, _Schema] = {}
_BY_FINGERPRINT: dict[int, _Schema] = {}


def schema_fingerprint(cls: type, fields: tuple[str, ...]) -> int:
    """Stable 32-bit identity of ``(class, schema)``.

    A pure function of the dotted class name and the ordered field list:
    independent of registration order and process, which is what lets
    two processes that merely import the same entry modules exchange
    frames.
    """
    text = f"{cls.__module__}.{cls.__qualname__}:{','.join(fields)}"
    return crc32(text.encode("utf-8"))


def register_entry(cls: type, fields: Optional[tuple[str, ...]] = None) -> type:
    """Register ``cls`` for compact encoding; returns ``cls`` (decorator-friendly).

    ``fields`` fixes the schema order.  When omitted it is derived from
    the ``__init__`` parameter names (excluding ``self``), which matches
    the convention that entry constructors assign each parameter to the
    same-named attribute.  Instances whose attribute set deviates from
    the schema are not broken — they fall back to pickle frames.
    """
    if fields is None:
        import inspect

        params = list(inspect.signature(cls.__init__).parameters.values())[1:]
        if any(p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD) for p in params):
            raise EntryError(
                f"cannot derive schema for {cls.__name__}: "
                "variadic __init__; pass fields= explicitly"
            )
        fields = tuple(p.name for p in params)
    schema = _Schema(cls, tuple(fields))
    other = _BY_FINGERPRINT.get(schema.fingerprint)
    if other is not None and other.cls is not cls:
        raise EntryError(
            f"schema fingerprint collision: {cls.__qualname__} vs "
            f"{other.cls.__qualname__}"
        )
    _BY_CLASS[cls] = schema
    _BY_FINGERPRINT[schema.fingerprint] = schema
    return cls


def registered_fields(cls: type) -> Optional[tuple[str, ...]]:
    """The registered schema fields of ``cls``, or None."""
    schema = _BY_CLASS.get(cls)
    return schema.fields if schema is not None else None


# ---------------------------------------------------------------- encoding --


def _encode_value(out: list, value: Any) -> None:
    # Exact-class dispatch: a bool is not an int here, an Entry subclass
    # of str would not be a str — subtyping games go to the pickle tag,
    # which preserves exact semantics.
    vcls = value.__class__
    if value is None:
        out.append(b"N")
    elif vcls is str:
        raw = value.encode("utf-8")
        out.append(b"s" + _pack_u32(len(raw)) + raw)
    elif vcls is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i" + _pack_i64(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "little",
                                 signed=True)
            out.append(b"I" + _pack_u32(len(raw)) + raw)
    elif vcls is float:
        out.append(b"f" + _pack_f64(value))
    elif vcls is bool:
        out.append(b"T" if value else b"F")
    elif vcls is bytes:
        out.append(b"b" + _pack_u32(len(value)) + value)
    else:
        # Containers (list/tuple/dict) deliberately take the pickle tag:
        # the C pickler beats a per-element Python loop by ~3x on the
        # payload shapes entries actually carry, and pickle bytes for
        # plain containers are just as canonical (insertion-order
        # deterministic, no memo effects on fresh values).  The decoder
        # still accepts the structural l/t/d tags for old frames.
        raw = serialize(value)
        out.append(b"p" + _pack_u32(len(raw)) + raw)


def encode_entry(entry: Any) -> bytes:
    """Canonical bytes for ``entry``: compact if registered, else pickle.

    The compact path requires the instance to carry exactly the schema
    attributes (entry constructors guarantee this); anything else — an
    unregistered class, a dynamically grown instance — takes the pickle
    fallback, so ``encode_entry`` is total over picklable objects.
    """
    schema = _BY_CLASS.get(entry.__class__)
    if schema is None:
        return serialize(entry)
    attrs = entry.__dict__
    fields = schema.fields
    if len(attrs) != len(fields):
        return serialize(entry)
    out = [schema.header]
    append = out.append
    pack_u32, pack_i64 = _pack_u32, _pack_i64
    try:
        # The common field kinds (None / str / small int) are inlined;
        # everything else drops into the generic encoder.
        for name in fields:
            value = attrs[name]
            if value is None:
                append(b"N")
            elif value.__class__ is str:
                raw = value.encode("utf-8")
                append(b"s" + pack_u32(len(raw)) + raw)
            elif value.__class__ is int and _I64_MIN <= value <= _I64_MAX:
                append(b"i" + pack_i64(value))
            else:
                _encode_value(out, value)
    except KeyError:
        return serialize(entry)
    return b"".join(out)


# ---------------------------------------------------------------- decoding --


def _decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == 0x4E:  # N
        return None, pos
    if tag == 0x73:  # s
        n, = _unpack_u32(data, pos)
        pos += 4
        return str(data[pos:pos + n], "utf-8"), pos + n
    if tag == 0x69:  # i
        value, = _unpack_i64(data, pos)
        return value, pos + 8
    if tag == 0x66:  # f
        value, = _unpack_f64(data, pos)
        return value, pos + 8
    if tag == 0x54:  # T
        return True, pos
    if tag == 0x46:  # F
        return False, pos
    if tag == 0x62:  # b
        n, = _unpack_u32(data, pos)
        pos += 4
        return bytes(data[pos:pos + n]), pos + n
    if tag == 0x6C or tag == 0x74:  # l / t
        n, = _unpack_u32(data, pos)
        pos += 4
        items = []
        append = items.append
        for _ in range(n):
            value, pos = _decode_value(data, pos)
            append(value)
        return (items if tag == 0x6C else tuple(items)), pos
    if tag == 0x64:  # d
        n, = _unpack_u32(data, pos)
        pos += 4
        mapping = {}
        for _ in range(n):
            key, pos = _decode_value(data, pos)
            value, pos = _decode_value(data, pos)
            mapping[key] = value
        return mapping, pos
    if tag == 0x49:  # I
        n, = _unpack_u32(data, pos)
        pos += 4
        return int.from_bytes(data[pos:pos + n], "little", signed=True), pos + n
    if tag == 0x70:  # p
        n, = _unpack_u32(data, pos)
        pos += 4
        return deserialize(bytes(data[pos:pos + n])), pos + n
    raise EntryError(f"corrupt compact frame: unknown value tag {tag:#x}")


def is_compact(data) -> bool:
    """True iff ``data`` is a compact frame (vs a pickle frame)."""
    return len(data) > 0 and data[0] == MAGIC


def peek_class(data) -> Optional[type]:
    """The entry class of a compact frame without decoding its values.

    Returns None for pickle frames (whose class costs a full load) and
    raises :class:`EntryError` for a compact frame whose schema is not
    registered in this process.
    """
    if not is_compact(data):
        return None
    fingerprint, = _unpack_u32(data, 1)
    schema = _BY_FINGERPRINT.get(fingerprint)
    if schema is None:
        raise EntryError(
            f"compact frame with unregistered schema {fingerprint:#x}"
        )
    return schema.cls


def decode_any(data) -> Any:
    """Decode either codec's frames (first-byte dispatch).

    ``bytes`` or ``memoryview`` accepted.  Compact frames reconstruct
    the instance without running ``__init__`` — fields are assigned
    directly in schema order.
    """
    if not data:
        raise EntryError("cannot deserialize empty payload")
    if data[0] != MAGIC:
        return deserialize(data)
    fingerprint, = _unpack_u32(data, 1)
    schema = _BY_FINGERPRINT.get(fingerprint)
    if schema is None:
        raise EntryError(
            f"compact frame with unregistered schema {fingerprint:#x}"
        )
    cls = schema.cls
    obj = cls.__new__(cls)
    attrs = obj.__dict__
    pos = 5
    unpack_u32, unpack_i64 = _unpack_u32, _unpack_i64
    # Scalar tags inlined to keep the per-field cost at dict-assignment
    # level; containers and rarities recurse through _decode_value.
    for name in schema.fields:
        tag = data[pos]
        pos += 1
        if tag == 0x4E:  # N
            attrs[name] = None
        elif tag == 0x73:  # s
            n, = unpack_u32(data, pos)
            pos += 4
            attrs[name] = str(data[pos:pos + n], "utf-8")
            pos += n
        elif tag == 0x69:  # i
            attrs[name], = unpack_i64(data, pos)
            pos += 8
        else:
            attrs[name], pos = _decode_value(data, pos - 1)
    return obj
