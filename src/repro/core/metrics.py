"""Experiment instrumentation.

A single collector shared across modules records time series, events and
scalars keyed by name — the quantities every figure in the paper plots
(worker times, planning/aggregation times, CPU usage histories, signal
reaction times).

Long campaigns can cap memory with ``max_points``: each series (and the
event log) becomes a ring buffer keeping only the newest ``max_points``
entries.  The default (``None``) preserves the historical grow-forever
lists.  :meth:`summary` condenses a series into count/mean/percentiles.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from typing import Any, Optional

from repro.runtime.base import Runtime

__all__ = ["Metrics"]


class Metrics:
    """Timestamped series / events / scalar store."""

    def __init__(self, runtime: Runtime,
                 max_points: Optional[int] = None) -> None:
        if max_points is not None and max_points < 1:
            raise ValueError(f"max_points must be >= 1: {max_points}")
        self._runtime = runtime
        self.max_points = max_points
        if max_points is None:
            self.series: dict[str, Any] = defaultdict(list)
            self.events: Any = []
        else:
            self.series = defaultdict(
                lambda: deque(maxlen=max_points))
            self.events = deque(maxlen=max_points)
        self.scalars: dict[str, float] = {}
        #: Optional observer ``fn(now, name, payload)`` called after each
        #: event is appended (flight recorder / alert triggers).  Pure
        #: observation — it must not record further events.
        self.on_event: Optional[Any] = None

    def record(self, name: str, value: float) -> None:
        """Append ``(now, value)`` to the named series."""
        self.series[name].append((self._runtime.now(), float(value)))

    def event(self, name: str, **payload: Any) -> None:
        now = self._runtime.now()
        self.events.append((now, name, payload))
        if self.on_event is not None:
            self.on_event(now, name, payload)

    def scalar(self, name: str, value: float) -> None:
        self.scalars[name] = float(value)

    # -- queries ------------------------------------------------------------------

    def last(self, name: str) -> Optional[float]:
        values = self.series.get(name)
        return values[-1][1] if values else None

    def max(self, name: str) -> Optional[float]:
        values = self.series.get(name)
        return max(v for _, v in values) if values else None

    def events_named(self, name: str) -> list[tuple[float, dict[str, Any]]]:
        return [(t, payload) for t, n, payload in self.events if n == name]

    def summary(self, name: str) -> Optional[dict[str, float]]:
        """Count/mean/p50/p95/max over the (retained) points of a series.

        Percentiles use the nearest-rank rule on the retained window, so
        under a ``max_points`` cap they describe the newest points only.
        Returns ``None`` for an unknown or empty series.
        """
        points = self.series.get(name)
        if not points:
            return None
        values = sorted(v for _, v in points)
        n = len(values)

        def rank(q: float) -> float:
            return values[max(0, math.ceil(q * n) - 1)]

        return {
            "count": float(n),
            "mean": sum(values) / n,
            "p50": rank(0.50),
            "p95": rank(0.95),
            "max": values[-1],
        }
