"""Experiment instrumentation.

A single collector shared across modules records time series, events and
scalars keyed by name — the quantities every figure in the paper plots
(worker times, planning/aggregation times, CPU usage histories, signal
reaction times).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional

from repro.runtime.base import Runtime

__all__ = ["Metrics"]


class Metrics:
    """Timestamped series / events / scalar store."""

    def __init__(self, runtime: Runtime) -> None:
        self._runtime = runtime
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.scalars: dict[str, float] = {}

    def record(self, name: str, value: float) -> None:
        """Append ``(now, value)`` to the named series."""
        self.series[name].append((self._runtime.now(), float(value)))

    def event(self, name: str, **payload: Any) -> None:
        self.events.append((self._runtime.now(), name, payload))

    def scalar(self, name: str, value: float) -> None:
        self.scalars[name] = float(value)

    # -- queries ------------------------------------------------------------------

    def last(self, name: str) -> Optional[float]:
        values = self.series.get(name)
        return values[-1][1] if values else None

    def max(self, name: str) -> Optional[float]:
        values = self.series.get(name)
        return max(v for _, v in values) if values else None

    def events_named(self, name: str) -> list[tuple[float, dict[str, Any]]]:
        return [(t, payload) for t, n, payload in self.events if n == name]
