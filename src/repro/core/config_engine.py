"""Remote node configuration engine (paper §4.3).

Two responsibilities on the worker side:

* **dynamic class loading** — download the application bundle from the
  code server at the master and "load" it (a CPU spike whose height and
  length are the application's class-load profile; this is the startup
  peak visible in Figs 9–11(a));
* **signal interception** — queue signals arriving from the network
  management module and hand them to the worker *between* tasks: "the
  node configuration engine waits for the worker to complete its current
  task, and forwards the signal before the worker fetches the next task."
"""

from __future__ import annotations

from typing import Optional

from repro.core.application import ClassLoadProfile
from repro.core.codeserver import download_bundle
from repro.core.signals import Signal
from repro.net.address import Address
from repro.net.network import Network
from repro.node.machine import Node
from repro.runtime.base import Runtime

__all__ = ["RemoteNodeConfigurationEngine"]


class RemoteNodeConfigurationEngine:
    """Per-worker loader + signal mailbox."""

    def __init__(self, runtime: Runtime, network: Network, node: Node,
                 code_server: Address) -> None:
        self.runtime = runtime
        self.network = network
        self.node = node
        self.code_server = code_server
        self.classes_loaded = False
        self.loads = 0                     # how many times classes were (re)loaded
        self.model_time = True             # charge the class-load CPU spike?
        self._cond = runtime.condition()
        self._pending: Optional[tuple[Signal, float]] = None  # (signal, received_at)
        self.paused = False
        self.stop_requested = False

    # -- class loading ------------------------------------------------------------

    def load_classes(self, app_id: str) -> ClassLoadProfile:
        """Download and load the worker implementation (the startup spike)."""
        profile = download_bundle(self.network, self.node.hostname,
                                  self.code_server, app_id)
        self.node.memory.allocate("worker-classes", max(1, profile.bundle_bytes // 1024))
        if self.model_time and profile.work_ref_ms > 0:
            self.node.cpu.execute(profile.work_ref_ms,
                                  demand_percent=profile.demand_percent)
        self.classes_loaded = True
        self.loads += 1
        return profile

    def unload_classes(self) -> None:
        """Dropped on Stop; the next Start pays the reload cost again."""
        self.node.memory.free("worker-classes")
        self.classes_loaded = False

    # -- signal mailbox --------------------------------------------------------------

    def deliver(self, signal: Signal) -> None:
        """Called by the SNMP client when a signal arrives from the server."""
        with self._cond:
            self._pending = (signal, self.runtime.now())
            if signal == Signal.PAUSE:
                self.paused = True
            elif signal == Signal.RESUME:
                self.paused = False
            elif signal == Signal.STOP:
                self.stop_requested = True
                self.paused = False  # a paused worker must wake to die
            self._cond.notify_all()

    def take_pending(self) -> Optional[tuple[Signal, float]]:
        """Pop the queued signal, if any (worker calls this between tasks)."""
        with self._cond:
            pending = self._pending
            self._pending = None
            return pending

    def wait_for_clearance(self, honored) -> bool:
        """Block while paused; return False when the worker must stop.

        ``honored(signal)`` is invoked when a Pause actually takes effect
        (worker blocked) and when the matching Resume wakes it — the
        quantities plotted as *worker signal time* in Figs 9–11(b).
        """
        with self._cond:
            if self.stop_requested:
                return False
            if self.paused:
                honored(Signal.PAUSE)
                while self.paused and not self.stop_requested:
                    self._cond.wait()
                if not self.stop_requested:
                    honored(Signal.RESUME)
            return not self.stop_requested

    def reset_for_start(self) -> None:
        self.stop_requested = False
        self.paused = False
        with self._cond:
            self._pending = None
