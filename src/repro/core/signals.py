"""Rule-base signals and threshold policy.

"The rule-base currently defines 4 types of signals in response to the
varying load conditions at a worker, viz. Start, Stop, Pause and Resume."
Threshold heuristics (paper §4.4): 0–25 % → Start/Resume, 25–50 % →
Pause, 50–100 % → Stop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Signal(enum.Enum):
    """Control signals sent by the network management module."""

    START = "start"
    STOP = "stop"
    PAUSE = "pause"
    RESUME = "resume"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ThresholdPolicy:
    """CPU-load bands driving the inference engine (percent).

    * load ≤ ``idle_below`` — the node counts as idle: Start/Resume;
    * ``idle_below`` < load ≤ ``stop_above`` — transiently busy: Pause;
    * load > ``stop_above`` — busy: Stop.
    """

    idle_below: float = 25.0
    stop_above: float = 50.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.idle_below <= self.stop_above <= 100.0):
            raise ValueError(
                f"thresholds must satisfy 0 <= idle({self.idle_below}) <= "
                f"stop({self.stop_above}) <= 100"
            )

    def band(self, load_percent: float) -> str:
        """Classify a load sample: 'idle' | 'busy' | 'loaded'."""
        if load_percent <= self.idle_below:
            return "idle"
        if load_percent <= self.stop_above:
            return "busy"
        return "loaded"
