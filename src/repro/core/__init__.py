"""The adaptive cluster-computing framework (the paper's contribution).

Three modules, as in Fig. 3 of the paper:

* **Master module** (:mod:`repro.core.master`) — hosts the JavaSpaces
  service, decomposes the application into tasks, writes them into the
  space, collects and aggregates results.
* **Worker module** (:mod:`repro.core.worker`) — a thin, remotely
  configured process that takes tasks, computes, writes results back;
  its lifecycle obeys the Fig. 5 state machine.
* **Network management module** (:mod:`repro.core.netmgmt`) — monitors
  worker state over SNMP, applies threshold policies in the inference
  engine, and drives workers through the rule-base protocol (Fig. 4)
  with Start/Stop/Pause/Resume signals.

:class:`~repro.core.framework.AdaptiveClusterFramework` wires everything
together on a :class:`~repro.node.Cluster`.
"""

from repro.core.signals import Signal, ThresholdPolicy
from repro.core.states import WorkerState, WorkerStateMachine
from repro.core.inference import InferenceEngine
from repro.core.entries import DeadLetterEntry, ResultEntry, TaskEntry
from repro.core.application import Application
from repro.core.metrics import Metrics
from repro.core.master import Master, MasterReport
from repro.core.worker import WorkerHost
from repro.core.netmgmt import NetworkManagementModule
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig

__all__ = [
    "Signal",
    "ThresholdPolicy",
    "WorkerState",
    "WorkerStateMachine",
    "InferenceEngine",
    "TaskEntry",
    "ResultEntry",
    "DeadLetterEntry",
    "Application",
    "Metrics",
    "Master",
    "MasterReport",
    "WorkerHost",
    "NetworkManagementModule",
    "AdaptiveClusterFramework",
    "FrameworkConfig",
]
