"""The network management module (paper §4.1, §4.4; Fig. 4).

Server half of the rule-base protocol:

1. the server listens for client connections;
2. a worker's SNMP client connects and sends its address;
3. the server assigns it a client ID (via the inference engine registry);
4.–7. a per-worker monitor loop polls the worker's SNMP agent for CPU
   load, feeds the sample to the inference engine, and sends whatever
   signal it decides back over the socket;
8. the client forwards the signal to the worker application; go to 5.

The monitored OID is the *external* load by default (load excluding the
framework's own worker process — see DESIGN.md §5 for why), switchable to
total load for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConnectionClosedError, SnmpError, TimeoutError_
from repro.core.inference import InferenceEngine, WorkerRecord
from repro.core.metrics import Metrics
from repro.core.signals import Signal, ThresholdPolicy
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.runtime.base import Runtime
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import HOST_RESOURCES

from repro.util.log import get_logger

__all__ = ["NetworkManagementModule", "RULEBASE_PORT"]

RULEBASE_PORT = 5601

_log = get_logger("netmgmt")


class NetworkManagementModule:
    """SNMP monitoring + inference engine + rule-base server."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        metrics: Metrics,
        policy: Optional[ThresholdPolicy] = None,
        poll_interval_ms: float = 1000.0,
        community: str = "public",
        load_metric: str = "external",
        port: int = RULEBASE_PORT,
        mode: str = "poll",
        trap_port: Optional[int] = None,
        staleness_ms: Optional[float] = None,
        registry: Any = None,
    ) -> None:
        if load_metric not in ("external", "total"):
            raise ValueError(f"load_metric must be 'external' or 'total': {load_metric}")
        if mode not in ("poll", "trap"):
            raise ValueError(f"mode must be 'poll' or 'trap': {mode}")
        self.runtime = runtime
        self.network = network
        self.address = Address(host, port)
        self.metrics = metrics
        self.inference = InferenceEngine(policy, staleness_ms=staleness_ms)
        self.poll_interval_ms = poll_interval_ms
        self.load_oid = (
            HOST_RESOURCES.EXTERNAL_LOAD
            if load_metric == "external"
            else HOST_RESOURCES.HR_PROCESSOR_LOAD
        )
        self.mode = mode
        self._trap_port = trap_port
        self.snmp = SnmpManager(runtime, network, host, community=community)
        self._listener = None
        self._trap_receiver = None
        self._conns: dict[str, StreamSocket] = {}
        self.running = False
        self.stats = {"polls": 0, "poll_failures": 0, "signals_sent": 0,
                      "traps_received": 0, "stale_stops": 0}
        if registry is not None:
            # Surface as ``netmgmt.polls`` etc. plus the inference
            # engine's decision counters — read-through, no per-poll cost.
            registry.expose_dict("netmgmt", self.stats)
            registry.expose_dict("inference", self.inference.stats)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._listener = self.network.listen(self.address)
        self.runtime.spawn(self._accept_loop, name="netmgmt-accept")
        if self.mode == "trap":
            from repro.snmp.trap import TRAP_PORT, TrapReceiver

            self._trap_receiver = TrapReceiver(
                self.runtime, self.network, self.address.host,
                community=self.snmp.community,
                port=self._trap_port if self._trap_port is not None else TRAP_PORT,
            )
            self._trap_receiver.on_trap(self._handle_trap)
            self._trap_receiver.start()

    def stop(self) -> None:
        self.running = False
        if self._listener is not None:
            self._listener.close()
        if self._trap_receiver is not None:
            self._trap_receiver.stop()
        self.snmp.close()

    # -- rule-base server ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self.running:
            try:
                conn = self._listener.accept(timeout_ms=None)
            except ConnectionClosedError:
                return
            if conn is None:
                continue
            self.runtime.spawn(lambda c=conn: self._handle_client(c), name="netmgmt-client")

    def _handle_client(self, conn: StreamSocket) -> None:
        record = None
        try:
            registration = conn.receive(timeout_ms=None)
            if not isinstance(registration, dict) or registration.get("type") != "register":
                conn.close()
                return
            record = self.inference.register(registration["host"])
            reply = {"type": "registered", "worker_id": record.worker_id,
                     "mode": self.mode}
            if self.mode == "trap":
                reply["trap_address"] = self._trap_receiver.address
                reply["thresholds"] = {
                    "idle_below": self.inference.policy.idle_below,
                    "stop_above": self.inference.policy.stop_above,
                }
            conn.send(reply)
            self.metrics.event("worker-registered", worker=record.hostname,
                               worker_id=record.worker_id)
            self._conns[record.hostname] = conn
            if self.mode == "poll":
                self._monitor_loop(record, conn)
            else:
                # Trap mode: signals are pushed by _handle_trap; this loop
                # only watches for the client going away.
                while self.running:
                    conn.receive(timeout_ms=None)
        except ConnectionClosedError:
            pass
        finally:
            if record is not None:
                self._conns.pop(record.hostname, None)
            conn.close()

    def _handle_trap(self, trap, sender) -> None:
        """Trap-mode inference: one decision per load-band transition."""
        from repro.snmp.mib import HOST_RESOURCES

        varbinds = dict(trap.varbinds)
        hostname = varbinds.get(HOST_RESOURCES.SYS_NAME)
        load = varbinds.get(HOST_RESOURCES.EXTERNAL_LOAD)
        if hostname is None or load is None:
            return
        record = next(
            (r for r in self.inference.workers() if r.hostname == hostname), None
        )
        if record is None:
            return
        self.stats["traps_received"] += 1
        self.metrics.record(f"load/{hostname}", float(load))
        signal = self.inference.observe(record.worker_id, float(load),
                                        self.runtime.now())
        conn = self._conns.get(hostname)
        if signal is not None and conn is not None and not conn.closed:
            self.stats["signals_sent"] += 1
            self.metrics.event("signal-sent", worker=hostname,
                               signal=str(signal), load=float(load))
            conn.send({"type": "signal", "signal": signal.value,
                       "sent_at": self.runtime.now()})

    def _monitor_loop(self, record: WorkerRecord, conn: StreamSocket) -> None:
        """Steps 4–7 of the rule-base protocol, repeated forever."""
        while self.running:
            signal = self.poll_once(record)
            if signal is not None:
                conn.send({"type": "signal", "signal": signal.value,
                           "sent_at": self.runtime.now()})
            self.runtime.sleep(self.poll_interval_ms)

    def poll_once(self, record: WorkerRecord) -> Optional[Signal]:
        """One SNMP poll + inference decision for a worker."""
        self.stats["polls"] += 1
        try:
            load = float(self.snmp.get_one(record.hostname, self.load_oid))
        except (TimeoutError_, SnmpError):
            self.stats["poll_failures"] += 1
            # Stale-data guard: an unreachable agent means every further
            # decision would rest on an old sample; the inference engine
            # decides whether that now warrants stopping the worker.
            signal = self.inference.observe_failure(record.worker_id,
                                                    self.runtime.now())
            if signal is not None:
                self.stats["stale_stops"] += 1
                self.stats["signals_sent"] += 1
                self.metrics.event(
                    "stale-sample", worker=record.hostname,
                    signal=str(signal),
                    last_sample_ms=record.last_sample_ms,
                )
                _log.info("t=%.0fms worker=%s samples stale -> %s",
                          self.runtime.now(), record.hostname, signal)
            return signal
        self.metrics.record(f"load/{record.hostname}", load)
        signal = self.inference.observe(record.worker_id, load, self.runtime.now())
        if signal is not None:
            self.stats["signals_sent"] += 1
            self.metrics.event("signal-sent", worker=record.hostname,
                               signal=str(signal), load=load)
            _log.info("t=%.0fms worker=%s load=%.0f%% -> %s",
                      self.runtime.now(), record.hostname, load, signal)
        return signal
