"""Space entries exchanged between master and workers.

"Each task object is identified by a unique ID and the space in which it
resides" — here: ``(app_id, task_id)``.  Workers use a wildcard template
on ``TaskEntry`` (value-based lookup), the master collects ``ResultEntry``
objects back.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.tuplespace.entry import Entry
from repro.util.codec import register_entry

__all__ = ["TaskEntry", "ResultEntry", "DeadLetterEntry", "MasterCheckpointEntry"]


class TaskEntry(Entry):
    """One independent unit of application work.

    ``attempts`` counts how many times a worker already failed on this
    task (poison-task quarantine): a worker whose application code raises
    re-writes the task with ``attempts + 1`` instead of crashing, and
    after ``max_attempts`` the task becomes a :class:`DeadLetterEntry`.
    ``None`` in a template is, as for every field, a wildcard.

    ``trace`` carries the task's trace ID (``"<app_id>/<task_id>"``)
    end-to-end.  The master mints it unconditionally — even with tracing
    disabled — so entry bytes (and hence modelled transfer latencies)
    are identical whether or not spans are being recorded.

    ``tenant``/``priority`` identify the submitting job for the
    multi-tenant job service: admission control meters TaskEntry writes
    per tenant, the space's deficit-round-robin dispatcher shares takes
    across tenants by weight, and overload shedding drops the lowest
    ``priority`` first.  ``None`` (the default everywhere else in the
    system) keeps single-tenant deployments byte-identical to before.
    """

    def __init__(
        self,
        app_id: Optional[str] = None,
        task_id: Optional[int] = None,
        payload: Any = None,
        attempts: Optional[int] = None,
        trace: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> None:
        self.app_id = app_id
        self.task_id = task_id
        self.payload = payload
        self.attempts = attempts
        self.trace = trace
        self.tenant = tenant
        self.priority = priority


class ResultEntry(Entry):
    """The computed output for one task."""

    def __init__(
        self,
        app_id: Optional[str] = None,
        task_id: Optional[int] = None,
        payload: Any = None,
        worker: Optional[str] = None,
        compute_ms: Optional[float] = None,
        trace: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> None:
        self.app_id = app_id
        self.task_id = task_id
        self.payload = payload
        self.worker = worker
        self.compute_ms = compute_ms
        self.trace = trace
        self.tenant = tenant
        self.priority = priority


class MasterCheckpointEntry(Entry):
    """The master's periodic progress record, written into the space.

    A restarted master adopts the highest-``seq`` checkpoint and resumes:
    adopted ``results``/``dead`` are never re-aggregated (exactly-once),
    and only tasks with no trace left anywhere — not checkpointed, no
    task/result/dead-letter entry visible — are re-seeded.  Written under
    a short lease so an abandoned run's checkpoint ages out of the space
    instead of leaking.
    """

    def __init__(
        self,
        app_id: Optional[str] = None,
        seq: Optional[int] = None,
        results: Optional[dict[int, Any]] = None,
        dead: Optional[dict[int, str]] = None,
        by_worker: Optional[dict[str, int]] = None,
        outstanding: Optional[list[int]] = None,
        duplicates: Optional[int] = None,
        replicas: Optional[int] = None,
    ) -> None:
        self.app_id = app_id
        self.seq = seq
        self.results = results
        self.dead = dead
        self.by_worker = by_worker
        self.outstanding = outstanding
        self.duplicates = duplicates
        self.replicas = replicas


class DeadLetterEntry(Entry):
    """A task given up on after ``max_attempts`` application failures.

    Deliberately *not* a :class:`TaskEntry` subclass: workers match on the
    ``TaskEntry`` type, so a quarantined task must fall outside their
    template or it would be taken and fail forever.  The master drains
    dead letters and reports them (partial-result policy) instead of
    waiting for a result that can never come.
    """

    def __init__(
        self,
        app_id: Optional[str] = None,
        task_id: Optional[int] = None,
        payload: Any = None,
        error: Optional[str] = None,
        worker: Optional[str] = None,
        attempts: Optional[int] = None,
        trace: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self.app_id = app_id
        self.task_id = task_id
        self.payload = payload
        self.error = error
        self.worker = worker
        self.attempts = attempts
        self.trace = trace
        self.tenant = tenant


# Compact-codec schemas: one registration per class, fields in
# constructor order (the canonical encoding order).  Registration is a
# pure declaration — instances still pickle fine, and unregistered
# subclasses simply stay on the pickle path.
register_entry(TaskEntry)
register_entry(ResultEntry)
register_entry(MasterCheckpointEntry)
register_entry(DeadLetterEntry)
