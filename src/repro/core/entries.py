"""Space entries exchanged between master and workers.

"Each task object is identified by a unique ID and the space in which it
resides" — here: ``(app_id, task_id)``.  Workers use a wildcard template
on ``TaskEntry`` (value-based lookup), the master collects ``ResultEntry``
objects back.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.tuplespace.entry import Entry

__all__ = ["TaskEntry", "ResultEntry"]


class TaskEntry(Entry):
    """One independent unit of application work."""

    def __init__(
        self,
        app_id: Optional[str] = None,
        task_id: Optional[int] = None,
        payload: Any = None,
    ) -> None:
        self.app_id = app_id
        self.task_id = task_id
        self.payload = payload


class ResultEntry(Entry):
    """The computed output for one task."""

    def __init__(
        self,
        app_id: Optional[str] = None,
        task_id: Optional[int] = None,
        payload: Any = None,
        worker: Optional[str] = None,
        compute_ms: Optional[float] = None,
    ) -> None:
        self.app_id = app_id
        self.task_id = task_id
        self.payload = payload
        self.worker = worker
        self.compute_ms = compute_ms
