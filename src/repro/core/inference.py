"""The inference engine.

"Based on this return value and programmed threshold ranges, the
inference engine makes a decision on the worker's current availability
status and passes an appropriate signal back to the worker."  The
decision is a pure function of (assumed worker state, load band) — a
property the tests pin down exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.signals import Signal, ThresholdPolicy
from repro.core.states import WorkerState

__all__ = ["InferenceEngine", "WorkerRecord"]


@dataclass
class WorkerRecord:
    """One registered worker as tracked by the network management module."""

    worker_id: int
    hostname: str
    assumed_state: WorkerState = WorkerState.STOPPED
    last_load: Optional[float] = None
    last_sample_ms: Optional[float] = None
    load_history: list[tuple[float, float]] = field(default_factory=list)


class InferenceEngine:
    """Threshold rules mapping (state, load) to a signal (or none).

    ``hysteresis_samples`` > 1 debounces decisions: a load sample must sit
    in the *same* band for that many consecutive observations before the
    corresponding signal fires.  This suppresses signal flapping when the
    load oscillates around a threshold (an extension; the paper's engine
    reacts to every sample).
    """

    def __init__(
        self,
        policy: Optional[ThresholdPolicy] = None,
        hysteresis_samples: int = 1,
        staleness_ms: Optional[float] = None,
    ) -> None:
        if hysteresis_samples < 1:
            raise ValueError("hysteresis_samples must be >= 1")
        self.policy = policy if policy is not None else ThresholdPolicy()
        self.hysteresis_samples = hysteresis_samples
        #: Stale-data guard: when the newest good sample for a worker is
        #: older than this (agent unreachable), stop trusting it — a
        #: worker we believe is computing gets a Stop rather than running
        #: unmonitored.  ``None`` keeps the paper's behaviour (failed
        #: polls are silently skipped).
        self.staleness_ms = staleness_ms
        self._streaks: dict[int, tuple[str, int]] = {}  # worker → (band, count)
        self._workers: dict[int, WorkerRecord] = {}
        self._next_id = 1
        #: Decision counters, surfaced by the telemetry registry as
        #: ``inference.decisions`` / ``inference.signals``.  Observational
        #: only — the rule base itself stays a pure function of its inputs.
        self.stats = {"decisions": 0, "signals": 0}

    # -- registry ---------------------------------------------------------------

    def register(self, hostname: str) -> WorkerRecord:
        """Assign a unique ID to a new worker and add it to the list."""
        record = WorkerRecord(self._next_id, hostname)
        self._workers[record.worker_id] = record
        self._next_id += 1
        return record

    def unregister(self, worker_id: int) -> None:
        self._workers.pop(worker_id, None)

    def worker(self, worker_id: int) -> WorkerRecord:
        return self._workers[worker_id]

    def workers(self) -> list[WorkerRecord]:
        return list(self._workers.values())

    # -- the rule base -------------------------------------------------------------

    def decide(self, state: WorkerState, load_percent: float) -> Optional[Signal]:
        """Pure threshold rules (paper §4.4).

        ======== ========= =========
        band     state     signal
        ======== ========= =========
        idle     stopped   Start
        idle     paused    Resume
        idle     running   —
        busy     running   Pause
        busy     paused    —
        busy     stopped   —  (not idle enough to recruit)
        loaded   running   Stop
        loaded   paused    Stop
        loaded   stopped   —
        ======== ========= =========
        """
        signal = self._decide(state, load_percent)
        self.stats["decisions"] += 1
        if signal is not None:
            self.stats["signals"] += 1
        return signal

    def _decide(self, state: WorkerState,
                load_percent: float) -> Optional[Signal]:
        band = self.policy.band(load_percent)
        if band == "idle":
            if state == WorkerState.STOPPED:
                return Signal.START
            if state == WorkerState.PAUSED:
                return Signal.RESUME
            return None
        if band == "busy":
            return Signal.PAUSE if state == WorkerState.RUNNING else None
        # loaded
        if state in (WorkerState.RUNNING, WorkerState.PAUSED):
            return Signal.STOP
        return None

    def observe(self, worker_id: int, load_percent: float, now_ms: float) -> Optional[Signal]:
        """Record a load sample for a worker and decide its signal.

        Updates the assumed state when a signal is issued (the worker
        only ever transitions on our signals, so the model stays exact).
        """
        record = self._workers[worker_id]
        record.last_load = load_percent
        record.last_sample_ms = now_ms
        record.load_history.append((now_ms, load_percent))
        if self.hysteresis_samples > 1:
            band = self.policy.band(load_percent)
            prev_band, count = self._streaks.get(worker_id, (None, 0))
            count = count + 1 if band == prev_band else 1
            self._streaks[worker_id] = (band, count)
            if count < self.hysteresis_samples:
                return None
        signal = self.decide(record.assumed_state, load_percent)
        if signal is not None:
            record.assumed_state = self._transition(record.assumed_state, signal)
        return signal

    def observe_failure(self, worker_id: int, now_ms: float) -> Optional[Signal]:
        """A poll failed (agent unreachable): apply the stale-data guard.

        A decision made on data older than ``staleness_ms`` is a guess,
        and the costly wrong guess is leaving a worker computing on a
        node whose load we can no longer see — so a Running/Paused worker
        whose samples went stale is stopped until fresh samples arrive.
        Never-sampled workers are stale by definition but Stopped, so
        nothing fires for them.
        """
        if self.staleness_ms is None:
            return None
        record = self._workers.get(worker_id)
        if record is None:
            return None
        last = record.last_sample_ms
        if last is not None and now_ms - last < self.staleness_ms:
            return None
        if record.assumed_state not in (WorkerState.RUNNING, WorkerState.PAUSED):
            return None
        self._streaks.pop(worker_id, None)  # debounce restarts on recovery
        record.assumed_state = self._transition(record.assumed_state, Signal.STOP)
        return Signal.STOP

    @staticmethod
    def _transition(state: WorkerState, signal: Signal) -> WorkerState:
        from repro.core.states import WorkerStateMachine

        return WorkerStateMachine(initial=state).apply(signal)
