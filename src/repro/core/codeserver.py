"""Code server: the "web server residing at the master" (paper §4.3).

Worker classes are packaged as executable bundles ("jar files") and
downloaded at runtime by the remote node configuration engine.  The
transfer pays real network cost (bundle bytes through the latency model).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConnectionClosedError, FrameworkError
from repro.core.application import ClassLoadProfile
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.runtime.base import Runtime

__all__ = ["CodeServer", "CODE_SERVER_PORT"]

CODE_SERVER_PORT = 8088


class CodeServer:
    """Serves application code bundles over stream connections."""

    def __init__(self, runtime: Runtime, network: Network, host: str,
                 port: int = CODE_SERVER_PORT) -> None:
        self.runtime = runtime
        self.network = network
        self.address = Address(host, port)
        self._bundles: dict[str, ClassLoadProfile] = {}
        self._listener = None
        self._running = False
        self.stats = {"downloads": 0, "bytes_served": 0}

    def publish(self, app_id: str, profile: ClassLoadProfile) -> None:
        """Make an application's worker bundle downloadable."""
        self._bundles[app_id] = profile

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._listener = self.network.listen(self.address)
        self.runtime.spawn(self._accept_loop, name=f"code-server:{self.address.host}")

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn = self._listener.accept(timeout_ms=None)
            except ConnectionClosedError:
                return
            if conn is None:
                continue
            self.runtime.spawn(lambda c=conn: self._serve(c), name="code-conn")

    def _serve(self, conn: StreamSocket) -> None:
        try:
            request = conn.receive(timeout_ms=None)
            if not isinstance(request, dict) or "app_id" not in request:
                conn.send({"ok": False, "error": "bad request"})
                return
            profile = self._bundles.get(request["app_id"])
            if profile is None:
                conn.send({"ok": False, "error": f"no bundle for {request['app_id']!r}"})
                return
            self.stats["downloads"] += 1
            self.stats["bytes_served"] += profile.bundle_bytes
            # The bundle body itself rides the network so the latency model
            # charges for its size, exactly like a real jar download.
            conn.send({"ok": True, "profile": profile, "jar": b"\x00" * profile.bundle_bytes})
        except ConnectionClosedError:
            pass
        finally:
            conn.close()


def download_bundle(
    network: Network, host: str, server: Address, app_id: str
) -> ClassLoadProfile:
    """Client half: fetch a bundle; returns its class-load profile."""
    conn = network.connect(host, server)
    try:
        conn.send({"app_id": app_id})
        reply = conn.receive(timeout_ms=None)
        if reply is None or not reply.get("ok"):
            error = (reply or {}).get("error", "no reply")
            raise FrameworkError(f"bundle download failed: {error}")
        return reply["profile"]
    finally:
        conn.close()
