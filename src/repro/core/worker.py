"""The worker module (paper §4.1, §4.4).

A :class:`WorkerHost` is the thin, application-agnostic process installed
on a cluster node.  It contains:

* the node's SNMP agent (so the network management module can monitor it),
* the SNMP/rule-base *client*: registers with the network management
  module, receives Start/Stop/Pause/Resume signals (Fig. 4 steps 1–3, 8),
* the remote node configuration engine (class loading + signal mailbox),
* the worker run-loop spawned on Start: take task → compute → write
  result, honoring signals only between tasks so no task is ever lost.

Lifecycle (Fig. 5): Start spawns a fresh runtime process which first
performs remote class loading (CPU spike) and then computes; Stop kills
the process after the current task and drops the classes; Pause blocks
the process but keeps classes in memory, so Resume skips the reload —
"hence bypassing the overhead associated with remote node configuration".
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Optional

from repro.errors import (
    ConnectionClosedError,
    ConnectionRefusedError_,
    FencedError,
    IllegalTransitionError,
    SpaceError,
    TransactionError,
)
from repro.core.application import Application
from repro.core.config_engine import RemoteNodeConfigurationEngine
from repro.core.entries import DeadLetterEntry, ResultEntry, TaskEntry
from repro.core.metrics import Metrics
from repro.core.signals import Signal
from repro.core.states import WorkerState, WorkerStateMachine
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.node.machine import Node
from repro.runtime.base import Runtime
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.proxy import RecoveryPolicy, RemoteTransaction, SpaceProxy
from repro.util.log import get_logger

__all__ = ["WorkerHost"]

_log = get_logger("worker")


class WorkerHost:
    """One worker node's framework process."""

    def __init__(
        self,
        runtime: Runtime,
        node: Node,
        app: Application,
        space_address: Address,
        code_server: Address,
        netmgmt_address: Optional[Address],
        metrics: Metrics,
        worker_poll_ms: float = 250.0,
        compute_real: bool = True,
        transactional: bool = False,
        model_time: bool = True,
        max_task_attempts: int = 3,
        recovery: Optional[RecoveryPolicy] = None,
        recovery_rng: Any = None,
        task_txn_lease_ms: Optional[float] = None,
        locator: Optional[Callable[[], Any]] = None,
        prefetch: int = 1,
        tracer: Any = None,
        space_factory: Optional[Callable[[], Any]] = None,
        codec: str = "pickle",
    ) -> None:
        self.runtime = runtime
        self.node = node
        self.app = app
        # Telemetry tracer (None/disabled = zero-cost): compute spans hang
        # off the task's trace carried in the entry's ``trace`` field.
        self.tracer = tracer
        self.space_address = space_address
        self.netmgmt_address = netmgmt_address
        self.metrics = metrics
        self.worker_poll_ms = worker_poll_ms
        self.compute_real = compute_real
        self.transactional = transactional
        # Charge the cost model against the virtual CPU?  True under
        # simulation (results real, time modelled); False on the threaded
        # runtime, where the real computation takes real time already.
        self.model_time = model_time
        # Poison-task quarantine: after this many application failures a
        # task is written out as a DeadLetterEntry instead of retried.
        self.max_task_attempts = max_task_attempts
        # Self-healing: reconnect/backoff policy (None = legacy fail-stop).
        self.recovery = recovery
        self._recovery_rng = recovery_rng
        #: Wire codec for this worker's space proxy (see SpaceProxy).
        self.codec = codec
        # Finite task-transaction lease: a worker that stalls mid-task has
        # its take rolled back server-side after this long (None = forever).
        self.task_txn_lease_ms = task_txn_lease_ms
        # Service locator consulted on reconnect (failover re-discovery).
        self.locator = locator
        # Sharded spaces: a factory returning the space client (e.g. a
        # ShardRouter over every shard) instead of the single SpaceProxy.
        # Anything with the SpaceProxy surface works — the loop only calls
        # that API.
        self.space_factory = space_factory
        # History recording (verify module): wraps the freshly-built
        # space client so every acknowledged op lands in the run history.
        self.space_wrapper: Optional[Callable[[Any, str], Any]] = None
        # Pipeline depth: take up to this many tasks per cycle (one
        # take_multiple under one transaction), compute them all, and
        # write the results back with a single batched write_all+commit.
        # 1 = the classic one-task-per-cycle loop.
        if prefetch < 1:
            raise ValueError(f"prefetch must be >= 1: {prefetch}")
        self.prefetch = prefetch
        # Steady-state pipeline carry: the (txn, tasks) a write-back RPC
        # prefetched for the next cycle.  Released on pause/stop.
        self._pending: Optional[tuple[Any, list[TaskEntry]]] = None
        # The batch currently being computed.  The carry above spans
        # zero simulated time (popped at loop top, repopulated by the
        # same flush that retires the batch), so the preemption governor
        # reads this to see what a busy pipeline is actually holding.
        self._active_batch: Optional[list[TaskEntry]] = None
        self.crashed = False
        self.network: Network = node.network
        self.engine = RemoteNodeConfigurationEngine(
            runtime, self.network, node, code_server
        )
        self.engine.model_time = model_time
        self.machine = WorkerStateMachine(on_transition=self._log_transition)
        self.worker_id: Optional[int] = None
        self.running = False                     # host lifetime, not worker state
        self.tasks_done = 0
        self.first_take_ms: Optional[float] = None
        self.last_result_ms: Optional[float] = None
        self._proxy: Optional[Any] = None  # SpaceProxy or ShardRouter
        self._control: Optional[StreamSocket] = None
        self._loop_generation = 0
        self._loop_active = False
        self._exit_cond = runtime.condition()
        self._trap_emitter = None

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Bring up the node agent and (if managed) the rule-base client."""
        if self.running:
            return
        self.running = True
        self.node.start_agent()
        if self.netmgmt_address is not None:
            self.runtime.spawn(
                self._rulebase_client, name=f"snmp-client:{self.node.hostname}"
            )

    def stop(self) -> None:
        self.running = False
        self.engine.stop_requested = True
        with self.engine._cond:
            self.engine._cond.notify_all()
        if self._control is not None:
            self._control.close()
        if self._trap_emitter is not None:
            self._trap_emitter.stop()
        self.node.stop_agent()

    def crash(self) -> None:
        """Abrupt node failure: no graceful task drain, no result write.

        The space-server connection drops, so (with ``transactional``
        takes) the in-flight task's transaction aborts and the task entry
        reappears for other workers — the JavaSpaces fault-tolerance
        property the paper relies on.
        """
        self.crashed = True
        self.running = False
        if self._proxy is not None:
            self._proxy.fail()
        if self._control is not None:
            self._control.close()
        if self._trap_emitter is not None:
            self._trap_emitter.stop()
        self.node.stop_agent()
        with self.engine._cond:
            self.engine.stop_requested = True
            self.engine._cond.notify_all()

    @property
    def state(self) -> WorkerState:
        return self.machine.state

    def _start_trap_emitter(self, reply: dict) -> None:
        """Trap-mode monitoring: push load-band changes instead of being
        polled (the server told us where its trap receiver listens)."""
        from repro.core.signals import ThresholdPolicy
        from repro.snmp.trap import LoadBandTrapEmitter

        thresholds = reply.get("thresholds", {})
        policy = ThresholdPolicy(
            idle_below=thresholds.get("idle_below", 25.0),
            stop_above=thresholds.get("stop_above", 50.0),
        )
        self._trap_emitter = LoadBandTrapEmitter(
            self.runtime, self.node, reply["trap_address"], policy.band,
            community=self.node.snmp_community,
        )
        self._trap_emitter.start()

    def _log_transition(self, old: WorkerState, signal: Signal, new: WorkerState) -> None:
        self.metrics.event(
            "worker-transition", worker=self.node.hostname,
            old=str(old), signal=str(signal), new=str(new),
        )
        _log.info("t=%.0fms %s: %s --%s--> %s", self.runtime.now(),
                  self.node.hostname, old, signal, new)

    def worker_time_ms(self) -> Optional[float]:
        """Paper's worker computation time: first take → last result."""
        if self.first_take_ms is None or self.last_result_ms is None:
            return None
        return self.last_result_ms - self.first_take_ms

    # -- rule-base client (Fig. 4 steps 1–3, 8) -----------------------------------------

    def _rulebase_client(self) -> None:
        from repro.errors import ConnectionRefusedError_

        try:
            try:
                self._control = self.network.connect(
                    self.node.hostname, self.netmgmt_address
                )
            except ConnectionRefusedError_:
                return  # management module already gone (teardown race)
            # Step 2: client connects and sends its address to the server.
            self._control.send({"type": "register", "host": self.node.hostname})
            reply = self._control.receive(timeout_ms=None)
            if reply is None or reply.get("type") != "registered":
                return
            self.worker_id = reply["worker_id"]
            if reply.get("mode") == "trap":
                self._start_trap_emitter(reply)
            while self.running:
                message = self._control.receive(timeout_ms=None)
                if message is None:
                    continue
                if message.get("type") == "signal":
                    signal = Signal(message["signal"])
                    received_at = self.runtime.now()
                    self.metrics.event(
                        "signal-client",
                        worker=self.node.hostname,
                        signal=str(signal),
                        latency_ms=received_at - message["sent_at"],
                    )
                    # Step 8: forward the signal to the application layer.
                    self.handle_signal(signal, received_at)
        except ConnectionClosedError:
            return

    # -- signal handling ------------------------------------------------------------------

    def handle_signal(self, signal: Signal, received_at: Optional[float] = None) -> None:
        """Apply a rule-base signal to the worker (testable without a network)."""
        if received_at is None:
            received_at = self.runtime.now()
        try:
            self.machine.apply(signal)
        except IllegalTransitionError:
            self.metrics.event(
                "illegal-signal", worker=self.node.hostname,
                signal=str(signal), state=str(self.state),
            )
            return
        self._pending_receipt = (signal, received_at)
        if signal == Signal.STOP:
            self._stop_received_at = received_at
        if signal == Signal.START:
            generation = self._loop_generation = self._loop_generation + 1
            self.runtime.spawn(
                lambda: self._worker_process(generation, received_at),
                name=f"worker-run:{self.node.hostname}",
            )
        else:
            self.engine.deliver(signal)

    def _honored(self, signal: Signal, received_at: Optional[float] = None) -> None:
        now = self.runtime.now()
        receipt = getattr(self, "_pending_receipt", None)
        if received_at is None:
            if receipt is not None and receipt[0] == signal:
                received_at = receipt[1]
            else:
                received_at = now
        self.metrics.event(
            "signal-honored",
            worker=self.node.hostname,
            signal=str(signal),
            latency_ms=now - received_at,
        )

    # -- the worker run loop -----------------------------------------------------------------

    def _worker_process(self, generation: int, start_received_at: float) -> None:
        """The fresh runtime process spawned on Start."""
        # A Stop lets the previous runtime process finish its current task
        # before control returns to the parent — wait for it to fully exit
        # so two processes never compute on one CPU.
        with self._exit_cond:
            while self._loop_active:
                self._exit_cond.wait()
            if generation != self._loop_generation:
                return  # superseded while waiting
            self._loop_active = True
        try:
            # Reset only once the previous process has fully exited — it
            # still needed its stop_requested flag to unwind.
            self.engine.reset_for_start()
            self._worker_loop(generation, start_received_at)
        finally:
            with self._exit_cond:
                self._loop_active = False
                self._exit_cond.notify_all()

    def _worker_loop(self, generation: int, start_received_at: float) -> None:
        tracer = self.tracer
        if not self.engine.classes_loaded:
            load_span = None
            if tracer is not None and tracer.enabled:
                load_span = tracer.start(
                    "class-load", trace_id=f"worker/{self.node.hostname}",
                    proc=self.node.hostname, app=self.app.app_id)
            self.engine.load_classes(self.app.app_id)
            if load_span is not None:
                load_span.end()
            self.metrics.event("class-load", worker=self.node.hostname)
        self._honored(Signal.START, start_received_at)
        if self.space_factory is not None:
            proxy = self.space_factory()
        else:
            proxy = SpaceProxy(
                self.network, self.node.hostname, self.space_address,
                recovery=self.recovery, rng=self._recovery_rng,
                metrics=self.metrics, locator=self.locator, tracer=tracer,
                codec=self.codec,
            )
        if self.space_wrapper is not None:
            proxy = self.space_wrapper(proxy, self.node.hostname)
        self._proxy = proxy
        template = TaskEntry(app_id=self.app.app_id)
        disconnects = 0                       # consecutive failed cycles
        disconnected_at: Optional[float] = None
        try:
            while self.running and generation == self._loop_generation:
                if self._pending is not None and (
                        self.engine.paused or self.engine.stop_requested):
                    self._release_pending()
                if not self.engine.wait_for_clearance(self._honored):
                    break
                try:
                    if self.prefetch > 1:
                        self._task_batch(proxy, template)
                    else:
                        self._one_task(proxy, template)
                except TransactionError:
                    # The task txn's lease expired server-side (a compute
                    # longer than the lease, or a failover pause): the take
                    # already rolled back and the task is visible again —
                    # restart the cycle, this is not a disconnect.
                    self.metrics.event(
                        "task-txn-expired", worker=self.node.hostname,
                    )
                except (ConnectionClosedError, ConnectionRefusedError_,
                        FencedError):
                    # Space unreachable: either this node died, or the link
                    # or server did.  In the latter case, with a recovery
                    # policy, back off and retry — a healed partition or a
                    # restarted space server must not kill the worker.  A
                    # FencedError means we kept talking to a deposed
                    # primary past the proxy's own retry budget; the next
                    # cycle re-discovers the new one through the locator.
                    if self.crashed or not self.running or self.recovery is None:
                        raise
                    disconnects += 1
                    if disconnected_at is None:
                        disconnected_at = self.runtime.now()
                    if disconnects > self.recovery.max_retries:
                        self.metrics.event(
                            "worker-gave-up", worker=self.node.hostname,
                            attempts=disconnects - 1,
                        )
                        if self.machine.can_apply(Signal.STOP):
                            self.machine.apply(Signal.STOP)
                        break
                    self.metrics.event(
                        "worker-reconnect", worker=self.node.hostname,
                        attempt=disconnects,
                    )
                    self.runtime.sleep(
                        self.recovery.backoff_ms(disconnects, self._recovery_rng)
                    )
                else:
                    if disconnected_at is not None:
                        self.metrics.event(
                            "worker-recovered", worker=self.node.hostname,
                            latency_ms=self.runtime.now() - disconnected_at,
                            attempts=disconnects,
                        )
                        disconnected_at = None
                    disconnects = 0
        except (ConnectionClosedError, ConnectionRefusedError_):
            pass  # space server gone for good or this node crashed
        except Exception as exc:  # noqa: BLE001 - must not kill the host silently
            # An unexpected error (bad reply, marshalled server error…)
            # used to unwind the host with no trace and leave the state
            # machine claiming Running.  Record it and stop cleanly.
            self.metrics.event(
                "worker-error", worker=self.node.hostname, error=repr(exc),
            )
            _log.warning("t=%.0fms %s: worker loop error: %r",
                         self.runtime.now(), self.node.hostname, exc)
            if self.machine.can_apply(Signal.STOP):
                self.machine.apply(Signal.STOP)
        finally:
            if not self.crashed:
                self._release_pending()
                proxy.close()
            else:
                self._pending = None
            if self.engine.stop_requested:
                # Shutdown/cleanup: classes dropped, control returns to parent.
                self.engine.unload_classes()
                if not self.running:
                    pass  # framework teardown, not a rule-base Stop
                else:
                    self._honored(
                        Signal.STOP, getattr(self, "_stop_received_at", None)
                    )

    def _one_task(self, proxy: SpaceProxy, template: TaskEntry) -> None:
        """Take one task, compute, write the result.

        With ``transactional`` takes, the whole cycle runs under a space
        transaction: if this node dies before committing, the server
        aborts and the task entry reappears for other workers.  The
        ``finally`` guarantees the transaction never outlives the cycle —
        an application exception must not strand a FOREVER-leased txn
        holding the taken task hostage.
        """
        txn = None
        if self.transactional:
            lease = (self.task_txn_lease_ms
                     if self.task_txn_lease_ms is not None else FOREVER)
            txn = proxy.transaction(timeout_ms=lease)
        try:
            task = proxy.take(template, txn=txn, timeout_ms=self.worker_poll_ms)
            if task is None:
                return
            if self.first_take_ms is None:
                self.first_take_ms = self.runtime.now()
            compute_started = self.runtime.now()
            tracer = self.tracer
            span = None
            if tracer is not None and tracer.enabled and task.trace:
                span = tracer.start("compute", trace_id=task.trace,
                                    parent_id=task.trace,
                                    proc=self.node.hostname,
                                    task_id=task.task_id)
            # Activation makes the compute span the ambient parent, so
            # RPCs issued during compute *and* the result write-back join
            # the task's trace as children of the compute span.
            activation = (tracer.activate(span) if span is not None
                          else nullcontext())
            with activation:
                try:
                    payload = self._compute(task.payload, task.task_id)
                except Exception as exc:  # noqa: BLE001 - poison quarantine
                    if span is not None:
                        span.end(status="error", error=repr(exc))
                    self._quarantine(proxy, txn, task, exc)
                    return
                compute_ms = self.runtime.now() - compute_started
                if span is not None:
                    span.end(compute_ms=compute_ms)
                proxy.write(
                    ResultEntry(
                        app_id=self.app.app_id,
                        task_id=task.task_id,
                        payload=payload,
                        worker=self.node.hostname,
                        compute_ms=compute_ms,
                        trace=task.trace,
                        tenant=task.tenant,
                        priority=task.priority,
                    ),
                    txn=txn,
                    requeue=True,
                )
                if txn is not None:
                    txn.commit()
            self.last_result_ms = self.runtime.now()
            self.tasks_done += 1
        finally:
            if txn is not None and not txn.completed:
                self._abort_quietly(txn)

    def _task_batch(self, proxy: SpaceProxy, template: TaskEntry) -> None:
        """Pipelined cycle: take up to ``prefetch`` tasks under one
        transaction, compute them all, write everything back in one
        batched RPC (write_all + commit ride one network message).
        The txn_create rides the take_multiple's batch via an intra-batch
        reference, so a full cycle is two round trips, not four per task.

        The whole local batch is always drained — a Pause/Stop signal
        received mid-batch waits until these tasks are written back, the
        same "honored between tasks, never lose a task" rule as the
        single-task loop, applied at batch granularity.  A failing task
        does not poison its batchmates: its replacement (requeue or dead
        letter) joins the same write_all, so the swap of every entry in
        the batch commits atomically.

        In steady state the write-back batch also carries the *next*
        cycle's txn_create + take_multiple, so one round trip both
        retires a batch and prefetches the next (the carry is released —
        txn aborted, tasks reverted — before a Pause/Stop is honored).
        """
        lease = (self.task_txn_lease_ms
                 if self.task_txn_lease_ms is not None else FOREVER)
        txn = None
        tasks = None
        nxt = None
        if self._pending is not None:
            txn, tasks = self._pending
            self._pending = None
        try:
            if tasks is None:
                if self.transactional:
                    opener = proxy.batch()
                    txn = opener.txn_create(timeout_ms=lease)
                    opener.take_multiple(template, self.prefetch, txn=txn,
                                         timeout_ms=self.worker_poll_ms)
                    tasks = opener.flush()[-1]
                else:
                    tasks = proxy.take_multiple(
                        template, self.prefetch,
                        timeout_ms=self.worker_poll_ms,
                    )
            if not tasks:
                return
            self._active_batch = tasks
            if self.first_take_ms is None:
                self.first_take_ms = self.runtime.now()
            out: list[Any] = []
            results = 0
            batch_started = self.runtime.now()
            shares = self._charge_batch(tasks)
            tracer = self.tracer
            tracing = tracer is not None and tracer.enabled
            span_cursor = batch_started
            for task, compute_ms in zip(tasks, shares):
                try:
                    payload = (self.app.execute(task.payload)
                               if self.compute_real else None)
                except Exception as exc:  # noqa: BLE001 - poison-task quarantine
                    if tracing and task.trace:
                        tracer.record("compute", trace_id=task.trace,
                                      parent_id=task.trace,
                                      start_ms=span_cursor,
                                      end_ms=span_cursor + compute_ms,
                                      proc=self.node.hostname, batched=True,
                                      status="error", error=repr(exc))
                        span_cursor += compute_ms
                    out.append(self._replacement_for(task, exc))
                    continue
                if tracing and task.trace:
                    # The batch's single CPU charge already elapsed; tile
                    # the apportioned per-task shares across it so each
                    # trace still shows its own compute interval.
                    tracer.record("compute", trace_id=task.trace,
                                  parent_id=task.trace, start_ms=span_cursor,
                                  end_ms=span_cursor + compute_ms,
                                  proc=self.node.hostname, batched=True,
                                  compute_ms=compute_ms)
                    span_cursor += compute_ms
                out.append(
                    ResultEntry(
                        app_id=self.app.app_id,
                        task_id=task.task_id,
                        payload=payload,
                        worker=self.node.hostname,
                        compute_ms=compute_ms,
                        trace=task.trace,
                        tenant=task.tenant,
                        priority=task.priority,
                    )
                )
                results += 1
            batch = proxy.batch()
            batch.write_all(out, txn=txn, requeue=True)
            if txn is not None:
                batch.commit(txn)
            if self.transactional:
                nxt = batch.txn_create(timeout_ms=lease)
            batch.take_multiple(template, self.prefetch, txn=nxt,
                                timeout_ms=self.worker_poll_ms)
            values = batch.flush()
            self._pending = (nxt, values[-1])
            if results:
                self.last_result_ms = self.runtime.now()
                self.tasks_done += results
        finally:
            self._active_batch = None
            # A still-unresolved batch_ref id means the txn never came
            # into being server-side — nothing to abort.
            if (txn is not None and not txn.completed
                    and not isinstance(txn.txn_id, dict)):
                self._abort_quietly(txn)
            # A prefetch txn that survived a failed flush is also released.
            if (self._pending is None and nxt is not None
                    and not nxt.completed and not isinstance(nxt.txn_id, dict)):
                self._abort_quietly(nxt)

    def _replacement_for(self, task: TaskEntry, exc: Exception) -> Any:
        """Quarantine decision for one failed task: a requeued TaskEntry
        with a bumped attempt count, or a DeadLetterEntry once the
        attempt budget is exhausted."""
        attempts = (task.attempts or 0) + 1
        if attempts >= self.max_task_attempts:
            self.metrics.event(
                "dead-letter", worker=self.node.hostname,
                task_id=task.task_id, attempts=attempts, error=repr(exc),
            )
            return DeadLetterEntry(
                app_id=self.app.app_id, task_id=task.task_id,
                payload=task.payload, error=repr(exc),
                worker=self.node.hostname, attempts=attempts,
                trace=task.trace, tenant=task.tenant,
            )
        self.metrics.event(
            "task-requeued", worker=self.node.hostname,
            task_id=task.task_id, attempts=attempts, error=repr(exc),
        )
        return TaskEntry(
            self.app.app_id, task.task_id, task.payload, attempts=attempts,
            trace=task.trace, tenant=task.tenant, priority=task.priority,
        )

    def _quarantine(self, proxy: SpaceProxy, txn: Optional[RemoteTransaction],
                    task: TaskEntry, exc: Exception) -> None:
        """Application code failed on ``task``: requeue it with a bumped
        attempt count, or dead-letter it once the budget is exhausted.

        Committing the same transaction that took the task makes the swap
        atomic: the original entry disappears exactly when its replacement
        (or dead letter) becomes visible."""
        replacement = self._replacement_for(task, exc)
        proxy.write(replacement, txn=txn, requeue=True)
        if txn is not None:
            txn.commit()

    def _abort_quietly(self, txn: RemoteTransaction) -> None:
        """Abort a leftover transaction; the connection may already be
        gone, in which case the server aborted it when the link dropped."""
        try:
            txn.abort()
        except (ConnectionClosedError, ConnectionRefusedError_, SpaceError):
            txn.completed = True

    def _release_pending(self) -> None:
        """Give back a carried prefetch batch before pausing or stopping.

        Transactional carry: aborting the txn reverts the takes, so the
        tasks reappear for other workers.  Non-transactional carry: the
        takes are final, so the tasks are written back instead."""
        pending, self._pending = self._pending, None
        if pending is None:
            return
        txn, tasks = pending
        if txn is not None:
            if not txn.completed and not isinstance(txn.txn_id, dict):
                self._abort_quietly(txn)
        elif tasks and self._proxy is not None:
            try:
                # requeue=True: these tasks were already admitted once;
                # shedding the give-back would lose them (exactly-once).
                self._proxy.write_all(tasks, requeue=True)
            except (ConnectionClosedError, ConnectionRefusedError_,
                    SpaceError):
                pass  # space gone; nothing more this worker can do

    def _compute(self, payload: Any, task_id: int) -> Any:
        """Charge the modelled CPU cost, then run the real computation."""
        from repro.core.application import Task

        cost = self.app.task_cost_ms(Task(task_id=task_id, payload=payload))
        if self.model_time and cost > 0:
            self.node.cpu.execute(cost)
        if self.compute_real:
            return self.app.execute(payload)
        return None

    def _charge_batch(self, tasks: list[TaskEntry]) -> list[float]:
        """Charge a whole batch's modelled CPU in one blocking call.

        Processor sharing is additive under unchanged load, so one
        ``cpu.execute`` of the summed cost ends at the same virtual time
        as per-task charges — but costs one kernel handoff instead of one
        per task.  The elapsed time is apportioned back to the tasks by
        their share of the modelled work, so per-task ``compute_ms``
        matches what the single-task path would have recorded.
        """
        from repro.core.application import Task

        costs = [
            max(0.0, self.app.task_cost_ms(
                Task(task_id=t.task_id, payload=t.payload)))
            for t in tasks
        ]
        total = sum(costs)
        if not self.model_time or total <= 0:
            return [0.0] * len(tasks)
        elapsed = self.node.cpu.execute(total)
        return [elapsed * (cost / total) for cost in costs]
