"""Multi-tenant job service: priority preemption between tasks.

The admission controller (:mod:`repro.tuplespace.proxy`) meters what
*enters* the space and the deficit-round-robin dispatcher
(:mod:`repro.tuplespace.space`) shares takes across tenants — but a
worker pipeline that already prefetched a batch of low-priority tasks
still makes an urgent tenant wait behind that whole carry.  The
:class:`PreemptionGovernor` closes the gap: it watches the queued
backlog, and when high-priority work is waiting while workers sit on
prefetched low-priority carries, it Pauses those workers and Resumes
them one poll later.  The Pause is honoured *between tasks* (the Fig. 5
rule the whole framework is built on), so the worker releases its carry
back to the space — transactional carries abort (the takes revert),
non-transactional ones are written back with ``requeue=True`` so the
give-back cannot be shed — and nothing is ever lost or duplicated: the
master's results-dict dedup keeps aggregation exactly-once even if a
released task races its replacement.

Preemption is deliberately cooperative and coarse: no task is killed
mid-compute (the paper's "signals honoured between tasks" invariant),
the governor merely stops low-priority pipelines from hoarding the
queue while urgent work exists.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.entries import TaskEntry
from repro.core.metrics import Metrics
from repro.core.signals import Signal
from repro.runtime.base import Runtime
from repro.util.log import get_logger

__all__ = ["PreemptionGovernor"]

_log = get_logger("tenancy")


class PreemptionGovernor:
    """Pauses/Resumes workers so urgent backlog overtakes stale carries.

    ``priority_cutoff``: tasks with ``priority >= cutoff`` are urgent;
    everything below (including ``priority None``, read as 0) is
    preemptible.  Runs on the master node with direct (in-process)
    access to the authoritative spaces and worker hosts, so decisions
    cost no RPCs and stay deterministic under the simulated clock.
    """

    def __init__(
        self,
        runtime: Runtime,
        framework: Any,
        metrics: Metrics,
        poll_ms: float = 500.0,
        priority_cutoff: int = 1,
    ) -> None:
        self.runtime = runtime
        self.framework = framework
        self.metrics = metrics
        self.poll_ms = poll_ms
        self.priority_cutoff = priority_cutoff
        self.running = False
        self.preemptions = 0
        #: Read-through stats for the telemetry registry.
        self.stats: dict[str, int] = {"polls": 0, "preemptions": 0,
                                      "tasks_released": 0}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.runtime.spawn(self._loop, name="preemption-governor")

    def stop(self) -> None:
        self.running = False

    # -- the governing loop ----------------------------------------------------

    def _urgent_backlog(self) -> int:
        """Queued (visible, un-taken) tasks at or above the cutoff."""
        urgent = 0
        for space in self.framework.current_spaces():
            for entry in space.contents(TaskEntry()):
                if (entry.priority or 0) >= self.priority_cutoff:
                    urgent += 1
        return urgent

    def _preemptible_carry(self, host: Any) -> int:
        """How many sub-cutoff tasks ``host``'s pipeline is sitting on.

        Two places to look: the batch the worker is computing right now
        (``_active_batch`` — the whole batch's CPU is charged as one
        block, so this is where a poll actually lands) and the carry a
        flush prefetched for the next cycle (``_pending`` — non-``None``
        only for the zero-time gap between flush and loop top).  The
        Pause is honoured *after* the active batch completes; what the
        worker then releases is its next prefetch, surrendering the
        pipeline's claim on the queue without killing any compute."""
        tasks: list[Any] = list(getattr(host, "_active_batch", None) or ())
        pending = host._pending
        if pending is not None:
            tasks.extend(pending[1])
        return sum(1 for task in tasks
                   if (task.priority or 0) < self.priority_cutoff)

    def _loop(self) -> None:
        from repro.core.states import WorkerState

        while self.running:
            self.runtime.sleep(self.poll_ms)
            if not self.running:
                return
            self.stats["polls"] += 1
            if self._urgent_backlog() == 0:
                continue
            # Urgent work is queued: preempt every worker hoarding a
            # low-priority carry.  Pause now; the worker honours it at
            # its next between-tasks check and releases the carry.
            paused: list[Any] = []
            for host in self.framework.worker_hosts:
                if host.crashed or host.state is not WorkerState.RUNNING:
                    continue
                carry = self._preemptible_carry(host)
                if carry == 0:
                    continue
                if not host.machine.can_apply(Signal.PAUSE):
                    continue
                host.handle_signal(Signal.PAUSE)
                paused.append(host)
                self.preemptions += 1
                self.stats["preemptions"] += 1
                self.stats["tasks_released"] += carry
                self.metrics.event(
                    "tenant-preempted", worker=host.node.hostname,
                    released=carry, cutoff=self.priority_cutoff,
                )
                _log.info("t=%.0fms preempted %s (released %d tasks)",
                          self.runtime.now(), host.node.hostname, carry)
            if not paused:
                continue
            # One worker poll is enough for the between-tasks check to
            # land; then hand the CPU back — the released tasks are in
            # the space and the DRR dispatcher re-orders the takes.
            self.runtime.sleep(self.framework.config.worker_poll_ms)
            for host in paused:
                if host.machine.can_apply(Signal.RESUME):
                    host.handle_signal(Signal.RESUME)
