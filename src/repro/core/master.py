"""The master module (paper §4.1–4.2).

Runs as an application-level process on the master node.  Three phases,
with task-planning and compute overlapping by construction (workers take
entries as soon as they appear):

* **task-planning** — decompose the application, create a task entry per
  task (paying the per-task planning CPU cost: serialization + write) and
  write it into the space;
* **compute** — performed by the workers;
* **result-aggregation** — take result entries, fold each into the
  solution (paying the per-result aggregation CPU cost).  This phase's
  duration tracks the slowest worker, because the master "needs to wait
  for the last task to complete".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.application import Application, Task
from repro.core.entries import (
    DeadLetterEntry,
    MasterCheckpointEntry,
    ResultEntry,
    TaskEntry,
)
from repro.core.metrics import Metrics
from repro.errors import (
    AdmissionError,
    ConnectionClosedError,
    ConnectionRefusedError_,
    FencedError,
    MasterCrashedError,
)
from repro.node.machine import Node
from repro.runtime.base import Runtime
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.space import JavaSpace

__all__ = ["Master", "MasterReport"]


@dataclass
class MasterReport:
    """Everything the scalability experiments measure at the master."""

    app_id: str
    task_count: int
    solution: Any
    planning_ms: float
    aggregation_ms: float
    parallel_ms: float
    max_task_overhead_ms: float          # max instantaneous planning/agg cost
    results_by_worker: dict[str, int] = field(default_factory=dict)
    #: task_id → error string for tasks the workers gave up on (poison
    #: tasks).  Partial-result policy: the run still terminates, with
    #: ``complete`` False and ``solution`` aggregated over what arrived.
    dead_letters: dict[int, str] = field(default_factory=dict)
    complete: bool = True
    duplicate_results: int = 0
    replicated_tasks: int = 0
    checkpoints_written: int = 0
    #: seq of the checkpoint this (restarted) master resumed from, or None.
    resumed_from_seq: Optional[int] = None

    @property
    def planning_plus_aggregation_ms(self) -> float:
        return self.planning_ms + self.aggregation_ms


class Master:
    """Plans tasks into the space and aggregates results out of it.

    With ``eager_scheduling`` (Charlotte's idea, Table 1), the master
    re-writes a straggling task entry when every entry has been taken but
    results stopped arriving — a replica races the straggler, and the
    first result wins (duplicates are consumed and ignored; tasks must be
    idempotent, which bag-of-tasks work is by construction).
    """

    def __init__(
        self,
        runtime: Runtime,
        node: Node,
        space: JavaSpace,
        app: Application,
        metrics: Metrics,
        eager_scheduling: bool = False,
        straggler_timeout_ms: float = 5_000.0,
        max_replicas: int = 2,
        model_time: bool = True,
        dead_letter_poll_ms: float = 1_000.0,
        give_up_after_ms: Optional[float] = None,
        checkpoint_ms: Optional[float] = None,
        checkpoint_lease_ms: float = 60_000.0,
        space_retry_ms: Optional[float] = None,
        space_max_retries: int = 20,
        seed_batch: int = 1,
        drain_batch: int = 1,
        tracer: Any = None,
        tenant: Optional[str] = None,
        priority: Optional[int] = None,
        latency_hist: Any = None,
    ) -> None:
        self.runtime = runtime
        self.node = node
        self.space = space
        self.app = app
        self.metrics = metrics
        #: Telemetry tracer (may be ``None``/disabled).  The master mints
        #: one trace per task — ``"<app_id>/<task_id>"``, stamped into
        #: every ``TaskEntry`` regardless of enablement so entry bytes
        #: (and modelled transfer times) never depend on tracing — and
        #: owns each task's root ``"task"`` span from seed to settlement.
        self.tracer = tracer
        self._task_spans: dict[int, Any] = {}
        self._job_span: Any = None
        #: End-to-end task latency histogram (seed → aggregated), fed by
        #: the drain loop when the framework wires one in.
        self.latency_hist = latency_hist
        self._task_seeded: dict[int, float] = {}
        self.eager_scheduling = eager_scheduling
        self.straggler_timeout_ms = straggler_timeout_ms
        self.max_replicas = max_replicas
        self.model_time = model_time  # charge planning/agg CPU (simulation only)
        #: How often the aggregation loop wakes to drain dead letters when
        #: no result arrives (virtual-time polls are one heap event each).
        self.dead_letter_poll_ms = dead_letter_poll_ms
        #: Quiet period after which the master abandons the run with a
        #: partial result instead of spinning on replication forever.
        #: ``None`` (default) keeps the wait-for-last-task semantics.
        self.give_up_after_ms = give_up_after_ms
        #: Checkpoint/resume: every ``checkpoint_ms`` the master writes a
        #: :class:`MasterCheckpointEntry` (lease ``checkpoint_lease_ms``)
        #: into the space; a restarted master adopts it and completes the
        #: job exactly-once.  ``None`` disables checkpointing.
        self.checkpoint_ms = checkpoint_ms
        self.checkpoint_lease_ms = checkpoint_lease_ms
        #: Failover tolerance: retry space operations that hit a dropped
        #: connection (the proxy only auto-retries idempotent ops).  A lost
        #: take may drop one in-flight result — eager scheduling recomputes
        #: it and the results-dict dedup keeps aggregation exactly-once.
        self.space_retry_ms = space_retry_ms
        self.space_max_retries = space_max_retries
        #: Pipelining: seed tasks in chunks of ``seed_batch`` via one
        #: write_all per chunk, and drain up to ``drain_batch`` results
        #: per round trip via take_multiple.  1/1 = the classic
        #: one-entry-per-round-trip loops.
        if seed_batch < 1 or drain_batch < 1:
            raise ValueError(
                f"seed_batch/drain_batch must be >= 1: {seed_batch}/{drain_batch}")
        self.seed_batch = seed_batch
        self.drain_batch = drain_batch
        #: Multi-tenant identity: stamped on every TaskEntry this master
        #: seeds (so admission control can meter it, fair-share dispatch
        #: can weight it, and shedding can rank it) and used to scope the
        #: result/dead-letter templates when several masters share one
        #: ``app_id``.  ``None`` keeps the single-tenant wire format.
        self.tenant = tenant
        self.priority = priority
        self.replicated_tasks = 0
        self.duplicate_results = 0
        self.checkpoints_written = 0
        self.resumed_from_seq: Optional[int] = None
        self._ckpt_seq = 0
        self._cancelled = False
        self._crashed = False

    def cancel(self) -> None:
        """Abandon the run: the aggregation loop exits at its next wake
        (requires eager scheduling or any finite take timeout to notice)."""
        self._cancelled = True

    def crash(self) -> None:
        """Kill the master process (fault injection): every subsequent
        space touch raises :class:`MasterCrashedError`, unwinding
        :meth:`run` without aggregating anything further — including a
        result already in flight when the crash landed."""
        self._crashed = True

    def _check_crashed(self) -> None:
        if self._crashed:
            raise MasterCrashedError(f"master for {self.app.app_id} killed")

    # -- guarded space operations ------------------------------------------------

    def _guard(self, op):
        """Run one space operation, retrying dropped connections.

        During a failover window the proxy's reconnect lands on the
        promoted standby (via its locator); non-idempotent ops surface the
        drop here and are re-issued after a pause.  Without
        ``space_retry_ms`` the original fail-fast behaviour stands.
        """
        attempt = 0
        while True:
            self._check_crashed()
            try:
                return op()
            except (ConnectionClosedError, ConnectionRefusedError_,
                    FencedError):
                if self.space_retry_ms is None:
                    raise
                attempt += 1
                if attempt > self.space_max_retries:
                    raise
                self.metrics.event("master-space-retry", app=self.app.app_id,
                                   attempt=attempt)
                self.runtime.sleep(self.space_retry_ms)
            except AdmissionError as exc:
                # Over-quota or shed: the op had no side effects, so
                # re-issuing it verbatim is safe.  The proxy already
                # backed off through its own retry budget; this outer
                # loop is the master's last-resort patience, honouring
                # the server's retry-after hint.
                if self.space_retry_ms is None:
                    raise
                attempt += 1
                if attempt > self.space_max_retries:
                    raise
                self.metrics.event("master-admission-retry",
                                   app=self.app.app_id, attempt=attempt,
                                   tenant=exc.tenant, reason=exc.reason)
                pause_ms = max(exc.retry_after_ms, self.space_retry_ms)
                if self.tracer is not None and self.tracer.enabled:
                    # Attribution: the doctor charges this wait to the
                    # "admission" phase.  The sleep itself is identical
                    # traced or not (span recording reads the clock, it
                    # never advances it).
                    with self.tracer.start(
                            "admission.backoff", f"job/{self.app.app_id}",
                            parent_id=(self._job_span.span_id
                                       if self._job_span is not None
                                       else None),
                            proc="master", tenant=exc.tenant,
                            reason=exc.reason):
                        self.runtime.sleep(pause_ms)
                else:
                    self.runtime.sleep(pause_ms)

    def _write(self, entry, lease_ms: float = FOREVER):
        return self._guard(lambda: self.space.write(entry, lease_ms=lease_ms))

    def _write_all(self, entries):
        # Bulk seeds retry per-remainder: a sharded scatter's partial
        # admission rejection names the entries that landed, and
        # re-issuing those would seed duplicate tasks.
        remaining = list(entries)

        def op():
            if not remaining:
                return 0
            try:
                return self.space.write_all(remaining)
            except AdmissionError as exc:
                admitted = {id(e) for e in
                            getattr(exc, "admitted_entries", ())}
                if admitted:
                    remaining[:] = [e for e in remaining
                                    if id(e) not in admitted]
                raise

        return self._guard(op)

    def _take(self, template, timeout_ms):
        return self._guard(lambda: self.space.take(template, timeout_ms=timeout_ms))

    def _take_if_exists(self, template):
        return self._guard(lambda: self.space.take_if_exists(template))

    def _read_if_exists(self, template):
        return self._guard(lambda: self.space.read_if_exists(template))

    def _contents(self, template):
        return self._guard(lambda: self.space.contents(template))

    # -- tracing -----------------------------------------------------------------

    def _trace_id(self, task_id: int) -> str:
        return f"{self.app.app_id}/{task_id}"

    def _task_entry(self, task_id: int, payload: Any) -> TaskEntry:
        """A seedable TaskEntry carrying this master's tenant identity."""
        return TaskEntry(self.app.app_id, task_id, payload,
                         trace=self._trace_id(task_id),
                         tenant=self.tenant, priority=self.priority)

    def _open_task_span(self, task_id: int) -> None:
        """Open the task's root span (span_id == trace_id, so workers can
        parent compute spans without any span-ID propagation)."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled or task_id in self._task_spans:
            return
        tid = self._trace_id(task_id)
        parent = self._job_span.span_id if self._job_span is not None else None
        self._task_spans[task_id] = tracer.start(
            "task", trace_id=tid, span_id=tid, parent_id=parent,
            proc="master", task_id=task_id)

    def _settle_task_span(self, task_id: int, **attrs: Any) -> None:
        span = self._task_spans.pop(task_id, None)
        if span is not None:
            span.end(**attrs)

    def run(self) -> MasterReport:
        """Execute the full master lifecycle; blocks until aggregation ends."""
        app = self.app
        started = self.runtime.now()
        self._task_seeded = {}
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        plan_span = None
        if tracing:
            self._task_spans = {}
            self._job_span = tracer.start(
                "job", trace_id=f"job/{app.app_id}",
                span_id=f"job/{app.app_id}", proc="master", app=app.app_id)
            plan_span = tracer.start(
                "planning", trace_id=f"job/{app.app_id}",
                parent_id=self._job_span.span_id, proc="master")
        max_overhead = 0.0
        results: dict[int, Any] = {}
        by_worker: dict[str, int] = {}
        dead: dict[int, str] = {}

        # ---- task-planning phase -------------------------------------------------
        # app.plan() is deterministic, so a restarted master re-derives the
        # same task list and only needs the checkpoint to know which tasks
        # are already settled.
        tasks: list[Task] = app.plan()
        checkpoint = (self._adopt_checkpoint()
                      if self.checkpoint_ms is not None else None)
        if checkpoint is not None:
            self._resume_from(checkpoint, tasks, results, dead, by_worker)
        elif self.seed_batch > 1:
            # Chunked seeding: one planning CPU charge and one write_all
            # round trip per chunk (summed charges end at the same virtual
            # time as per-task ones, minus the per-task kernel handoffs).
            for start in range(0, len(tasks), self.seed_batch):
                group = tasks[start:start + self.seed_batch]
                t0 = self.runtime.now()
                cost = sum(max(0.0, app.planning_cost_ms(t)) for t in group)
                if self.model_time and cost > 0:
                    self.node.cpu.execute(cost)
                for t in group:
                    self._open_task_span(t.task_id)
                self._write_all([self._task_entry(t.task_id, t.payload)
                                 for t in group])
                seeded_at = self.runtime.now()
                for t in group:
                    self._task_seeded[t.task_id] = seeded_at
                max_overhead = max(max_overhead, self.runtime.now() - t0)
        else:
            for task in tasks:
                t0 = self.runtime.now()
                cost = app.planning_cost_ms(task)
                if self.model_time and cost > 0:
                    self.node.cpu.execute(cost)
                self._open_task_span(task.task_id)
                self._write(self._task_entry(task.task_id, task.payload))
                self._task_seeded[task.task_id] = self.runtime.now()
                max_overhead = max(max_overhead, self.runtime.now() - t0)
        planning_ms = self.runtime.now() - started
        self.metrics.scalar(f"master/{app.app_id}/planning_ms", planning_ms)
        self.metrics.event("planning-done", app=app.app_id, tasks=len(tasks))
        if plan_span is not None:
            plan_span.end(tasks=len(tasks))

        # ---- result-aggregation phase ---------------------------------------------
        aggregation_started = self.runtime.now()
        agg_span = None
        if tracing:
            agg_span = tracer.start(
                "aggregation", trace_id=f"job/{app.app_id}",
                parent_id=self._job_span.span_id, proc="master")
        # With several masters sharing one app_id, the tenant field keeps
        # each master draining only its own results (None = wildcard, so
        # single-tenant behaviour is unchanged).
        template = ResultEntry(app_id=app.app_id, tenant=self.tenant)
        task_by_id = {task.task_id: task for task in tasks}
        replicas: dict[int, int] = {}
        last_progress = self.runtime.now()
        last_checkpoint = self.runtime.now()
        while len(results) + len(dead) < len(tasks):
            if self._cancelled:
                break
            self._check_crashed()
            ckpt = None
            if self.checkpoint_ms is not None and \
                    self.runtime.now() - last_checkpoint >= self.checkpoint_ms:
                ckpt = self._build_checkpoint(tasks, results, dead, by_worker)
                last_checkpoint = self.runtime.now()
            wait_ms = (self.straggler_timeout_ms if self.eager_scheduling
                       else self.dead_letter_poll_ms)
            if self.checkpoint_ms is not None:
                wait_ms = min(wait_ms, self.checkpoint_ms)
            entries = self._drain_results(template, wait_ms, ckpt)
            # A kill that lands while a take is in flight must not
            # aggregate the entries it returned: the results are dropped
            # here (eager replication recomputes them for the resumed
            # master).
            self._check_crashed()
            if not entries:
                # No result: look for quarantined tasks (their result will
                # never come), then consider straggler replication / giving
                # up with a partial solution.
                if self._drain_dead_letters(dead, results):
                    last_progress = self.runtime.now()
                    continue
                now = self.runtime.now()
                if self.eager_scheduling and \
                        now - last_progress >= self.straggler_timeout_ms:
                    self._replicate_stragglers(task_by_id, results, replicas, dead)
                if self.give_up_after_ms is not None and \
                        now - last_progress >= self.give_up_after_ms:
                    missing = len(tasks) - len(results) - len(dead)
                    self.metrics.event("master-gave-up", app=app.app_id,
                                       missing=missing)
                    break
                continue
            last_progress = self.runtime.now()
            # One aggregation CPU charge for the whole drained batch:
            # summed over the first occurrence of each fresh task, exactly
            # what per-entry charging would have cost, in one sleep.  The
            # elapsed time is apportioned back per task so the overhead
            # metric still sees each entry's own aggregation cost.
            agg_cost: dict[int, float] = {}
            for entry in entries:
                if entry.task_id in results or entry.task_id in agg_cost:
                    continue
                agg_cost[entry.task_id] = max(0.0, app.aggregation_cost_ms(
                    entry.task_id, entry.payload))
            batch_cost = sum(agg_cost.values())
            charged = 0.0
            agg_cursor = self.runtime.now()
            if self.model_time and batch_cost > 0:
                charged = self.node.cpu.execute(batch_cost)
            for entry in entries:
                if entry.task_id in results:
                    self.duplicate_results += 1
                    continue  # a straggler and its replica both finished
                t0 = self.runtime.now()
                results[entry.task_id] = entry.payload
                if self.latency_hist is not None:
                    # Seed → aggregated, on the virtual clock.  Tasks
                    # adopted from a checkpoint have no seed timestamp;
                    # fall back to this master's aggregation start.
                    self.latency_hist.observe(
                        t0 - self._task_seeded.get(entry.task_id,
                                                   aggregation_started))
                # A replica's late success trumps an earlier dead letter.
                dead.pop(entry.task_id, None)
                if entry.worker:
                    by_worker[entry.worker] = by_worker.get(entry.worker, 0) + 1
                if self.checkpoint_ms is not None or self.tenant is not None:
                    # Checkpointed masters need these for exactly-once
                    # audits across restarts; tenant-labelled masters for
                    # the contention campaign's stall percentiles.
                    self.metrics.event("result-aggregated", app=app.app_id,
                                       task_id=entry.task_id, worker=entry.worker)
                share = (charged * agg_cost.get(entry.task_id, 0.0) / batch_cost
                         if batch_cost > 0 else 0.0)
                if tracing:
                    # The batch CPU charge already elapsed in one sleep;
                    # tile the apportioned shares across that interval so
                    # each task's tree shows its own aggregation cost.
                    trace_id = entry.trace or self._trace_id(entry.task_id)
                    tracer.record("aggregate", trace_id=trace_id,
                                  parent_id=trace_id, start_ms=agg_cursor,
                                  end_ms=agg_cursor + share, proc="master",
                                  worker=entry.worker)
                    agg_cursor += share
                    self._settle_task_span(entry.task_id, status="aggregated",
                                           worker=entry.worker)
                max_overhead = max(max_overhead,
                                   share + self.runtime.now() - t0)
        self._drain_dead_letters(dead, results)
        if self.eager_scheduling:
            self._drain_leftovers(template, task_by_id)
        if self.checkpoint_ms is not None and not self._cancelled:
            self._clear_checkpoints()
        complete = not self._cancelled and len(results) == len(tasks)
        if self._cancelled:
            solution = None
        elif complete:
            solution = app.aggregate(results)
        else:
            # Partial-result policy: hand the application what arrived;
            # apps that insist on completeness make the solution None.
            try:
                solution = app.aggregate(results)
            except Exception:  # noqa: BLE001 - partial set rejected by the app
                solution = None
        now = self.runtime.now()
        aggregation_ms = now - aggregation_started
        parallel_ms = now - started

        if self.replicated_tasks:
            self.metrics.scalar(f"master/{app.app_id}/replicated_tasks",
                                self.replicated_tasks)
        if dead:
            self.metrics.scalar(f"master/{app.app_id}/dead_letters", len(dead))
        self.metrics.scalar(f"master/{app.app_id}/aggregation_ms", aggregation_ms)
        self.metrics.scalar(f"master/{app.app_id}/parallel_ms", parallel_ms)
        if tracing:
            for task_id in list(self._task_spans):
                self._settle_task_span(task_id, status="unsettled")
            agg_span.end(results=len(results), dead=len(dead))
            self._job_span.end(complete=complete,
                               parallel_ms=parallel_ms)
        return MasterReport(
            app_id=app.app_id,
            task_count=len(tasks),
            solution=solution,
            planning_ms=planning_ms,
            aggregation_ms=aggregation_ms,
            parallel_ms=parallel_ms,
            max_task_overhead_ms=max_overhead,
            results_by_worker=by_worker,
            dead_letters=dead,
            complete=complete,
            duplicate_results=self.duplicate_results,
            replicated_tasks=self.replicated_tasks,
            checkpoints_written=self.checkpoints_written,
            resumed_from_seq=self.resumed_from_seq,
        )

    # -- checkpoint/resume internals -------------------------------------------------

    def _adopt_checkpoint(self) -> Optional[MasterCheckpointEntry]:
        """Find the newest surviving checkpoint for this application."""
        checkpoints = self._contents(MasterCheckpointEntry(app_id=self.app.app_id))
        if not checkpoints:
            return None
        return max(checkpoints, key=lambda c: c.seq or 0)

    def _resume_from(
        self,
        checkpoint: MasterCheckpointEntry,
        tasks: list[Task],
        results: dict[int, Any],
        dead: dict[int, str],
        by_worker: dict[str, int],
    ) -> None:
        """Adopt checkpointed progress and re-seed only the tasks that
        left no trace anywhere — checkpointed, queued, computed or dead.

        A task a worker holds under an open transaction is invisible to
        the probes and gets re-seeded; the resulting duplicate result is
        consumed by the results-dict dedup, so aggregation stays
        exactly-once either way.
        """
        results.update(checkpoint.results or {})
        dead.update(checkpoint.dead or {})
        by_worker.update(checkpoint.by_worker or {})
        self.duplicate_results = checkpoint.duplicates or 0
        self.replicated_tasks = checkpoint.replicas or 0
        self._ckpt_seq = checkpoint.seq or 0
        self.resumed_from_seq = checkpoint.seq
        reseed: list[TaskEntry] = []
        reseeded = 0
        for task in tasks:
            tid = task.task_id
            if tid in results or tid in dead:
                continue
            self._open_task_span(tid)
            if self._read_if_exists(
                    TaskEntry(app_id=self.app.app_id, task_id=tid)) is not None:
                continue
            if self._read_if_exists(
                    ResultEntry(app_id=self.app.app_id, task_id=tid)) is not None:
                continue
            if self._read_if_exists(
                    DeadLetterEntry(app_id=self.app.app_id, task_id=tid)) is not None:
                continue
            reseed.append(self._task_entry(tid, task.payload))
            reseeded += 1
            if self.seed_batch > 1 and len(reseed) >= self.seed_batch:
                self._write_all(reseed)
                reseed = []
        if reseed:
            if self.seed_batch > 1:
                self._write_all(reseed)
            else:
                for entry in reseed:
                    self._write(entry)
        self.metrics.event(
            "master-resumed", app=self.app.app_id, seq=checkpoint.seq,
            results=len(results), dead=len(dead), reseeded=reseeded,
        )

    def _build_checkpoint(
        self,
        tasks: list[Task],
        results: dict[int, Any],
        dead: dict[int, str],
        by_worker: dict[str, int],
    ) -> MasterCheckpointEntry:
        """Assemble checkpoint ``seq+1``; :meth:`_drain_results` writes it.

        The write rides the next drain round trip, and the predecessor's
        retirement rides the same message — write-new-before-take-old
        order is preserved inside the batch, so a crash anywhere still
        leaves at least one checkpoint in the space; resume adopts the
        highest ``seq`` and the end-of-run sweep clears any leftovers.
        """
        self._ckpt_seq += 1
        outstanding = [t.task_id for t in tasks
                       if t.task_id not in results and t.task_id not in dead]
        entry = MasterCheckpointEntry(
            app_id=self.app.app_id, seq=self._ckpt_seq,
            results=dict(results), dead=dict(dead),
            by_worker=dict(by_worker), outstanding=outstanding,
            duplicates=self.duplicate_results,
            replicas=self.replicated_tasks,
        )
        self.checkpoints_written += 1
        self.metrics.event("master-checkpoint", app=self.app.app_id,
                           seq=self._ckpt_seq, results=len(results),
                           outstanding=len(outstanding))
        return entry

    def _write_checkpoint(
        self,
        tasks: list[Task],
        results: dict[int, Any],
        dead: dict[int, str],
        by_worker: dict[str, int],
    ) -> None:
        """Write checkpoint ``seq+1`` now, then retire its predecessor
        (standalone form; the run loop piggybacks the same operations on
        a drain round trip via :meth:`_drain_results`)."""
        ckpt = self._build_checkpoint(tasks, results, dead, by_worker)
        self._write(ckpt, lease_ms=self.checkpoint_lease_ms)
        while self._take_if_exists(
            MasterCheckpointEntry(app_id=self.app.app_id, seq=(ckpt.seq or 0) - 1)
        ) is not None:
            pass

    def _drain_results(self, template: ResultEntry, wait_ms: float,
                       ckpt: Optional[MasterCheckpointEntry]) -> list[ResultEntry]:
        """One drain round trip: up to ``drain_batch`` results, with a due
        checkpoint (write new + retire old) riding the same message.

        Over a proxy this is a single pipelined ``batch`` RPC; on a local
        space the operations run directly (there is no round trip to
        save).  The unpipelined configuration (``drain_batch == 1``, no
        checkpoint due) keeps the classic single blocking take.
        """
        old = (MasterCheckpointEntry(app_id=self.app.app_id,
                                     seq=(ckpt.seq or 0) - 1)
               if ckpt is not None and (ckpt.seq or 0) > 1 else None)

        def attempt() -> list[ResultEntry]:
            if ckpt is None and self.drain_batch <= 1:
                entry = self.space.take(template, timeout_ms=wait_ms)
                return [entry] if entry is not None else []
            batcher = getattr(self.space, "batch", None)
            if batcher is None:
                if ckpt is not None:
                    self.space.write(ckpt, lease_ms=self.checkpoint_lease_ms)
                    if old is not None:
                        while self.space.take_if_exists(old) is not None:
                            pass
                if self.drain_batch > 1:
                    return self.space.take_multiple(
                        template, self.drain_batch, timeout_ms=wait_ms)
                entry = self.space.take(template, timeout_ms=wait_ms)
                return [entry] if entry is not None else []
            batch = batcher()
            if ckpt is not None:
                batch.write(ckpt, lease_ms=self.checkpoint_lease_ms)
                if old is not None:
                    batch.take(old, timeout_ms=0.0)
            if self.drain_batch > 1:
                batch.take_multiple(template, self.drain_batch,
                                    timeout_ms=wait_ms)
            else:
                batch.take(template, timeout_ms=wait_ms)
            got = batch.flush()[-1]
            if self.drain_batch > 1:
                return got or []
            return [got] if got is not None else []

        return self._guard(attempt)

    def _clear_checkpoints(self) -> None:
        """The run is settled: retire every checkpoint for this app."""
        try:
            while self._take_if_exists(
                MasterCheckpointEntry(app_id=self.app.app_id)
            ) is not None:
                pass
        except (ConnectionClosedError, ConnectionRefusedError_):
            pass  # space going down with the run; leases age the rest out

    # -- eager scheduling internals ------------------------------------------------

    def _drain_dead_letters(self, dead: dict[int, str],
                            results: dict[int, Any]) -> bool:
        """Consume every quarantined task currently in the space.

        A dead letter for a task that some replica already completed is
        dropped — the result won the race.  Returns True if anything new
        was recorded (progress, for the give-up clock)."""
        template = DeadLetterEntry(app_id=self.app.app_id, tenant=self.tenant)
        progressed = False
        while True:
            entry = self._take_if_exists(template)
            if entry is None:
                return progressed
            if entry.task_id in results or entry.task_id in dead:
                continue
            dead[entry.task_id] = entry.error or "unknown error"
            progressed = True
            self._settle_task_span(entry.task_id, status="dead-letter",
                                   error=entry.error, worker=entry.worker)
            self.metrics.event(
                "dead-letter-received", app=self.app.app_id,
                task_id=entry.task_id, worker=entry.worker,
                attempts=entry.attempts,
            )

    def _replicate_stragglers(
        self,
        task_by_id: dict[int, Task],
        results: dict[int, Any],
        replicas: dict[int, int],
        dead: dict[int, str],
    ) -> None:
        """Re-write task entries whose result is overdue.

        Only tasks with no visible entry left in the space (i.e. taken by
        some worker that has gone quiet) are replicated, at most
        ``max_replicas`` times each.  Dead-lettered tasks are not raced:
        they failed deterministically, another attempt would too.
        """
        for task_id, task in task_by_id.items():
            if task_id in results or task_id in dead:
                continue
            if replicas.get(task_id, 0) >= self.max_replicas:
                continue
            probe = TaskEntry(app_id=self.app.app_id, task_id=task_id)
            if self._read_if_exists(probe) is not None:
                continue  # still queued: nobody is sitting on it
            replicas[task_id] = replicas.get(task_id, 0) + 1
            self.replicated_tasks += 1
            self.metrics.event("task-replicated", app=self.app.app_id,
                               task_id=task_id)
            self._write(self._task_entry(task_id, task.payload))

    def _drain_leftovers(self, template: ResultEntry,
                         task_by_id: dict[int, Task]) -> None:
        """Consume duplicate results and retract un-taken replicas."""
        while True:
            extra = self._take_if_exists(template)
            if extra is None:
                break
            self.duplicate_results += 1
        for task_id in task_by_id:
            while self._take_if_exists(
                TaskEntry(app_id=self.app.app_id, task_id=task_id)
            ) is not None:
                pass
