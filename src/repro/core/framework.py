"""Top-level assembly: the adaptive cluster-computing framework.

Wires the paper's three modules onto a :class:`~repro.node.Cluster`:

* master node: JavaSpaces service (+ its network server), Jini lookup
  service + join, the code server, the network management module, and
  the master process;
* every worker node: a :class:`~repro.core.worker.WorkerHost` (SNMP agent
  + rule-base client + remote-configuration engine).

Workers are recruited by the monitoring loop: an idle node's first SNMP
poll produces a Start signal, so an unloaded cluster spins up within one
poll interval — no manual management, the paper's key contribution over
the systems in its Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.application import Application
from repro.core.codeserver import CODE_SERVER_PORT, CodeServer
from repro.core.master import Master, MasterReport
from repro.core.metrics import Metrics
from repro.core.netmgmt import RULEBASE_PORT, NetworkManagementModule
from repro.core.signals import ThresholdPolicy
from repro.core.worker import WorkerHost
from repro.errors import ConfigurationError, MasterCrashedError
from repro.telemetry import Telemetry
from repro.jini.discovery import DiscoveryClient
from repro.jini.join import JoinManager, LookupClient
from repro.jini.lookup import LookupService, ServiceItem
from repro.net.address import Address
from repro.node.cluster import Cluster
from repro.runtime.base import Runtime
from repro.tuplespace.durable import DurableSpace, HotStandby
from repro.tuplespace.entry import Entry
from repro.tuplespace.failover import JiniSpaceLocator, SpaceSupervisor
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.proxy import SpaceProxy, SpaceServer
from repro.tuplespace.sharding import HashRing, ShardRouter
from repro.tuplespace.space import JavaSpace
from repro.tuplespace.transaction import TransactionManager

__all__ = ["AdaptiveClusterFramework", "FrameworkConfig"]

SPACE_PORT = 4155
LOOKUP_PORT = 4162

#: Modelled footprints of the master-side services — the paper: "Due to
#: the high memory requirements of the Jini infrastructure, the master
#: module … runs on an 800 MHz … PC with 256 MB RAM."
JINI_FOOTPRINT_MB = 48
SPACE_FOOTPRINT_MB = 64


@dataclass(frozen=True)
class FrameworkConfig:
    """Knobs for one framework deployment."""

    poll_interval_ms: float = 1000.0        # SNMP monitoring period
    worker_poll_ms: float = 250.0           # worker take() poll / signal check
    thresholds: ThresholdPolicy = field(default_factory=ThresholdPolicy)
    community: str = "public"               # SNMP community string
    monitoring: bool = True                 # network management module on/off
    use_jini: bool = True                   # discover the space via lookup
    compute_real: bool = True               # actually run app.execute on workers
    load_metric: str = "external"           # what the inference engine polls
    transactional_takes: bool = False       # crash-safe task takes (see worker)
    monitoring_mode: str = "poll"           # "poll" (paper) or "trap" (extension)
    port_offset: int = 0                    # shift all service ports so several
                                            # deployments can share one cluster
    eager_scheduling: bool = False          # replicate straggling tasks
    straggler_timeout_ms: float = 5_000.0   # quiet period before replication

    # -- robustness / self-healing (see DESIGN.md "Fault model & recovery") --
    self_healing: bool = True               # reconnecting worker proxies
    reconnect_max_retries: int = 8          # consecutive failures before giving up
    reconnect_base_ms: float = 50.0         # backoff: base of the exponential
    reconnect_max_ms: float = 2_000.0       # backoff cap
    rpc_timeout_ms: Optional[float] = 10_000.0  # space RPC reply deadline
    max_task_attempts: int = 3              # app failures before dead-letter
    dead_letter_poll_ms: float = 1_000.0    # master's quarantine-drain period
    give_up_after_ms: Optional[float] = None  # master's partial-result deadline

    # -- durability / failover (see DESIGN.md "Recovery model") -------------
    durable_space: bool = False             # WAL + snapshots behind the space
    wal_snapshot_every: Optional[int] = 64  # commit batches between snapshots
    hot_standby: bool = False               # replica + supervisor + promotion
    failover_heartbeat_ms: float = 250.0    # supervisor probe period
    failover_max_misses: int = 3            # missed probes before promotion
    sync_replication: bool = True           # gate acks on standby confirmation
    repl_ack_timeout_ms: float = 500.0      # then drop the client unanswered
    master_checkpoint_ms: Optional[float] = None  # master checkpoint period
    checkpoint_lease_ms: float = 60_000.0   # checkpoint entry lease
    master_restart_delay_ms: float = 500.0  # pause before a master restart
    task_txn_lease_ms: Optional[float] = None  # worker task-txn lease (None=∞)
    staleness_ms: Optional[float] = None    # SNMP sample staleness window

    # -- end-to-end throughput (see DESIGN.md "Throughput path") -------------
    worker_prefetch: int = 1                # tasks per worker pipeline cycle
    master_seed_batch: int = 1              # tasks per seeding write_all
    master_drain_batch: int = 1             # results per drain round trip
    wal_fsync_policy: str = "always"        # durability barrier: always|group|os
    wal_group_size: int = 64                # group-commit size watermark
    wal_group_ms: Optional[float] = None    # group-commit time watermark
    #: Entry/WAL frame encoding: ``"pickle"`` (general, the determinism
    #: reference) or ``"compact"`` (schema-registered zero-copy frames;
    #: see DESIGN.md §13).  Applies to the space, every proxy, and the
    #: WAL; persisted logs replay under either setting (mixed-frame
    #: decode).
    codec: str = "pickle"

    # -- sharding (see DESIGN.md §10 "Sharded space") ------------------------
    #: Number of tuple-space partitions.  1 = the classic single space.
    shards: int = 1
    #: Where shard servers live: ``"master"`` keeps them all on the master
    #: node (more ports, same host); ``"spread"`` round-robins them over
    #: ``cluster.nodes`` so each shard has its own network link;
    #: ``"dedicated"`` round-robins them over ``cluster.space_hosts`` —
    #: nodes that run no worker, the paper's deployment shape — so shard
    #: egress never queues behind a co-located worker's result uploads.
    #: With ``"spread"``/``"dedicated"`` the router path is used even at
    #: ``shards=1`` (a served shard, reached via RPC) so scaling sweeps
    #: compare like-for-like.
    shard_placement: str = "master"
    #: Wildcard scatter-gather camp quantum: how long a client blocks on
    #: one shard before rescanning the others (see ShardRouter).
    scatter_block_ms: float = 250.0

    # -- telemetry (see DESIGN.md "Observability") ---------------------------
    #: Record per-task span trees (virtual-time under simulation).  Trace
    #: IDs are minted and stamped into entries *regardless* of this flag —
    #: enabling it only turns on span recording, so traced and untraced
    #: runs share one virtual timeline (``--verify-determinism`` holds).
    trace: bool = False
    #: Period for mirroring registry instruments into the ``Metrics``
    #: series via the kernel's ``on_advance`` hook (``None`` = off).
    metrics_snapshot_ms: Optional[float] = None
    #: SLO watchdog rules (strings in the :class:`repro.telemetry.slo`
    #: grammar or :class:`SloRule` objects).  ``None`` = the default rule
    #: pack; ``()`` disables the watchdog.  Rules only evaluate when
    #: ``metrics_snapshot_ms`` is set (they ride snapshot frames).
    slo_rules: Optional[tuple] = None
    #: Always-on black-box flight recorder: bounded rings of recent
    #: spans/events that freeze into postmortem bundles on promotion or
    #: checker failure.  O(1) per record; disable only for microbenches.
    flight_recorder: bool = True
    flight_span_capacity: int = 256         # recent spans kept per process
    flight_event_capacity: int = 512        # recent metrics events kept

    # -- consistency checking (see DESIGN.md §11) ----------------------------
    #: Record a per-entry operation history (writes/takes/reads with
    #: invocation + response windows) through recording wrappers around
    #: every space client, for the post-run consistency checker
    #: (:mod:`repro.verify`).  Off by default: the history lives in
    #: memory for the whole run.
    record_history: bool = False

    # -- multi-tenancy (see DESIGN.md §12 "Multi-tenant job service") --------
    #: This deployment's own master's tenant identity (stamped on every
    #: TaskEntry it seeds) and scheduling priority.  Extra tenants join
    #: via :meth:`AdaptiveClusterFramework.attach_tenant_master`.
    tenant: Optional[str] = None
    priority: Optional[int] = None
    #: tenant → fair-share weight for the space's deficit-round-robin
    #: task dispatch.  ``None`` keeps plain FIFO takes.
    tenant_shares: Optional[dict[str, float]] = None
    #: Weight for tenants not named in ``tenant_shares``.
    tenant_default_share: float = 1.0
    #: Enable server-side admission control (quotas, rate limits,
    #: watermark shedding) on every space server.  The deployment's own
    #: master then reaches the space over RPC even in the classic
    #: single-space shape, so its writes are metered like everyone
    #: else's.
    admission: bool = False
    admission_max_in_flight: Optional[int] = None   # per-tenant backlog cap
    admission_write_rate_per_s: Optional[float] = None  # token-bucket refill
    admission_write_burst: float = 16.0             # token-bucket capacity
    admission_soft_watermark: Optional[int] = None  # shed low priority above
    admission_hard_watermark: Optional[int] = None  # shed everything above
    admission_shed_below_priority: int = 1          # soft-shed cutoff
    admission_retry_after_ms: float = 100.0         # rejection retry hint
    admission_quotas: Optional[dict[str, int]] = None   # per-tenant overrides
    admission_rates: Optional[dict[str, float]] = None
    #: Priority preemption: a governor that Pauses workers hoarding
    #: prefetched low-priority carries while urgent backlog waits (see
    #: :mod:`repro.core.tenancy`).
    preemption: bool = False
    preemption_poll_ms: float = 500.0
    preemption_priority_cutoff: int = 1


class AdaptiveClusterFramework:
    """One deployment of the framework on a cluster, for one application."""

    def __init__(
        self,
        runtime: Runtime,
        cluster: Cluster,
        app: Application,
        config: Optional[FrameworkConfig] = None,
        metrics: Optional[Metrics] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.runtime = runtime
        self.cluster = cluster
        self.app = app
        self.config = config if config is not None else FrameworkConfig()
        self.metrics = metrics if metrics is not None else Metrics(runtime)
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(runtime, trace=self.config.trace))
        self.tracer = self.telemetry.tracer
        self.registry = self.telemetry.registry
        # Cost models charge virtual CPU only under simulation; on the
        # threaded runtime the real computation already takes real time.
        from repro.runtime import SimulatedRuntime

        self._model_time = isinstance(runtime, SimulatedRuntime)
        if self.config.hot_standby and not self.config.use_jini:
            raise ConfigurationError(
                "hot_standby needs use_jini: failover re-registers the "
                "promoted standby with the lookup service"
            )
        if self.config.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1: {self.config.shards}")
        if self.config.codec not in ("pickle", "compact"):
            raise ConfigurationError(
                f"codec must be 'pickle' or 'compact': {self.config.codec!r}")
        if self.config.shard_placement not in ("master", "spread", "dedicated"):
            raise ConfigurationError(
                f"shard_placement must be 'master', 'spread' or "
                f"'dedicated': {self.config.shard_placement!r}")
        if (self.config.shard_placement == "dedicated"
                and not cluster.space_hosts):
            raise ConfigurationError(
                "shard_placement='dedicated' needs cluster.add_space_hosts()")
        if (self.config.admission_soft_watermark is not None
                and self.config.admission_hard_watermark is not None
                and self.config.admission_soft_watermark
                > self.config.admission_hard_watermark):
            raise ConfigurationError(
                f"admission_soft_watermark "
                f"({self.config.admission_soft_watermark}) must not exceed "
                f"admission_hard_watermark "
                f"({self.config.admission_hard_watermark})")
        #: True when the space is partitioned behind a ShardRouter.  The
        #: classic single in-process space (shards=1, placement "master")
        #: keeps the exact legacy wiring; "spread"/"dedicated" force the
        #: router path even at one shard so scaling sweeps compare
        #: like-for-like.
        self.sharded = (self.config.shards > 1
                        or self.config.shard_placement in ("spread",
                                                           "dedicated"))
        self.ring: Optional[HashRing] = (
            HashRing(self.config.shards) if self.sharded else None)
        offset = self.config.port_offset
        if self.sharded:
            if self.config.shard_placement == "dedicated":
                hosts = cluster.space_hosts
                self.shard_hosts = [hosts[i % len(hosts)].hostname
                                    for i in range(self.config.shards)]
            elif self.config.shard_placement == "spread":
                nodes = cluster.nodes
                self.shard_hosts = [nodes[i % len(nodes)].hostname
                                    for i in range(self.config.shards)]
            else:
                self.shard_hosts = ([cluster.master.hostname]
                                    * self.config.shards)
            # Shard ports live in their own window (+100) so they never
            # collide with the legacy space/standby pair or the lookup
            # port, even with several shards co-hosted on the master.
            self.shard_addresses = [
                Address(self.shard_hosts[i], SPACE_PORT + offset + 100 + 2 * i)
                for i in range(self.config.shards)
            ]
            # Standby replicas (and their supervisors) live on the master
            # node regardless of shard placement: a fault that takes out a
            # shard host must not take out the replica that survives it.
            # Port pairs stay unique because shard ports are spaced by 2.
            self.shard_standby_addresses = [
                Address(cluster.master.hostname, address.port + 1)
                for address in self.shard_addresses
            ]
            self.spaces: list[JavaSpace] = [
                self._make_space(f"space:{app.app_id}:shard{i}")
                for i in range(self.config.shards)
            ]
            self.space: JavaSpace = self.spaces[0]
            for i, space in enumerate(self.spaces):
                self.registry.expose_dict("space", space.stats, shard=str(i))
                self.registry.expose(
                    "space.queue_depth",
                    lambda s=space: max(
                        s.stats["writes"] - s.stats["takes"]
                        - s.stats["expired"], 0),
                    shard=str(i))
                if isinstance(space, DurableSpace):
                    space.wal.tracer = self.tracer
                    self.registry.expose("wal.commits",
                                         lambda s=space: s.wal.last_lsn,
                                         shard=str(i))
                    self.registry.expose("wal.syncs",
                                         lambda s=space: s.wal.store.syncs,
                                         shard=str(i))
                    self.registry.expose("space.epoch",
                                         lambda s=space: s.wal.epoch,
                                         shard=str(i))
            self.space_address = self.shard_addresses[0]
            self.standby_address = self.shard_standby_addresses[0]
        else:
            self.space = self._make_space(f"space:{app.app_id}")
            self.spaces = [self.space]
            # Registry naming scheme: the space's counters surface as
            # ``space.<key>`` (read-through — no per-op registry cost).
            self.registry.expose_dict("space", self.space.stats)
            self.registry.expose(
                "space.queue_depth",
                lambda: max(
                    self.space.stats["writes"] - self.space.stats["takes"]
                    - self.space.stats["expired"], 0))
            if isinstance(self.space, DurableSpace):
                self.space.wal.tracer = self.tracer
                self.registry.expose("wal.commits",
                                     lambda: self.space.wal.last_lsn)
                self.registry.expose("wal.syncs",
                                     lambda: self.space.wal.store.syncs)
                self.registry.expose("space.epoch",
                                     lambda: self.space.wal.epoch)
            self.shard_hosts = [cluster.master.hostname]
            self.space_address = Address(
                cluster.master.hostname, SPACE_PORT + offset)
            self.shard_addresses = [self.space_address]
            #: Where the promoted standby serves (primary port + 1).
            self.standby_address = Address(
                cluster.master.hostname, SPACE_PORT + offset + 1
            )
            self.shard_standby_addresses = [self.standby_address]
        self.space_server: Optional[SpaceServer] = None
        self.space_servers: list[SpaceServer] = []
        self.code_server: Optional[CodeServer] = None
        self.lookup: Optional[LookupService] = None
        self.netmgmt: Optional[NetworkManagementModule] = None
        self.standby: Optional[HotStandby] = None
        self.standbys: list[HotStandby] = []
        self.supervisor: Optional[SpaceSupervisor] = None
        self.supervisors: list[SpaceSupervisor] = []
        self._join: Optional[JoinManager] = None
        self._joins: list[JoinManager] = []
        self._master_proxy: Optional[Any] = None
        self.master_restarts = 0
        #: Extra tenants sharing this deployment (see
        #: :meth:`attach_tenant_master`) and their space clients.
        self.tenant_masters: list[Master] = []
        self._tenant_proxies: list[Any] = []
        #: Priority-preemption governor (``config.preemption``).
        self.governor: Optional[Any] = None
        #: Shared operation history for the consistency checker.
        self.history: Optional[Any] = None
        if self.config.record_history:
            from repro.verify import HistoryRecorder

            self.history = HistoryRecorder(runtime)
        #: End-to-end task latency (seed → aggregated), the watchdog's
        #: ``task.latency_ms.p99`` feed.  Deterministic log-bucketed
        #: quantiles — no reservoir sampling to perturb.
        self.task_latency = self.registry.histogram("task.latency_ms")
        #: SLO watchdog (built in :meth:`start` when snapshots are on).
        self.watchdog: Optional[Any] = None
        #: Black-box flight recorder: observes metrics events and (when
        #: tracing) spans through passive hooks, dumps postmortem
        #: bundles on standby promotion or checker failure.
        self.flight: Optional[Any] = None
        if self.config.flight_recorder:
            from repro.telemetry import FlightRecorder

            self.flight = FlightRecorder(
                runtime,
                span_capacity=self.config.flight_span_capacity,
                event_capacity=self.config.flight_event_capacity,
            )
            self.flight.attach(metrics=self.metrics, tracer=self.tracer,
                               registry=self.registry, history=self.history)
        self.master = self._build_master()
        self.worker_hosts: list[WorkerHost] = []
        self._started = False

    def _make_space(self, name: str) -> JavaSpace:
        config = self.config
        if config.durable_space or config.hot_standby:
            return DurableSpace(
                self.runtime, name=name,
                snapshot_every=config.wal_snapshot_every,
                fsync_policy=config.wal_fsync_policy,
                group_size=config.wal_group_size,
                group_commit_ms=config.wal_group_ms,
                codec=config.codec,
            )
        return JavaSpace(self.runtime, name=name, codec=config.codec)

    def _space_locator(self, host: str,
                       shard: Optional[int] = None) -> JiniSpaceLocator:
        """A lookup-backed locator so ``host`` finds the space post-failover.

        With ``shard`` set the query pins one partition (each shard
        registers with a ``shard`` attribute, so failover re-discovery is
        per shard)."""
        query: dict[str, str] = {"type": "JavaSpaces", "app": self.app.app_id}
        if shard is not None:
            query["shard"] = str(shard)
        return JiniSpaceLocator(
            self.cluster.network, host,
            Address(self.cluster.master.hostname,
                    LOOKUP_PORT + self.config.port_offset),
            query,
            call_timeout_ms=self.config.rpc_timeout_ms,
        )

    def _build_router(self, host: str, recovery: Any = None,
                      rng: Any = None) -> ShardRouter:
        """A per-client :class:`ShardRouter` over every shard server."""
        locators = None
        if self.config.hot_standby:
            locators = [self._space_locator(host, shard=i)
                        for i in range(len(self.shard_addresses))]
        return ShardRouter(
            self.cluster.network, host, list(self.shard_addresses),
            ring=self.ring, recovery=recovery, rng=rng,
            metrics=self.metrics, locators=locators, tracer=self.tracer,
            scatter_block_ms=self.config.scatter_block_ms,
            codec=self.config.codec,
        )

    def _build_master(self) -> Master:
        """Create a (or the next, after a kill) master process.

        With a hot standby the master talks to the space through a
        locator-equipped :class:`SpaceProxy` — like any worker — so a
        failover redirects it to the promoted replica; space operations
        retry across the failover window.  Without one it keeps the
        zero-copy in-process space the scalability experiments measure.
        """
        config = self.config
        space: Any = self.space
        retry_ms = None
        if self.sharded:
            # The master reaches every shard through a router, like any
            # worker; shard 0 may be co-hosted but is still served over
            # (loopback) RPC so all shards are symmetric.
            if self._master_proxy is not None:
                self._master_proxy.close()
            self._master_proxy = self._build_router(
                self.cluster.master.hostname)
            space = self._master_proxy
            # Unlike the in-process space, shards are reached over RPC, so
            # the master must ride out shard crashes/restarts like any
            # other client — enable its retry guard unconditionally.
            retry_ms = config.failover_heartbeat_ms
        elif config.hot_standby:
            if self._master_proxy is not None:
                self._master_proxy.close()
            self._master_proxy = SpaceProxy(
                self.cluster.network, self.cluster.master.hostname,
                self.space_address, metrics=self.metrics,
                locator=self._space_locator(self.cluster.master.hostname),
                tracer=self.tracer, codec=config.codec,
            )
            space = self._master_proxy
            retry_ms = config.failover_heartbeat_ms
        elif config.admission:
            # Admission control is enforced server-side; an in-process
            # master would bypass it entirely.  Route the master through
            # a (loopback) proxy so its seeding writes are metered like
            # every other tenant's.
            if self._master_proxy is not None:
                self._master_proxy.close()
            self._master_proxy = SpaceProxy(
                self.cluster.network, self.cluster.master.hostname,
                self.space_address, metrics=self.metrics, tracer=self.tracer,
                codec=config.codec,
            )
            space = self._master_proxy
        if config.admission and retry_ms is None:
            # AdmissionError is a pre-dispatch rejection, so the master's
            # guard may re-issue the op verbatim after the server's
            # retry-after hint; this floor keeps the guard's loop alive.
            retry_ms = config.admission_retry_after_ms
        if self.history is not None:
            from repro.verify import RecordingSpace

            space = RecordingSpace(space, self.history, client="master")
        return Master(
            self.runtime, self.cluster.master, space, self.app, self.metrics,
            eager_scheduling=config.eager_scheduling,
            straggler_timeout_ms=config.straggler_timeout_ms,
            model_time=self._model_time,
            dead_letter_poll_ms=config.dead_letter_poll_ms,
            give_up_after_ms=config.give_up_after_ms,
            checkpoint_ms=config.master_checkpoint_ms,
            checkpoint_lease_ms=config.checkpoint_lease_ms,
            space_retry_ms=retry_ms,
            space_max_retries=max(20, 8 * config.failover_max_misses),
            seed_batch=config.master_seed_batch,
            drain_batch=config.master_drain_batch,
            tracer=self.tracer,
            tenant=config.tenant,
            priority=config.priority,
            latency_hist=self.task_latency,
        )

    def attach_tenant_master(
        self,
        app: Application,
        tenant: str,
        priority: Optional[int] = None,
    ) -> Master:
        """A further tenant's :class:`Master` sharing this deployment.

        Tenants share the space, the worker pool and the ``app_id`` —
        workers load one class set and take with a tenant-wildcard
        template, so *which* tenant's task a worker gets is the space's
        deficit-round-robin dispatcher's call, weighted by
        ``config.tenant_shares``.  The caller must namespace task IDs so
        they never collide across tenants (task identity is
        ``(app_id, task_id)``).  Run the returned master from its own
        runtime process; its report is independent of every other
        tenant's.
        """
        if app.app_id != self.app.app_id:
            raise ConfigurationError(
                f"tenant app_id {app.app_id!r} != deployment app_id "
                f"{self.app.app_id!r}: workers serve exactly one class set")
        config = self.config
        host = self.cluster.master.hostname
        space: Any
        if self.sharded:
            space = self._build_router(host)
        else:
            space = SpaceProxy(
                self.cluster.network, host, self.space_address,
                metrics=self.metrics, tracer=self.tracer,
                locator=(self._space_locator(host)
                         if config.hot_standby else None),
                codec=config.codec,
            )
        self._tenant_proxies.append(space)
        if self.history is not None:
            from repro.verify import RecordingSpace

            space = RecordingSpace(space, self.history,
                                   client=f"master:{tenant}")
        if self.sharded or config.hot_standby:
            retry_ms: Optional[float] = config.failover_heartbeat_ms
        elif config.admission:
            retry_ms = config.admission_retry_after_ms
        else:
            retry_ms = None
        master = Master(
            self.runtime, self.cluster.master, space, app, self.metrics,
            eager_scheduling=config.eager_scheduling,
            straggler_timeout_ms=config.straggler_timeout_ms,
            model_time=self._model_time,
            dead_letter_poll_ms=config.dead_letter_poll_ms,
            give_up_after_ms=config.give_up_after_ms,
            space_retry_ms=retry_ms,
            space_max_retries=max(20, 8 * config.failover_max_misses),
            seed_batch=config.master_seed_batch,
            drain_batch=config.master_drain_batch,
            tracer=self.tracer,
            tenant=tenant,
            priority=priority,
            latency_hist=self.task_latency,
        )
        self.tenant_masters.append(master)
        return master

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        """Bring up all services and worker hosts (no tasks planned yet)."""
        if self._started:
            raise ConfigurationError("framework already started")
        self._started = True
        runtime, cluster, config = self.runtime, self.cluster, self.config
        network = cluster.network
        master_host = cluster.master.hostname

        # The master must fit the service stack in RAM (the paper's reason
        # for the 256 MB master even on the 64 MB-worker testbed).
        from repro.errors import OutOfMemoryError

        try:
            cluster.master.memory.allocate(
                f"javaspaces:{self.app.app_id}", SPACE_FOOTPRINT_MB * 1024
            )
            if config.use_jini:
                cluster.master.memory.allocate(
                    "jini-infrastructure", JINI_FOOTPRINT_MB * 1024
                )
        except OutOfMemoryError as exc:
            raise ConfigurationError(
                f"master node {master_host!r} ({cluster.master.spec}) cannot "
                f"host the Jini/JavaSpaces services: {exc}"
            ) from exc

        # JavaSpaces service: one server per shard (the classic deployment
        # is the one-shard case).  Each shard has its own transaction
        # manager — transactions are shard-local by construction.
        for i, space in enumerate(self.spaces):
            server = SpaceServer(
                runtime, space, network, self.shard_addresses[i],
                txn_manager=TransactionManager(runtime, metrics=self.metrics),
            )
            if config.hot_standby:
                # Epoch fencing is only meaningful with a supervisor that
                # can promote a rival: enable the fence check and grant the
                # primary lease the supervisor's probes will keep renewing.
                server.fencing = True
                server.grant_lease(
                    config.failover_heartbeat_ms * config.failover_max_misses)
                # With a standby that may be promoted, an ack the standby
                # never saw is a future lost write — gate on its
                # confirmation (drop the client unanswered on timeout).
                server.sync_replication = config.sync_replication
                server.repl_ack_timeout_ms = config.repl_ack_timeout_ms
            server.start()
            self.space_servers.append(server)
        self.space_server = self.space_servers[0]
        offset = config.port_offset
        if config.hot_standby:
            self.registry.expose("space.fenced_rpcs", self.total_fenced_rpcs)

        # Multi-tenancy: weighted fair-share dispatch inside every space,
        # admission control in front of every server, and per-tenant
        # read-through telemetry for tenants the config names.
        if config.tenant_shares is not None:
            for i, space in enumerate(self.spaces):
                space.configure_fair_share(
                    config.tenant_shares,
                    default_share=config.tenant_default_share)
                labels = {"shard": str(i)} if self.sharded else {}
                self.registry.expose_dict("space.fair", space.fair_stats,
                                          **labels)
        if config.admission:
            from repro.tuplespace.proxy import AdmissionConfig

            admission_config = AdmissionConfig(
                max_in_flight=config.admission_max_in_flight,
                write_rate_per_s=config.admission_write_rate_per_s,
                write_burst=config.admission_write_burst,
                queue_soft_watermark=config.admission_soft_watermark,
                queue_hard_watermark=config.admission_hard_watermark,
                shed_below_priority=config.admission_shed_below_priority,
                retry_after_ms=config.admission_retry_after_ms,
                quotas=config.admission_quotas,
                rates=config.admission_rates,
            )
            for i, server in enumerate(self.space_servers):
                server.enable_admission(admission_config)
                labels = {"shard": str(i)} if self.sharded else {}
                self.registry.expose_dict("admission",
                                          server.admission.stats, **labels)
        for tenant in self._named_tenants():
            self.registry.expose(
                "tenant.admitted",
                lambda t=tenant: self.tenant_admission(t).get("admitted", 0),
                tenant=tenant)
            self.registry.expose(
                "tenant.rejected",
                lambda t=tenant: self.tenant_admission(t).get("rejected", 0),
                tenant=tenant)
            self.registry.expose(
                "tenant.shed",
                lambda t=tenant: self.tenant_admission(t).get("shed", 0),
                tenant=tenant)
            self.registry.expose(
                "tenant.grants",
                lambda t=tenant: self.tenant_grants().get(t, 0),
                tenant=tenant)
        if config.preemption:
            from repro.core.tenancy import PreemptionGovernor

            self.governor = PreemptionGovernor(
                runtime, self, self.metrics,
                poll_ms=config.preemption_poll_ms,
                priority_cutoff=config.preemption_priority_cutoff,
            )
            self.governor.start()
            self.registry.expose_dict("preemption", self.governor.stats)

        # Code server for remote node configuration.
        self.code_server = CodeServer(runtime, network, master_host,
                                      port=CODE_SERVER_PORT + offset)
        self.code_server.publish(self.app.app_id, self.app.classload_profile())
        self.code_server.start()

        # Jini substrate: every shard registers its JavaSpaces service.
        # Sharded items carry a ``shard`` attribute so per-shard locators
        # (and the supervisor's failover re-registration) stay pinned.
        space_address = self.space_address
        if config.use_jini:
            self.lookup = LookupService(
                runtime, network, Address(master_host, LOOKUP_PORT + offset)
            )
            self.lookup.start()
            registrar = Address(master_host, LOOKUP_PORT + offset)
            if self.sharded:
                for i, address in enumerate(self.shard_addresses):
                    attributes: dict[str, Any] = {
                        "type": "JavaSpaces", "app": self.app.app_id,
                        "shard": str(i),
                    }
                    if config.hot_standby:
                        # Epoch attribute: locators prefer the
                        # highest-epoch registration post-failover.
                        attributes["epoch"] = self.spaces[i].wal.epoch
                    join = JoinManager(
                        runtime, network, self.shard_hosts[i], registrar,
                        ServiceItem(
                            f"javaspaces:{self.app.app_id}:shard{i}", address,
                            attributes,
                        ),
                        lease_ms=FOREVER,
                    )
                    join.start()
                    self._joins.append(join)
            else:
                attributes = {"type": "JavaSpaces", "app": self.app.app_id}
                if config.hot_standby:
                    attributes["epoch"] = self.space.wal.epoch
                self._joins.append(JoinManager(
                    runtime, network, master_host, registrar,
                    ServiceItem(
                        f"javaspaces:{self.app.app_id}", self.space_address,
                        attributes,
                    ),
                    lease_ms=FOREVER,
                ))
                self._joins[0].start()
            self._join = self._joins[0]

        # Hot standby: replicate the primary's commit stream and stand by
        # to serve it; the supervisor heartbeats the primary and performs
        # the promotion + re-registration when it goes quiet.
        if config.hot_standby:
            for i in range(len(self.spaces)):
                suffix = f":shard{i}" if self.sharded else ""
                # Standby and supervisor run on the master node, not the
                # shard host: they must survive (and observe) faults that
                # hit the primary's machine or its links.
                standby = HotStandby(
                    runtime, network, master_host,
                    primary_address=self.shard_addresses[i],
                    address=self.shard_standby_addresses[i],
                    name=f"space-standby:{self.app.app_id}{suffix}",
                    snapshot_every=config.wal_snapshot_every,
                    metrics=self.metrics,
                    sync_replication=config.sync_replication,
                    repl_ack_timeout_ms=config.repl_ack_timeout_ms,
                    codec=config.codec,
                )
                standby.start()
                self.standbys.append(standby)
                supervisor = SpaceSupervisor(
                    runtime, network, master_host,
                    standby=standby,
                    primary_address=self.shard_addresses[i],
                    registrar=Address(master_host, LOOKUP_PORT + offset),
                    service_item=self._joins[i].item,
                    heartbeat_ms=config.failover_heartbeat_ms,
                    max_misses=config.failover_max_misses,
                    old_registration_id=self._joins[i].registration_id,
                    metrics=self.metrics,
                )
                supervisor.start()
                self.supervisors.append(supervisor)
            self.standby = self.standbys[0]
            self.supervisor = self.supervisors[0]
            # Standby replication lag in WAL frames (primary LSN minus
            # the standby's applied LSN) — the watchdog's
            # ``space.replication_lag`` feed.  Read-through: sampled at
            # snapshot time, free on the commit path.
            for i, standby in enumerate(self.standbys):
                labels = {"shard": str(i)} if self.sharded else {}
                self.registry.expose(
                    "space.replication_lag",
                    lambda s=self.spaces[i], r=standby: max(
                        0, s.wal.last_lsn - r.applied_lsn),
                    **labels)

        # Network management module on the master host.
        if config.monitoring:
            self.netmgmt = NetworkManagementModule(
                runtime, network, master_host, self.metrics,
                policy=config.thresholds,
                poll_interval_ms=config.poll_interval_ms,
                community=config.community,
                load_metric=config.load_metric,
                mode=config.monitoring_mode,
                port=RULEBASE_PORT + offset,
                trap_port=None if offset == 0 else 162 + offset,
                staleness_ms=config.staleness_ms,
                registry=self.registry,
            )
            self.netmgmt.start()

        # Remaining component stats join the registry as read-through
        # views; periodic snapshots mirror them into the Metrics series.
        self.registry.expose_dict("net", network.stats)
        if config.metrics_snapshot_ms is not None:
            self.telemetry.enable_snapshots(
                self.metrics, interval_ms=config.metrics_snapshot_ms)
            # SLO watchdog rides the snapshot frames: same on_advance
            # hook, zero scheduled events, deterministic firing times.
            rules = (config.slo_rules if config.slo_rules is not None
                     else None)
            if rules is None:
                from repro.telemetry import DEFAULT_RULES as rules
            if rules and self.telemetry.snapshotter is not None:
                from repro.telemetry import SloWatchdog

                self.watchdog = SloWatchdog(
                    self.registry, rules=rules, metrics=self.metrics,
                    tracer=self.tracer)
                self.watchdog.attach(self.telemetry.snapshotter)
                if self.flight is not None:
                    self.flight.watchdog = self.watchdog

        # Worker hosts on every worker node.
        netmgmt_address = self.netmgmt.address if self.netmgmt else None
        recovery = None
        if config.self_healing:
            from repro.tuplespace.proxy import RecoveryPolicy

            recovery = RecoveryPolicy(
                max_retries=config.reconnect_max_retries,
                base_backoff_ms=config.reconnect_base_ms,
                max_backoff_ms=config.reconnect_max_ms,
                call_timeout_ms=config.rpc_timeout_ms,
            )
        space_wrapper = None
        if self.history is not None:
            from repro.verify import RecordingSpace

            history = self.history
            space_wrapper = (
                lambda client, hostname:
                RecordingSpace(client, history, client=hostname))
        for node in cluster.workers:
            node.snmp_community = config.community
            # Jitter from a per-worker named stream: deterministic under a
            # fixed seed, independent across workers.  The router factory
            # captures the same stream so a rebuilt worker proxy keeps
            # drawing from it, exactly like the single-proxy path.
            recovery_rng = cluster.streams.stream(f"recovery:{node.hostname}")
            space_factory = None
            locator = None
            if self.sharded:
                space_factory = (
                    lambda hostname=node.hostname, rng=recovery_rng:
                    self._build_router(hostname, recovery=recovery, rng=rng))
            elif config.hot_standby:
                locator = self._space_locator(node.hostname)
            host = WorkerHost(
                runtime, node, self.app,
                space_address=space_address,
                code_server=Address(master_host, CODE_SERVER_PORT + offset),
                netmgmt_address=netmgmt_address,
                metrics=self.metrics,
                worker_poll_ms=config.worker_poll_ms,
                compute_real=config.compute_real,
                transactional=config.transactional_takes,
                model_time=self._model_time,
                max_task_attempts=config.max_task_attempts,
                recovery=recovery,
                task_txn_lease_ms=config.task_txn_lease_ms,
                prefetch=config.worker_prefetch,
                tracer=self.tracer,
                locator=locator,
                recovery_rng=recovery_rng,
                space_factory=space_factory,
                codec=config.codec,
            )
            host.space_wrapper = space_wrapper
            host.start()
            self.worker_hosts.append(host)

    def resolve_space_via_jini(self, from_host: str) -> Address:
        """Exercise discovery + lookup to find the space service."""
        registrars = DiscoveryClient(self.runtime, self.cluster.network, from_host).discover(
            timeout_ms=50.0, expected=1
        )
        if not registrars:
            raise ConfigurationError("no lookup service discovered")
        client = LookupClient(self.cluster.network, from_host, registrars[0])
        try:
            items = client.lookup({"type": "JavaSpaces", "app": self.app.app_id})
            if not items:
                raise ConfigurationError("JavaSpaces service not registered")
            return items[0].service
        finally:
            client.close()

    def start_all_workers(self) -> None:
        """Manually Start every worker (used when monitoring is off)."""
        from repro.core.signals import Signal

        for host in self.worker_hosts:
            host.handle_signal(Signal.START)

    def run(self) -> MasterReport:
        """Run the master to completion (call from a runtime process)."""
        if not self._started:
            self.start()
        if self.netmgmt is None:
            self.start_all_workers()
        report = self.master.run()
        return report

    def run_with_recovery(self) -> MasterReport:
        """Like :meth:`run`, but a killed master is restarted.

        A fresh master (new space proxy, same deterministic plan) adopts
        the latest :class:`~repro.core.entries.MasterCheckpointEntry` from
        the space and completes the job exactly-once.  Requires
        ``master_checkpoint_ms`` to be useful — without checkpoints the
        restarted master re-plans from scratch.
        """
        if not self._started:
            self.start()
        if self.netmgmt is None:
            self.start_all_workers()
        while True:
            try:
                return self.master.run()
            except MasterCrashedError:
                self.master_restarts += 1
                self.metrics.event("master-killed", app=self.app.app_id)
                self.runtime.sleep(self.config.master_restart_delay_ms)
                self.master = self._build_master()
                self.metrics.event("master-restarted", app=self.app.app_id,
                                   restarts=self.master_restarts)

    def _named_tenants(self) -> list[str]:
        """Tenants the config names anywhere — they get labeled metrics."""
        named: set[str] = set()
        config = self.config
        if config.tenant is not None:
            named.add(config.tenant)
        for mapping in (config.tenant_shares, config.admission_quotas,
                        config.admission_rates):
            if mapping:
                named.update(mapping)
        return sorted(named)

    def tenant_admission(self, tenant: str) -> dict[str, int]:
        """One tenant's admission counters, summed over every server."""
        totals = {"admitted": 0, "rejected": 0, "shed": 0}
        for server in self.space_servers:
            if server.admission is None:
                continue
            for key, value in server.admission.tenant_stats.get(
                    tenant, {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def tenant_grants(self) -> dict[str, int]:
        """Fair-share take grants per tenant, summed over every shard."""
        grants: dict[str, int] = {}
        for space in self.current_spaces():
            for key, value in getattr(space, "fair_stats", {}).items():
                if key.startswith("grants:"):
                    tenant = key[len("grants:"):]
                    grants[tenant] = grants.get(tenant, 0) + value
        return grants

    def total_fenced_rpcs(self) -> int:
        """RPCs rejected by the fence across every server incarnation —
        the original primaries plus any supervisor-promoted standby."""
        total = sum(server.fenced_rpcs for server in self.space_servers)
        total += sum(
            supervisor.server.fenced_rpcs
            for supervisor in self.supervisors
            if supervisor.server is not None
        )
        return total

    def current_spaces(self) -> list[JavaSpace]:
        """The authoritative space object per shard — the original primary,
        or the promoted standby's replica after a failover."""
        spaces = list(self.spaces)
        for i, supervisor in enumerate(self.supervisors):
            if supervisor.failed_over and supervisor.server is not None:
                spaces[i] = supervisor.server.space
        return spaces

    def final_contents(self) -> list[Entry]:
        """Every entry still visible in the (post-failover) space, all
        shards merged — the consistency checker's ground truth."""
        entries: list[Entry] = []
        for space in self.current_spaces():
            entries.extend(space.contents(Entry()))
        return entries

    # -- fault-injection hooks ---------------------------------------------------

    def kill_primary_space(self) -> None:
        """Crash the primary space server: connections drop, clients must
        ride out the failover to the promoted standby."""
        if self.space_server is not None:
            self.metrics.event("space-primary-killed", app=self.app.app_id)
            self.space_server.crash()

    def kill_shard(self, shard: int) -> None:
        """Crash one shard's primary server.  Other shards keep serving;
        with ``hot_standby`` that shard's supervisor promotes its replica
        independently."""
        if not self.space_servers:
            return
        server = self.space_servers[shard]
        self.metrics.event("space-shard-killed", app=self.app.app_id,
                           shard=shard)
        server.crash()

    def kill_master(self) -> None:
        """Kill the master process mid-run (see :meth:`run_with_recovery`)."""
        self.metrics.event("master-kill-injected", app=self.app.app_id)
        self.master.crash()

    def shutdown(self) -> None:
        """Stop every loop so a simulated run drains its event heap."""
        # A master abandoned mid-run (experiments that observe workers,
        # not completion) would otherwise keep scheduling its dead-letter
        # poll forever and the simulation would never go idle.
        self.master.cancel()
        for master in self.tenant_masters:
            master.cancel()
        if self.governor is not None:
            self.governor.stop()
        for proxy in self._tenant_proxies:
            proxy.close()
        for host in self.worker_hosts:
            host.stop()
        if self.netmgmt is not None:
            self.netmgmt.stop()
        for supervisor in self.supervisors:
            supervisor.stop()
        for standby in self.standbys:
            standby.stop()
        if self._master_proxy is not None:
            self._master_proxy.close()
        if self.lookup is not None:
            self.lookup.stop()
        if self.code_server is not None:
            self.code_server.stop()
        for server in self.space_servers:
            server.stop()

    # -- observation -----------------------------------------------------------------------

    def worker_times_ms(self) -> dict[str, Optional[float]]:
        """Per-worker computation time (first take → last result)."""
        return {h.node.hostname: h.worker_time_ms() for h in self.worker_hosts}

    def max_worker_time_ms(self) -> float:
        times = [t for t in self.worker_times_ms().values() if t is not None]
        return max(times) if times else 0.0
