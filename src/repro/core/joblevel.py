"""Job-level parallelism baseline (Condor-style; paper §2).

The paper contrasts *adaptive parallelism* (bag-of-tasks through the
space) with *job-level parallelism*: "entire application jobs are
allocated to available idle resources … if a resource becomes
unavailable, the job(s) executing on it are migrated to a different
resource", which "require[s] … check-pointing the state of an
application job on one machine and restoring the state on a different
machine".

This module quantifies that comparison.  The application's tasks are
partitioned statically into one *job* per worker; each job runs whole on
its node, checkpointing after every task.  When the monitoring loop
evicts a node (load above the stop threshold), the job migrates — its
checkpoint (completed task results) transfers to an idle node and the
job resumes from the last checkpoint.  Costs charged: checkpoint CPU per
task, checkpoint-size-dependent transfer on migration, restart latency.

Differences from the adaptive framework that the ablation bench surfaces:

* static partitioning → no load balancing (the slowest/most-evicted node
  dominates);
* migration moves the whole job state instead of letting 100-ms tasks
  drain naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.application import Application, Task
from repro.core.signals import ThresholdPolicy
from repro.node.cluster import Cluster
from repro.node.machine import Node
from repro.runtime.base import Runtime
from repro.util.serialization import serialized_size

__all__ = ["JobLevelScheduler", "JobLevelReport", "JobLevelConfig"]


@dataclass(frozen=True)
class JobLevelConfig:
    checkpoint_cost_ms: float = 40.0       # CPU per checkpoint write
    restart_cost_ms: float = 400.0         # process restart on the new node
    transfer_ms_per_kb: float = 0.4        # checkpoint state transfer
    poll_interval_ms: float = 1000.0       # eviction monitoring period
    thresholds: ThresholdPolicy = field(default_factory=ThresholdPolicy)


@dataclass
class JobLevelReport:
    app_id: str
    parallel_ms: float
    migrations: int
    checkpoints: int
    solution: Any
    per_job_ms: dict[str, float] = field(default_factory=dict)


class _Job:
    """One statically assigned chunk of the application."""

    def __init__(self, job_id: int, tasks: list[Task]) -> None:
        self.job_id = job_id
        self.tasks = tasks
        self.completed: dict[int, Any] = {}   # the "checkpoint"
        self.done = False

    @property
    def next_index(self) -> int:
        return len(self.completed)

    def checkpoint_bytes(self) -> int:
        return serialized_size(self.completed)


class JobLevelScheduler:
    """Runs an application with static jobs + eviction-driven migration."""

    def __init__(
        self,
        runtime: Runtime,
        cluster: Cluster,
        app: Application,
        config: Optional[JobLevelConfig] = None,
        compute_real: bool = True,
    ) -> None:
        self.runtime = runtime
        self.cluster = cluster
        self.app = app
        self.config = config if config is not None else JobLevelConfig()
        self.compute_real = compute_real
        self.migrations = 0
        self.checkpoints = 0
        self.lost_work_ms = 0.0     # un-checkpointed progress killed by eviction
        self._node_busy: dict[str, bool] = {}

    # -- helpers ---------------------------------------------------------------

    def _partition(self, tasks: list[Task], n_jobs: int) -> list[_Job]:
        jobs: list[list[Task]] = [[] for _ in range(n_jobs)]
        for index, task in enumerate(tasks):
            jobs[index % n_jobs].append(task)
        return [_Job(i, chunk) for i, chunk in enumerate(jobs) if chunk]

    def _node_available(self, node: Node) -> bool:
        load = node.cpu.average_external(window_ms=self.config.poll_interval_ms)
        return (
            self.config.thresholds.band(load) == "idle"
            and not self._node_busy.get(node.hostname, False)
        )

    def _pick_node(self, exclude: Optional[str] = None) -> Optional[Node]:
        for node in self.cluster.workers:
            if node.hostname == exclude:
                continue
            if self._node_available(node):
                return node
        return None

    # -- execution ------------------------------------------------------------------

    def run(self) -> JobLevelReport:
        """Run all jobs to completion; blocks the calling process."""
        started = self.runtime.now()
        tasks = self.app.plan()
        jobs = self._partition(tasks, len(self.cluster.workers))
        per_job_ms: dict[str, float] = {}
        done_flags: dict[int, bool] = {}

        def run_job(job: _Job) -> None:
            job_started = self.runtime.now()
            node = self._wait_for_node()
            while not job.done:
                evicted = self._run_on_node(job, node)
                if job.done:
                    break
                if evicted:
                    # Migrate: transfer checkpoint, restart elsewhere.
                    self.migrations += 1
                    replacement = self._wait_for_node(exclude=node.hostname)
                    transfer_ms = (
                        self.config.transfer_ms_per_kb
                        * job.checkpoint_bytes() / 1024.0
                    )
                    self.runtime.sleep(transfer_ms + self.config.restart_cost_ms)
                    node = replacement
            per_job_ms[f"job-{job.job_id}"] = self.runtime.now() - job_started
            done_flags[job.job_id] = True

        for job in jobs:
            self.runtime.spawn(lambda j=job: run_job(j), name=f"job-{job.job_id}")
        while len(done_flags) < len(jobs):
            self.runtime.sleep(50.0)

        results: dict[int, Any] = {}
        for job in jobs:
            results.update(job.completed)
        solution = self.app.aggregate(results)
        return JobLevelReport(
            app_id=self.app.app_id,
            parallel_ms=self.runtime.now() - started,
            migrations=self.migrations,
            checkpoints=self.checkpoints,
            solution=solution,
            per_job_ms=per_job_ms,
        )

    def _wait_for_node(self, exclude: Optional[str] = None) -> Node:
        while True:
            node = self._pick_node(exclude=exclude)
            if node is not None:
                self._node_busy[node.hostname] = True
                return node
            self.runtime.sleep(self.config.poll_interval_ms)

    def _run_on_node(self, job: _Job, node: Node) -> bool:
        """Run tasks until the job finishes or the node is evicted.

        Returns True when evicted.  Unlike the adaptive framework (which
        delivers signals *between* tasks and lets the current one drain),
        eviction kills the job process mid-task: the un-checkpointed work
        is lost and recomputed after migration — the classic cost of
        job-level parallelism the paper's Table 1 alludes to.
        """
        def evicted_now() -> bool:
            return self.config.thresholds.band(node.cpu.external_percent()) == "loaded"

        try:
            while job.next_index < len(job.tasks):
                if evicted_now():
                    return True
                task = job.tasks[job.next_index]
                elapsed, finished = node.cpu.execute_interruptible(
                    self.app.task_cost_ms(task), abort_check=evicted_now
                )
                if not finished:
                    self.lost_work_ms += elapsed
                    return True
                payload = self.app.execute(task.payload) if self.compute_real else None
                ck_elapsed, ck_finished = node.cpu.execute_interruptible(
                    self.config.checkpoint_cost_ms, abort_check=evicted_now
                )
                if not ck_finished:
                    # Killed mid-checkpoint: the whole task's work is lost.
                    self.lost_work_ms += elapsed + ck_elapsed
                    return True
                self.checkpoints += 1
                job.completed[task.task_id] = payload
            job.done = True
            return False
        finally:
            self._node_busy[node.hostname] = False
