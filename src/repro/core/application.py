"""Application abstraction: what the framework needs from an app.

The paper targets applications "divisible into relatively coarse-grained
subtasks that can be solved independently, and where the subtasks have
small input/output sizes".  An :class:`Application` supplies:

* the decomposition (``plan``), the real computation (``execute``) and
  the recomposition (``aggregate``) — these produce *real results*, used
  unchanged on the threaded runtime;
* a cost model (``task_cost_ms`` / ``planning_cost_ms`` /
  ``aggregation_cost_ms``) in **reference milliseconds** (time at 100 %
  of an 800 MHz CPU), which drives virtual time in simulation — results
  are real, time is modelled (see DESIGN.md §5);
* a class-loading profile: how much CPU the remote-node-configuration
  download spike costs on a worker (the Figs 9–11 startup peaks differ
  per application).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ClassLoadProfile:
    """Cost of dynamically loading the worker implementation."""

    work_ref_ms: float       # CPU work of unpacking/verifying classes
    demand_percent: float    # height of the CPU spike it causes
    bundle_bytes: int        # jar size transferred from the code server


@dataclass(frozen=True)
class Task:
    """A planned unit of work (becomes a ``TaskEntry`` payload)."""

    task_id: int
    payload: Any


class Application(ABC):
    """A master–worker application runnable on the framework."""

    #: unique identifier; used in space templates and metrics
    app_id: str = "app"

    # -- functional behaviour ----------------------------------------------------

    @abstractmethod
    def plan(self) -> list[Task]:
        """Decompose the problem into independent tasks."""

    @abstractmethod
    def execute(self, payload: Any) -> Any:
        """Compute one task's result (pure; runs on the worker)."""

    @abstractmethod
    def aggregate(self, results: dict[int, Any]) -> Any:
        """Combine ``{task_id: result}`` into the final solution."""

    # -- cost model (reference ms on an unloaded 800 MHz CPU) -----------------------

    @abstractmethod
    def task_cost_ms(self, task: Task) -> float:
        """Worker CPU cost of computing ``task``."""

    def planning_cost_ms(self, task: Task) -> float:
        """Master CPU cost of creating/serializing one task entry."""
        return 5.0

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        """Master CPU cost of folding one result into the solution."""
        return 5.0

    def classload_profile(self) -> ClassLoadProfile:
        """CPU/network profile of loading this app's worker classes."""
        return ClassLoadProfile(work_ref_ms=1000.0, demand_percent=80.0,
                                bundle_bytes=200_000)

    # -- conveniences -------------------------------------------------------------

    def run_sequential(self) -> Any:
        """Reference single-machine execution (used by correctness tests)."""
        results = {task.task_id: self.execute(task.payload) for task in self.plan()}
        return self.aggregate(results)
