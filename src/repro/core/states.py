"""The worker state machine (paper Fig. 5).

Three states — Running, Paused, Stopped — with transitions driven solely
by rule-base signals:

* Stopped --Start-->  Running   (requires remote class (re)loading)
* Running --Stop-->   Stopped   (worker thread shut down, classes dropped)
* Running --Pause-->  Paused    (thread blocked, classes retained)
* Paused  --Resume--> Running   (no class reload needed)
* Paused  --Stop-->   Stopped   (load kept rising while paused)

Any other (state, signal) pair is illegal; the machine rejects it rather
than guessing, which is what lets experiments assert that the inference
engine only ever produces legal signals.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import IllegalTransitionError
from repro.core.signals import Signal

__all__ = ["WorkerState", "WorkerStateMachine"]


class WorkerState(enum.Enum):
    """The three worker states of the paper's Fig. 5."""

    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"

    def __str__(self) -> str:
        return self.value


_TRANSITIONS: dict[tuple[WorkerState, Signal], WorkerState] = {
    (WorkerState.STOPPED, Signal.START): WorkerState.RUNNING,
    (WorkerState.RUNNING, Signal.STOP): WorkerState.STOPPED,
    (WorkerState.RUNNING, Signal.PAUSE): WorkerState.PAUSED,
    (WorkerState.PAUSED, Signal.RESUME): WorkerState.RUNNING,
    (WorkerState.PAUSED, Signal.STOP): WorkerState.STOPPED,
}


class WorkerStateMachine:
    """Tracks one worker's state; optionally records transition history."""

    def __init__(
        self,
        initial: WorkerState = WorkerState.STOPPED,
        on_transition: Optional[Callable[[WorkerState, Signal, WorkerState], None]] = None,
    ) -> None:
        self.state = initial
        self.history: list[tuple[WorkerState, Signal, WorkerState]] = []
        self._on_transition = on_transition

    def can_apply(self, signal: Signal) -> bool:
        return (self.state, signal) in _TRANSITIONS

    def apply(self, signal: Signal) -> WorkerState:
        """Transition on ``signal``; raises on an illegal pair."""
        key = (self.state, signal)
        if key not in _TRANSITIONS:
            raise IllegalTransitionError(
                f"signal {signal} illegal in state {self.state}"
            )
        previous = self.state
        self.state = _TRANSITIONS[key]
        self.history.append((previous, signal, self.state))
        if self._on_transition is not None:
            self._on_transition(previous, signal, self.state)
        return self.state

    @staticmethod
    def legal_transitions() -> dict[tuple[WorkerState, Signal], WorkerState]:
        return dict(_TRANSITIONS)
