"""Post-run consistency checking over a recorded operation history.

The space is a multiset of entries, so linearizability collapses to
*conservation laws* over each entry identity ``(class, shard_key)``:

1. **No phantom takes.**  Entries taken (committed) can never exceed
   entries written (committed + indeterminate).  A violation means a
   take returned an entry that was never written or was already taken —
   the signature of a split-brain double-serve.
2. **Causality.**  A committed take must respond after some write of the
   same entry was invoked.  (With committed writes only — indeterminate
   writes have no known effective time.)
3. **No lost committed writes.**  For tracked entry classes, every
   committed write must be accounted for: taken (committed), possibly
   taken (keyed indeterminate take), still present in the final
   contents, or covered by per-class slack from unkeyed indeterminate
   takes (a take whose reply was lost may have consumed an entry we
   cannot name).  A violation means an acknowledged write vanished —
   the signature of a fenced-too-late primary acking writes the new
   primary never saw.
4. **Rejected writes have no side effects.**  ``rejected`` records
   (:class:`~repro.errors.FencedError` /
   :class:`~repro.errors.AdmissionError`, both raised *before*
   dispatch) promise the entry never entered the space.  For a key
   that has rejected writes, the final contents must therefore be
   fully explained by its committed/indeterminate writes; a surplus
   entry means a "rejected" write actually landed — an admission
   controller or fence that refused the client *after* mutating
   state, which would make the client's blind retry a duplicate.

``indeterminate`` records only ever *relax* these checks (they widen
the write allowance and the take slack); they can never create a
violation.  That makes the checker sound — every reported violation is
a real consistency breach — at the cost of missing breaches hidden
behind genuinely ambiguous network outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.verify.history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    PENDING,
    REJECTED,
    HistoryRecorder,
    Op,
    entry_key,
)

__all__ = ["HistoryReport", "check_history"]

#: Entry classes subject to the lost-write check by default.  Other
#: classes (checkpoints, heartbeats, ...) are written with finite leases
#: and may expire legitimately.
DEFAULT_TRACKED = ("TaskEntry", "ResultEntry")

_MAX_REPORTED = 20


@dataclass
class _KeyTally:
    writes_committed: int = 0
    writes_indeterminate: int = 0
    writes_rejected: int = 0
    takes_committed: int = 0
    takes_indeterminate: int = 0
    first_write_invoked: Optional[float] = None
    first_take_responded: Optional[float] = None


@dataclass
class HistoryReport:
    """Outcome of :func:`check_history`."""

    violations: list[str] = field(default_factory=list)
    ops: int = 0
    keys: int = 0
    by_status: dict[str, int] = field(default_factory=dict)
    suppressed: int = 0  # violations beyond the reporting cap

    @property
    def ok(self) -> bool:
        return not self.violations and self.suppressed == 0

    def summary(self) -> str:
        counts = ", ".join(f"{status}={count}" for status, count
                           in sorted(self.by_status.items()))
        head = (f"history: {self.ops} ops over {self.keys} keys "
                f"({counts or 'empty'})")
        if self.ok:
            return f"{head} -- no consistency violations"
        total = len(self.violations) + self.suppressed
        lines = [f"{head} -- {total} VIOLATION(S):"]
        lines.extend(f"  - {v}" for v in self.violations)
        if self.suppressed:
            lines.append(f"  ... and {self.suppressed} more")
        return "\n".join(lines)


def check_history(
    history: HistoryRecorder,
    final_entries: Optional[Iterable[Any]] = None,
    tracked_classes: Iterable[str] = DEFAULT_TRACKED,
) -> HistoryReport:
    """Check a run's operation history for consistency violations.

    ``final_entries`` is the space's contents after the run (all shards
    merged); without it the lost-write check is skipped.  Returns a
    :class:`HistoryReport`; ``report.ok`` is the pass/fail verdict.
    """
    report = HistoryReport(ops=len(history.ops))
    tallies: dict[tuple[str, Any], _KeyTally] = {}
    #: Per-class slack from unkeyed indeterminate takes.  ``None`` =
    #: unbounded (a lost take_multiple reply of unknown cardinality).
    slack: dict[str, Optional[int]] = {}

    for op in history.ops:
        report.by_status[op.status] = report.by_status.get(op.status, 0) + 1
        if op.status == ABORTED or op.op == "read":
            continue
        # An op still pending when the history closed (its client was cut
        # down mid-flight at shutdown) never had an observed outcome: it
        # may or may not have taken effect, which is the definition of
        # indeterminate.
        status = INDETERMINATE if op.status == PENDING else op.status
        if op.key is None:
            if op.op == "take" and status == INDETERMINATE:
                if op.count is None:
                    slack[op.entry_class] = None
                elif slack.get(op.entry_class, 0) is not None:
                    slack[op.entry_class] = (
                        slack.get(op.entry_class, 0) + op.count)
            continue
        tally = tallies.setdefault(op.key, _KeyTally())
        if op.op == "write":
            if status == COMMITTED:
                tally.writes_committed += 1
                if (tally.first_write_invoked is None
                        or op.invoked_ms < tally.first_write_invoked):
                    tally.first_write_invoked = op.invoked_ms
            elif status == INDETERMINATE:
                tally.writes_indeterminate += 1
            elif status == REJECTED:
                tally.writes_rejected += 1
        elif op.op == "take":
            if status == COMMITTED:
                tally.takes_committed += 1
                if (tally.first_take_responded is None
                        or (op.responded_ms is not None
                            and op.responded_ms < tally.first_take_responded)):
                    tally.first_take_responded = op.responded_ms
            elif status == INDETERMINATE:
                tally.takes_indeterminate += 1

    report.keys = len(tallies)
    violations: list[str] = []

    # -- check 1: no phantom takes -------------------------------------------
    for key, tally in sorted(tallies.items(), key=lambda kv: repr(kv[0])):
        allowance = tally.writes_committed + tally.writes_indeterminate
        if tally.takes_committed > allowance:
            violations.append(
                f"{key}: {tally.takes_committed} committed takes but only "
                f"{tally.writes_committed} committed "
                f"(+{tally.writes_indeterminate} indeterminate) writes -- "
                f"an entry was served that was never written or was "
                f"already taken")

    # -- check 2: causality ---------------------------------------------------
    for key, tally in sorted(tallies.items(), key=lambda kv: repr(kv[0])):
        if (tally.takes_committed > 0
                and tally.writes_committed > 0
                and tally.writes_indeterminate == 0
                and tally.first_take_responded is not None
                and tally.first_write_invoked is not None
                and tally.first_take_responded < tally.first_write_invoked):
            violations.append(
                f"{key}: a take responded at "
                f"t={tally.first_take_responded:.1f}ms, before any write "
                f"was invoked (earliest t={tally.first_write_invoked:.1f}ms)")

    # -- check 3: no lost committed writes -----------------------------------
    if final_entries is not None:
        tracked = set(tracked_classes)
        remaining: dict[tuple[str, Any], int] = {}
        for entry in final_entries:
            key = entry_key(entry)
            if key is not None:
                remaining[key] = remaining.get(key, 0) + 1
        missing_by_class: dict[str, list[tuple[Any, int]]] = {}
        for key, tally in tallies.items():
            if key[0] not in tracked:
                continue
            unaccounted = (tally.writes_committed - tally.takes_committed
                           - tally.takes_indeterminate
                           - remaining.get(key, 0))
            if unaccounted > 0:
                missing_by_class.setdefault(key[0], []).append(
                    (key[1], unaccounted))
        for cls, missing in sorted(missing_by_class.items()):
            total_missing = sum(n for _, n in missing)
            cls_slack = slack.get(cls, 0)
            if cls_slack is None or total_missing <= cls_slack:
                continue  # plausibly consumed by takes with lost replies
            for raw_key, count in sorted(missing, key=repr):
                violations.append(
                    f"({cls!r}, {raw_key!r}): {count} committed write(s) "
                    f"neither taken nor present in the final contents -- "
                    f"a committed write was lost")

        # -- check 4: rejected writes have no side effects --------------------
        # A rejection (fence or admission control) happens before dispatch,
        # so the entry must not be in the space.  Surplus final entries on
        # a key with rejected writes mean a "rejected" write landed — and
        # the client's safe-because-no-side-effects retry duplicated it.
        for key, tally in sorted(tallies.items(), key=lambda kv: repr(kv[0])):
            if tally.writes_rejected == 0:
                continue
            explained = (tally.writes_committed + tally.writes_indeterminate
                         - tally.takes_committed)
            surplus = remaining.get(key, 0) - max(explained, 0)
            if surplus > 0:
                violations.append(
                    f"{key}: {surplus} final entr{'y' if surplus == 1 else 'ies'} "
                    f"beyond what {tally.writes_committed} committed "
                    f"(+{tally.writes_indeterminate} indeterminate) writes "
                    f"explain, with {tally.writes_rejected} rejected "
                    f"write(s) on the key -- a rejected operation had "
                    f"side effects")

    report.violations = violations[:_MAX_REPORTED]
    report.suppressed = max(0, len(violations) - _MAX_REPORTED)
    return report
