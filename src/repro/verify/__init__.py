"""Consistency verification for chaos runs (DESIGN.md §11).

The tuple space is the cluster's single source of truth, so the only
evidence a chaos campaign needs is the *operation history* every client
observed against it: each ``write``/``take``/``read`` with its
invocation and response times and a resolution status.  The wrappers in
:mod:`repro.verify.history` record that history transparently (master
and workers see the same duck-typed space API); the checker in
:mod:`repro.verify.checker` replays it after the run and flags anything
a correct space could not have produced — a take of a never-written or
already-taken entry, a committed write that vanished, a result that
materialized twice.
"""

from repro.verify.checker import HistoryReport, check_history
from repro.verify.history import (
    HistoryRecorder,
    Op,
    RecordingBatch,
    RecordingSpace,
    RecordingTransaction,
)

__all__ = [
    "HistoryRecorder",
    "Op",
    "RecordingSpace",
    "RecordingTransaction",
    "RecordingBatch",
    "HistoryReport",
    "check_history",
]
