"""Transparent operation-history recording for consistency checking.

:class:`RecordingSpace` wraps any object with the JavaSpace client API —
a :class:`~repro.tuplespace.proxy.SpaceProxy`, a
:class:`~repro.tuplespace.sharding.ShardRouter`, or an in-process
:class:`~repro.tuplespace.space.JavaSpace` — and records every
``write``/``take``/``read`` as an :class:`Op` with invocation and
response times and a *resolution status*:

``committed``
    The operation definitely took effect (acknowledged, and any
    enclosing transaction committed).
``indeterminate``
    The connection died around the critical RPC.  Non-idempotent
    operations are never blind-retried by the proxy (see
    :class:`~repro.tuplespace.proxy.RecoveryPolicy`), so the operation
    executed *at most once* — it may or may not have taken effect.
``rejected``
    Definitely did not take effect: every attempt died with
    :class:`~repro.errors.FencedError` or
    :class:`~repro.errors.AdmissionError`, both of which the server
    raises *before* executing anything (for a batch, before executing
    *any* sub-op).
``aborted``
    Definitely rolled back: the enclosing transaction aborted (or
    expired server-side), so takes were undone and writes never became
    visible.

Operations issued under a transaction are buffered on the
:class:`RecordingTransaction` and resolved all at once when its fate is
known; operations inside a pipelined batch are buffered on the
:class:`RecordingBatch` and resolved at ``flush``.  The checker
(:mod:`repro.verify.checker`) treats ``indeterminate`` as slack in both
directions — it can never manufacture a violation, only excuse one — so
recording errs toward ``indeterminate`` whenever the outcome is unknown.

An operation that fails without yielding an entry (a take whose reply
was lost) cannot be attributed to a key; it is recorded *unkeyed* with
the template's class so the checker can grant per-class slack
(``count=None`` means "an unknown number of entries", which disables the
lost-write check for that class — sound, just weaker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import AdmissionError, FencedError, NetworkError, SpaceError
from repro.runtime.base import Runtime
from repro.tuplespace.entry import Entry
from repro.tuplespace.lease import FOREVER

__all__ = ["Op", "HistoryRecorder", "RecordingSpace",
           "RecordingTransaction", "RecordingBatch", "entry_key"]

#: Statuses the checker counts as "took effect" / "may have taken effect".
COMMITTED = "committed"
INDETERMINATE = "indeterminate"
REJECTED = "rejected"
ABORTED = "aborted"
PENDING = "pending"


def entry_key(entry: Any) -> Optional[tuple[str, Any]]:
    """Identity of an entry for conservation checks.

    ``(class name, shard_key)`` — the same identity the shard ring
    routes on.  Entries without a routable key (``shard_key() is None``,
    e.g. checkpoints) return ``None`` and are exempt from per-key
    conservation, which is deliberate: such entries are typically leased
    and expire legitimately.
    """
    if not isinstance(entry, Entry):
        return None
    key = entry.shard_key()
    if key is None:
        return None
    return (type(entry).__name__, key)


@dataclass
class Op:
    """One recorded space operation (or one entry of a bulk operation)."""

    op: str                      # "write" | "take" | "read"
    entry_class: str
    key: Optional[tuple[str, Any]]
    client: str
    invoked_ms: float
    responded_ms: Optional[float] = None
    status: str = PENDING
    #: How many entries this record may account for: 1 for keyed records
    #: and unkeyed single takes, ``None`` for an unkeyed take_multiple
    #: whose reply was lost (unknown count).
    count: Optional[int] = 1


class HistoryRecorder:
    """Append-only log of every recorded :class:`Op` in one run."""

    def __init__(self, runtime: Runtime) -> None:
        self.runtime = runtime
        self.ops: list[Op] = []

    def __len__(self) -> int:
        return len(self.ops)

    def now(self) -> float:
        return self.runtime.now()

    def record(self, op: str, entry: Any, client: str, invoked_ms: float,
               status: str, responded_ms: Optional[float] = None) -> Op:
        """Record one finalized (or pending) operation on ``entry``."""
        record = Op(
            op=op,
            entry_class=type(entry).__name__,
            key=entry_key(entry),
            client=client,
            invoked_ms=invoked_ms,
            status=status,
            responded_ms=(responded_ms if responded_ms is not None
                          else (None if status == PENDING else self.now())),
        )
        self.ops.append(record)
        return record

    def record_unkeyed(self, op: str, template: Any, client: str,
                       invoked_ms: float, status: str,
                       count: Optional[int]) -> Op:
        """Record an operation whose affected entries are unknown."""
        record = Op(
            op=op,
            entry_class=type(template).__name__,
            key=None,
            client=client,
            invoked_ms=invoked_ms,
            status=status,
            responded_ms=self.now(),
            count=count,
        )
        self.ops.append(record)
        return record


def _unwrap(txn: Any) -> Any:
    """The transaction handle the underlying client understands."""
    if isinstance(txn, RecordingTransaction):
        return txn._inner
    return txn


class RecordingTransaction:
    """Duck-typed transaction handle that defers status resolution.

    Mirrors the :class:`~repro.tuplespace.proxy.RemoteTransaction`
    surface (``txn_id``/``completed``/``commit``/``abort``/context
    manager).  ``completed`` is a property *with a setter* because
    worker error paths assign it directly after a failed abort — that
    assignment resolves any still-pending operations as ``aborted``
    (the commit was never acknowledged, so nothing took effect).
    """

    def __init__(self, inner: Any, history: HistoryRecorder,
                 client: str) -> None:
        self._inner = inner
        self._history = history
        self._client = client
        self._pending: list[Op] = []
        self._resolved = False

    @property
    def txn_id(self) -> Any:
        return self._inner.txn_id

    @property
    def completed(self) -> bool:
        return self._inner.completed

    @completed.setter
    def completed(self, value: bool) -> None:
        self._inner.completed = value
        if value:
            self._resolve(ABORTED)

    def _buffer(self, record: Op) -> None:
        self._pending.append(record)

    def _resolve(self, status: str,
                 responded_ms: Optional[float] = None) -> None:
        """Stamp every buffered operation with the transaction's fate.

        First resolution wins: a commit that died with a connection
        error resolves ``indeterminate``, and the cleanup abort that
        follows must not downgrade that to ``aborted``.
        """
        if self._resolved:
            return
        self._resolved = True
        when = responded_ms if responded_ms is not None else self._history.now()
        for record in self._pending:
            record.status = status
            record.responded_ms = when
        self._pending = []

    def commit(self) -> None:
        try:
            self._inner.commit()
        except FencedError:
            self._resolve(REJECTED)
            raise
        except NetworkError:
            self._resolve(INDETERMINATE)
            raise
        except SpaceError:
            # Expired or already aborted server-side: nothing committed.
            self._resolve(ABORTED)
            raise
        self._resolve(COMMITTED)

    def abort(self) -> None:
        try:
            self._inner.abort()
        finally:
            # Even if the abort RPC itself failed, the commit was never
            # issued — the server aborts the transaction on lease expiry.
            self._resolve(ABORTED)

    def __enter__(self) -> "RecordingTransaction":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if self.completed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class RecordingSpace:
    """History-recording wrapper around a space client.

    Everything not intercepted here (``count``, ``contents``,
    ``exists``, ``ping``, ``close``, ``fail``, health counters, ...)
    passes through via ``__getattr__`` — including ``batch``, which is
    wrapped on access so that ``getattr(space, "batch", None)``
    duck-typing still reports ``None`` for clients without one.
    """

    def __init__(self, space: Any, history: HistoryRecorder,
                 client: str = "client") -> None:
        self._space = space
        self._history = history
        self._client = client

    # -- mutating operations -------------------------------------------------

    def write(self, entry: Entry, txn: Any = None,
              lease_ms: float = FOREVER, requeue: bool = False) -> Any:
        invoked = self._history.now()
        try:
            result = self._space.write(entry, txn=_unwrap(txn),
                                       lease_ms=lease_ms, requeue=requeue)
        except (FencedError, AdmissionError):
            self._history.record("write", entry, self._client, invoked,
                                 REJECTED)
            raise
        except NetworkError:
            self._history.record("write", entry, self._client, invoked,
                                 INDETERMINATE)
            raise
        self._settle("write", [entry], txn, invoked)
        return result

    def write_all(self, entries: list[Entry], txn: Any = None,
                  lease_ms: float = FOREVER, requeue: bool = False) -> int:
        invoked = self._history.now()
        try:
            result = self._space.write_all(entries, txn=_unwrap(txn),
                                           lease_ms=lease_ms, requeue=requeue)
        except (FencedError, AdmissionError) as exc:
            # A sharded scatter can admit some groups before another
            # shard rejects; those entries *are* in the space and the
            # router names them on the exception.  Everything else was
            # definitely refused pre-dispatch.
            admitted = {id(e) for e in getattr(exc, "admitted_entries", ())}
            for entry in entries:
                self._history.record(
                    "write", entry, self._client, invoked,
                    COMMITTED if id(entry) in admitted else REJECTED)
            raise
        except NetworkError:
            for entry in entries:
                self._history.record("write", entry, self._client, invoked,
                                     INDETERMINATE)
            raise
        self._settle("write", entries, txn, invoked)
        return result

    def take(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        invoked = self._history.now()
        try:
            entry = self._space.take(template, txn=_unwrap(txn),
                                     timeout_ms=timeout_ms)
        except FencedError:
            raise  # rejected pre-execution: nothing was consumed
        except NetworkError:
            # The reply was lost: an entry may have been consumed, and
            # we cannot know which.  Unkeyed slack for the checker.
            self._history.record_unkeyed("take", template, self._client,
                                         invoked, INDETERMINATE, count=1)
            raise
        if entry is not None:
            self._settle("take", [entry], txn, invoked)
        return entry

    def take_if_exists(self, template: Entry,
                       txn: Any = None) -> Optional[Entry]:
        return self.take(template, txn=txn, timeout_ms=0.0)

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Any = None,
                      timeout_ms: Optional[float] = None) -> list[Entry]:
        invoked = self._history.now()
        try:
            entries = self._space.take_multiple(
                template, max_entries, txn=_unwrap(txn),
                timeout_ms=timeout_ms)
        except FencedError:
            raise
        except NetworkError:
            self._history.record_unkeyed("take", template, self._client,
                                         invoked, INDETERMINATE, count=None)
            raise
        if entries:
            self._settle("take", entries, txn, invoked)
        return entries

    # -- non-mutating operations ---------------------------------------------

    def read(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        invoked = self._history.now()
        entry = self._space.read(template, txn=_unwrap(txn),
                                 timeout_ms=timeout_ms)
        if entry is not None:
            # Reads never change state: record committed immediately.
            self._history.record("read", entry, self._client, invoked,
                                 COMMITTED)
        return entry

    def read_if_exists(self, template: Entry,
                       txn: Any = None) -> Optional[Entry]:
        return self.read(template, txn=txn, timeout_ms=0.0)

    # -- handles -------------------------------------------------------------

    def transaction(self, timeout_ms: float = FOREVER) -> RecordingTransaction:
        return RecordingTransaction(self._space.transaction(timeout_ms),
                                    self._history, self._client)

    def __getattr__(self, name: str) -> Any:
        if name == "batch":
            factory = getattr(self._space, "batch")  # may raise AttributeError
            return lambda: RecordingBatch(factory(), self)
        return getattr(self._space, name)

    # -- internals -----------------------------------------------------------

    def _settle(self, op: str, entries: list[Entry], txn: Any,
                invoked_ms: float) -> None:
        """Record successful entries: buffered if transactional."""
        if isinstance(txn, RecordingTransaction):
            for entry in entries:
                txn._buffer(self._history.record(
                    op, entry, self._client, invoked_ms, PENDING))
        else:
            for entry in entries:
                self._history.record(op, entry, self._client, invoked_ms,
                                     COMMITTED)


class RecordingBatch:
    """History-recording wrapper around a pipelined batch.

    Mirrors :class:`~repro.tuplespace.proxy.ProxyBatch` /
    :class:`~repro.tuplespace.sharding.ShardedBatch`: operations are
    described locally and resolved when :meth:`flush` learns their fate.
    A ``commit``/``abort`` op inside the batch resolves its transaction's
    buffered history at the right point in the op sequence, so the
    worker's steady-state ``write_all + commit + txn_create +
    take_multiple`` cycle records exactly like its unbatched equivalent.
    """

    def __init__(self, inner: Any, space: RecordingSpace) -> None:
        self._inner = inner
        self._space = space
        self._descriptors: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._inner)

    def _describe(self, **descriptor: Any) -> None:
        descriptor["invoked_ms"] = self._space._history.now()
        self._descriptors.append(descriptor)

    # -- the batchable operation set ----------------------------------------

    def write(self, entry: Entry, txn: Any = None,
              lease_ms: float = FOREVER, requeue: bool = False) -> int:
        index = self._inner.write(entry, txn=_unwrap(txn), lease_ms=lease_ms,
                                  requeue=requeue)
        self._describe(kind="write", index=index, entries=[entry], txn=txn)
        return index

    def write_all(self, entries: list[Entry], txn: Any = None,
                  lease_ms: float = FOREVER, requeue: bool = False) -> int:
        index = self._inner.write_all(entries, txn=_unwrap(txn),
                                      lease_ms=lease_ms, requeue=requeue)
        self._describe(kind="write", index=index, entries=list(entries),
                       txn=txn)
        return index

    def read(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = 0.0) -> int:
        index = self._inner.read(template, txn=_unwrap(txn),
                                 timeout_ms=timeout_ms)
        self._describe(kind="read", index=index, template=template, txn=txn)
        return index

    def take(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = 0.0) -> int:
        index = self._inner.take(template, txn=_unwrap(txn),
                                 timeout_ms=timeout_ms)
        self._describe(kind="take", index=index, template=template, txn=txn,
                       multiple=False)
        return index

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Any = None,
                      timeout_ms: Optional[float] = 0.0) -> int:
        index = self._inner.take_multiple(template, max_entries,
                                          txn=_unwrap(txn),
                                          timeout_ms=timeout_ms)
        self._describe(kind="take", index=index, template=template, txn=txn,
                       multiple=True)
        return index

    def count(self, template: Entry) -> int:
        return self._inner.count(template)

    def txn_create(self, timeout_ms: float = FOREVER) -> RecordingTransaction:
        inner_txn = self._inner.txn_create(timeout_ms)
        txn = RecordingTransaction(inner_txn, self._space._history,
                                   self._space._client)
        self._describe(kind="txn_create", txn=txn)
        return txn

    def commit(self, txn: Any) -> int:
        index = self._inner.commit(_unwrap(txn))
        self._describe(kind="commit", index=index, txn=txn)
        return index

    def abort(self, txn: Any) -> int:
        index = self._inner.abort(_unwrap(txn))
        self._describe(kind="abort", index=index, txn=txn)
        return index

    # -- execution -----------------------------------------------------------

    def flush(self) -> list[Any]:
        descriptors, self._descriptors = self._descriptors, []
        try:
            values = self._inner.flush()
        except (FencedError, AdmissionError) as exc:
            # Both are pre-execution rejections; for a batch the server
            # admission-checks every sub-op before running any, so the
            # whole pipeline definitely did not execute.  (A sharded
            # scatter write inside a batch may still have landed on the
            # shards that admitted it — those entries ride the error.)
            self._fail(descriptors, REJECTED,
                       admitted={id(e) for e in
                                 getattr(exc, "admitted_entries", ())})
            raise
        except NetworkError:
            self._fail(descriptors, INDETERMINATE)
            raise
        except SpaceError:
            # A sub-op failed server-side: a prefix of the batch may
            # have executed; which ops it covers is not observable here.
            self._fail(descriptors, INDETERMINATE)
            raise
        self._resolve(descriptors, values)
        return values

    def _resolve(self, descriptors: list[dict[str, Any]],
                 values: list[Any]) -> None:
        """Record every op of a fully successful flush, in op order —
        so a commit resolves the writes buffered just before it."""
        space = self._space
        for d in descriptors:
            kind, txn = d["kind"], d.get("txn")
            if kind == "write":
                space._settle("write", d["entries"], txn, d["invoked_ms"])
            elif kind == "read":
                entry = values[d["index"]]
                if entry is not None:
                    space._history.record("read", entry, space._client,
                                          d["invoked_ms"], COMMITTED)
            elif kind == "take":
                value = values[d["index"]]
                entries = (list(value) if d["multiple"]
                           else ([value] if value is not None else []))
                if entries:
                    space._settle("take", entries, txn, d["invoked_ms"])
            elif kind == "commit" and isinstance(txn, RecordingTransaction):
                txn._resolve(COMMITTED)
            elif kind == "abort" and isinstance(txn, RecordingTransaction):
                txn._resolve(ABORTED)

    def _fail(self, descriptors: list[dict[str, Any]], status: str,
              admitted: Optional[set[int]] = None) -> None:
        """Record a failed flush.

        ``rejected`` flushes executed nothing; ``indeterminate`` flushes
        may have executed a prefix.  Writes are attributable either way
        (buffered into their open transaction when one is recording, so
        a later commit — in a retried batch — resolves them precisely);
        takes yielded no entries we can name, so an indeterminate flush
        records unkeyed per-class slack.  ``admitted`` (entry ids) marks
        writes a partially-rejected scatter did land — committed, not
        ``status``.
        """
        space = self._space
        history = space._history
        for d in descriptors:
            kind, txn = d["kind"], d.get("txn")
            if kind == "write":
                if (status == INDETERMINATE
                        and isinstance(txn, RecordingTransaction)
                        and not txn._resolved):
                    space._settle("write", d["entries"], txn, d["invoked_ms"])
                else:
                    for entry in d["entries"]:
                        history.record(
                            "write", entry, space._client, d["invoked_ms"],
                            COMMITTED if admitted and id(entry) in admitted
                            else status)
            elif kind == "take" and status == INDETERMINATE:
                history.record_unkeyed(
                    "take", d["template"], space._client, d["invoked_ms"],
                    INDETERMINATE, count=None if d["multiple"] else 1)
            elif kind == "commit" and isinstance(txn, RecordingTransaction):
                txn._resolve(status)
            elif kind == "abort" and isinstance(txn, RecordingTransaction):
                txn._resolve(ABORTED)
