"""SNMP traps: event-driven monitoring instead of polling.

An extension beyond the paper (whose monitoring agent polls): the worker
agent *pushes* a trap whenever its load crosses a threshold band, so the
network management module reacts in one local sampling interval while
sending traffic only on changes.  The trap-vs-poll ablation bench
quantifies the trade.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.errors import CodecError, ConnectionClosedError
from repro.net.address import Address
from repro.net.network import Network
from repro.node.machine import Node
from repro.runtime.base import Runtime
from repro.snmp.mib import HOST_RESOURCES
from repro.snmp.oid import Oid
from repro.snmp.pdu import TrapV2, decode_message, encode_message

__all__ = ["TrapReceiver", "LoadBandTrapEmitter", "TRAP_PORT"]

TRAP_PORT = 162


class TrapReceiver:
    """Listens on the trap port and dispatches decoded traps."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        community: str = "public",
        port: int = TRAP_PORT,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.address = Address(host, port)
        self.community = community
        self._socket = None
        self._running = False
        self._handlers: list[Callable[[TrapV2, Address], None]] = []
        self.stats = {"traps": 0, "rejected": 0}

    def on_trap(self, handler: Callable[[TrapV2, Address], None]) -> None:
        self._handlers.append(handler)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._socket = self.network.bind_datagram(self.address)
        self.runtime.spawn(self._listen_loop, name=f"trap-receiver:{self.address.host}")

    def stop(self) -> None:
        self._running = False
        if self._socket is not None:
            self._socket.close()

    def _listen_loop(self) -> None:
        while self._running:
            try:
                received = self._socket.receive(timeout_ms=None)
            except ConnectionClosedError:
                return
            if received is None:
                continue
            data, sender = received
            try:
                pdu = decode_message(data)
            except CodecError:
                self.stats["rejected"] += 1
                continue
            if not isinstance(pdu, TrapV2) or pdu.community != self.community:
                self.stats["rejected"] += 1
                continue
            self.stats["traps"] += 1
            for handler in self._handlers:
                handler(pdu, sender)


class LoadBandTrapEmitter:
    """Agent-side watcher: traps whenever the node's load changes band.

    Sampling is *local* (no network), so the check interval can be much
    shorter than a remote poll period; datagrams go out only on band
    transitions plus an initial announcement.
    """

    def __init__(
        self,
        runtime: Runtime,
        node: Node,
        destination: Address,
        band_of: Callable[[float], str],
        community: str = "public",
        check_interval_ms: float = 200.0,
        window_ms: float = 500.0,
    ) -> None:
        self.runtime = runtime
        self.node = node
        self.destination = destination
        self.band_of = band_of
        self.community = community
        self.check_interval_ms = check_interval_ms
        self.window_ms = window_ms
        self.running = False
        self._ids = itertools.count(1)
        self._socket = None
        self.traps_sent = 0

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._socket = self.node.network.bind_datagram(
            self.node.network.ephemeral(self.node.hostname)
        )
        self.runtime.spawn(self._watch_loop, name=f"trap-emitter:{self.node.hostname}")

    def stop(self) -> None:
        self.running = False
        if self._socket is not None:
            self._socket.close()

    def _current_load(self) -> float:
        return self.node.cpu.average_external(self.window_ms)

    def _emit(self, load: float) -> None:
        trap = TrapV2(
            request_id=next(self._ids),
            varbinds=[
                (HOST_RESOURCES.SYS_NAME, self.node.hostname),
                (HOST_RESOURCES.EXTERNAL_LOAD, round(load)),
            ],
            community=self.community,
        )
        self._socket.send_to(self.destination, encode_message(trap))
        self.traps_sent += 1

    def _watch_loop(self) -> None:
        load = self._current_load()
        band = self.band_of(load)
        self._emit(load)  # initial announcement recruits idle nodes
        while self.running:
            self.runtime.sleep(self.check_interval_ms)
            if not self.running:
                return
            load = self._current_load()
            new_band = self.band_of(load)
            if new_band != band:
                band = new_band
                self._emit(load)
