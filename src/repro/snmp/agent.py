"""The SNMP worker-agent.

Runs on every monitored node: binds UDP port 161, decodes request PDUs,
authenticates the community string, answers GET/GETNEXT/SET against the
node's MIB.  Malformed packets are dropped (as real agents do); bad
communities are silently ignored (SNMPv1 behaviour without traps).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import BadCommunityError, CodecError, ConnectionClosedError, NoSuchOidError
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime.base import Runtime
from repro.snmp.mib import Mib
from repro.snmp.pdu import (
    ERROR_BAD_VALUE,
    ERROR_GEN_ERR,
    ERROR_NO_SUCH_NAME,
    GetBulkRequest,
    GetNextRequest,
    GetRequest,
    GetResponse,
    SetRequest,
    decode_message,
    encode_message,
)

__all__ = ["SnmpAgent", "SNMP_PORT"]

SNMP_PORT = 161


class SnmpAgent:
    """Serves one node's MIB over datagrams."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        mib: Optional[Mib] = None,
        community: str = "public",
        port: int = SNMP_PORT,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.address = Address(host, port)
        self.mib = mib if mib is not None else Mib()
        self.community = community
        self._socket = None
        self._running = False
        self.stats = {"requests": 0, "bad_community": 0, "malformed": 0, "errors": 0}

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._socket = self.network.bind_datagram(self.address)
        self.runtime.spawn(self._serve_loop, name=f"snmp-agent:{self.address.host}")

    def stop(self) -> None:
        self._running = False
        if self._socket is not None:
            self._socket.close()

    # -- serving ---------------------------------------------------------------

    def _serve_loop(self) -> None:
        while self._running:
            try:
                received = self._socket.receive(timeout_ms=None)
            except ConnectionClosedError:
                return
            if received is None:
                continue
            data, sender = received
            response = self._handle(data)
            if response is not None:
                self._socket.send_to(sender, response)

    def _handle(self, data: bytes) -> Optional[bytes]:
        try:
            request = decode_message(data)
        except CodecError:
            self.stats["malformed"] += 1
            return None
        if request.community != self.community:
            self.stats["bad_community"] += 1
            return None  # SNMPv1: silently drop
        self.stats["requests"] += 1

        response = GetResponse(
            request_id=request.request_id, community=self.community
        )
        if isinstance(request, GetBulkRequest):
            response.varbinds = self._bulk(request)
            return encode_message(response)
        varbinds = []
        for index, (oid, value) in enumerate(request.varbinds, start=1):
            try:
                if isinstance(request, GetRequest):
                    varbinds.append((oid, self.mib.get(oid)))
                elif isinstance(request, GetNextRequest):
                    varbinds.append(self.mib.get_next(oid))
                elif isinstance(request, SetRequest):
                    self.mib.set(oid, value)
                    varbinds.append((oid, value))
                else:
                    response.error_status = ERROR_GEN_ERR
                    response.error_index = index
                    break
            except NoSuchOidError:
                self.stats["errors"] += 1
                response.error_status = ERROR_NO_SUCH_NAME
                response.error_index = index
                varbinds.append((oid, None))
            except (TypeError, ValueError):
                self.stats["errors"] += 1
                response.error_status = ERROR_BAD_VALUE
                response.error_index = index
                varbinds.append((oid, None))
        response.varbinds = varbinds
        return encode_message(response)

    def _bulk(self, request: GetBulkRequest) -> list:
        """RFC 1905 GetBulk: GETNEXT sweeps per varbind.

        The first ``non_repeaters`` varbinds get a single GETNEXT; the
        rest get up to ``max_repetitions`` successive GETNEXTs.  Runs off
        the end of the MIB are simply truncated (no endOfMibView marker in
        this subset).
        """
        out = []
        for index, (oid, _value) in enumerate(request.varbinds):
            repetitions = 1 if index < request.non_repeaters else max(
                1, request.max_repetitions
            )
            cursor = oid
            for _ in range(repetitions):
                try:
                    cursor, value = self.mib.get_next(cursor)
                except NoSuchOidError:
                    break
                out.append((cursor, value))
        return out
