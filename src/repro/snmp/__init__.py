"""SNMP substrate (manager/agent over a HOST-RESOURCES-style MIB).

The paper's network-management module monitors worker CPU load via SNMP:
a *worker-agent* runs on every monitored node, a *manager* polls it.  We
implement the SNMPv1 message structure with a genuine BER-subset codec
(INTEGER, OCTET STRING, NULL, OBJECT IDENTIFIER with base-128
subidentifiers, SEQUENCE, context PDU tags), GET/GETNEXT/SET operations,
community-string authentication, and lexicographic MIB walking.
"""

from repro.snmp.oid import Oid
from repro.snmp.mib import Mib, HOST_RESOURCES
from repro.snmp.pdu import (
    GetNextRequest,
    GetRequest,
    GetResponse,
    SetRequest,
    decode_message,
    encode_message,
)
from repro.snmp.agent import SnmpAgent, SNMP_PORT
from repro.snmp.manager import SnmpManager

__all__ = [
    "Oid",
    "Mib",
    "HOST_RESOURCES",
    "GetRequest",
    "GetNextRequest",
    "SetRequest",
    "GetResponse",
    "encode_message",
    "decode_message",
    "SnmpAgent",
    "SnmpManager",
    "SNMP_PORT",
]
