"""Object identifiers."""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Union

from repro.errors import SnmpError

__all__ = ["Oid"]


@total_ordering
class Oid:
    """An SNMP object identifier (dotted sequence of sub-identifiers).

    Ordering is lexicographic on the sub-identifier tuple — the order
    GETNEXT walks the MIB in.
    """

    __slots__ = ("parts",)

    def __init__(self, value: Union[str, Iterable[int], "Oid"]) -> None:
        if isinstance(value, Oid):
            self.parts: tuple[int, ...] = value.parts
        elif isinstance(value, str):
            text = value.strip().lstrip(".")
            if not text:
                raise SnmpError("empty OID")
            try:
                self.parts = tuple(int(p) for p in text.split("."))
            except ValueError as exc:
                raise SnmpError(f"malformed OID {value!r}") from exc
        else:
            self.parts = tuple(int(p) for p in value)
        if len(self.parts) < 2:
            raise SnmpError(f"OID needs at least two sub-identifiers: {self.parts}")
        if any(p < 0 for p in self.parts):
            raise SnmpError(f"negative sub-identifier in {self.parts}")
        if self.parts[0] > 2:
            raise SnmpError(f"first sub-identifier must be 0..2: {self.parts}")

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)

    def __repr__(self) -> str:
        return f"Oid({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Oid) and self.parts == other.parts

    def __lt__(self, other: "Oid") -> bool:
        return self.parts < other.parts

    def __hash__(self) -> int:
        return hash(self.parts)

    def __add__(self, suffix: Iterable[int]) -> "Oid":
        return Oid(self.parts + tuple(suffix))

    def starts_with(self, prefix: "Oid") -> bool:
        return self.parts[: len(prefix.parts)] == prefix.parts
