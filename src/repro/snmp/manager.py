"""The SNMP manager: polls worker-agents with retries and timeouts.

The paper's monitoring agent calls into this layer (there via JNI; here
directly) to fetch system parameters such as CPU load from registered
workers.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import NoSuchOidError, SnmpError, TimeoutError_
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime.base import Runtime
from repro.snmp.agent import SNMP_PORT
from repro.snmp.oid import Oid
from repro.snmp.pdu import (
    ERROR_NO_SUCH_NAME,
    GetBulkRequest,
    GetNextRequest,
    GetRequest,
    SetRequest,
    decode_message,
    encode_message,
)

__all__ = ["SnmpManager"]


class SnmpManager:
    """Issues GET/GETNEXT/SET requests to agents and matches responses."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        community: str = "public",
        timeout_ms: float = 200.0,
        retries: int = 2,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host
        self.community = community
        self.timeout_ms = timeout_ms
        self.retries = retries
        self._request_ids = itertools.count(1)
        self._socket = network.bind_datagram(network.ephemeral(host))
        self.stats = {"requests": 0, "retries": 0, "timeouts": 0}

    def close(self) -> None:
        self._socket.close()

    # -- public operations ------------------------------------------------------

    def get(self, agent_host: str, oids: list[Oid], port: int = SNMP_PORT) -> dict[Oid, Any]:
        """GET one or more OIDs from an agent; returns ``{oid: value}``."""
        request = GetRequest(
            request_id=next(self._request_ids),
            varbinds=[(Oid(o), None) for o in oids],
            community=self.community,
        )
        response = self._transact(Address(agent_host, port), request)
        if response.error_status == ERROR_NO_SUCH_NAME:
            bad = response.varbinds[response.error_index - 1][0]
            raise NoSuchOidError(str(bad))
        if response.error_status != 0:
            raise SnmpError(f"agent error status {response.error_status}")
        return dict(response.varbinds)

    def get_one(self, agent_host: str, oid: Oid, port: int = SNMP_PORT) -> Any:
        return self.get(agent_host, [oid], port)[Oid(oid)]

    def get_next(
        self, agent_host: str, oid: Oid, port: int = SNMP_PORT
    ) -> tuple[Oid, Any]:
        request = GetNextRequest(
            request_id=next(self._request_ids),
            varbinds=[(Oid(oid), None)],
            community=self.community,
        )
        response = self._transact(Address(agent_host, port), request)
        if response.error_status == ERROR_NO_SUCH_NAME:
            raise NoSuchOidError(f"end of MIB after {oid}")
        if response.error_status != 0:
            raise SnmpError(f"agent error status {response.error_status}")
        return response.varbinds[0]

    def get_bulk(
        self,
        agent_host: str,
        oids: list[Oid],
        non_repeaters: int = 0,
        max_repetitions: int = 10,
        port: int = SNMP_PORT,
    ) -> list[tuple[Oid, Any]]:
        """SNMPv2 GetBulk: batched GETNEXT sweeps in one round trip."""
        request = GetBulkRequest(
            request_id=next(self._request_ids),
            varbinds=[(Oid(o), None) for o in oids],
            error_status=non_repeaters,
            error_index=max_repetitions,
            community=self.community,
        )
        response = self._transact(Address(agent_host, port), request)
        if response.error_status != 0:
            raise SnmpError(f"agent error status {response.error_status}")
        return list(response.varbinds)

    def walk_bulk(self, agent_host: str, subtree: Oid, port: int = SNMP_PORT,
                  max_repetitions: int = 16) -> list[tuple[Oid, Any]]:
        """Like :meth:`walk` but fetching ``max_repetitions`` per round
        trip — the v2 way to dump a table cheaply."""
        subtree = Oid(subtree)
        results: list[tuple[Oid, Any]] = []
        cursor = subtree
        while True:
            batch = self.get_bulk(agent_host, [cursor], port=port,
                                  max_repetitions=max_repetitions)
            progressed = False
            for oid, value in batch:
                if not oid.starts_with(subtree):
                    return results
                results.append((oid, value))
                cursor = oid
                progressed = True
            if not progressed or len(batch) < max_repetitions:
                return results

    def walk(self, agent_host: str, subtree: Oid, port: int = SNMP_PORT) -> list[tuple[Oid, Any]]:
        """GETNEXT sweep of every OID under ``subtree``."""
        subtree = Oid(subtree)
        results: list[tuple[Oid, Any]] = []
        cursor = subtree
        while True:
            try:
                oid, value = self.get_next(agent_host, cursor, port)
            except NoSuchOidError:
                break
            if not oid.starts_with(subtree):
                break
            results.append((oid, value))
            cursor = oid
        return results

    def set(self, agent_host: str, oid: Oid, value: Any, port: int = SNMP_PORT) -> None:
        request = SetRequest(
            request_id=next(self._request_ids),
            varbinds=[(Oid(oid), value)],
            community=self.community,
        )
        response = self._transact(Address(agent_host, port), request)
        if response.error_status != 0:
            raise SnmpError(f"set failed with status {response.error_status}")

    # -- plumbing -----------------------------------------------------------------

    def _transact(self, agent: Address, request) -> Any:
        """Send with retries; match the response by request id."""
        data = encode_message(request)
        attempts = self.retries + 1
        for attempt in range(attempts):
            self.stats["requests"] += 1
            if attempt > 0:
                self.stats["retries"] += 1
            self._socket.send_to(agent, data)
            deadline = self.runtime.now() + self.timeout_ms
            while True:
                remaining = deadline - self.runtime.now()
                if remaining <= 0:
                    break
                received = self._socket.receive(timeout_ms=remaining)
                if received is None:
                    break
                payload, _sender = received
                try:
                    response = decode_message(payload)
                except Exception:
                    continue  # not ours / corrupt: keep listening
                if response.request_id == request.request_id:
                    return response
        self.stats["timeouts"] += 1
        raise TimeoutError_(f"no SNMP response from {agent} after {attempts} attempts")
