"""SNMPv1 message model and BER-subset codec.

Implements the pieces of X.690 BER that SNMPv1 needs:

* ``INTEGER`` (tag 0x02, two's-complement, minimal length),
* ``OCTET STRING`` (tag 0x04, UTF-8 for str payloads),
* ``NULL`` (tag 0x05),
* ``OBJECT IDENTIFIER`` (tag 0x06, first two arcs packed, base-128
  subidentifiers with continuation bits),
* ``SEQUENCE`` (tag 0x30),
* context-class PDU tags 0xA0..0xA3 (GetRequest, GetNextRequest,
  GetResponse, SetRequest).

Long-form lengths are produced for contents over 127 bytes, so large
messages round-trip too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.errors import CodecError
from repro.snmp.oid import Oid

__all__ = [
    "GetRequest",
    "GetNextRequest",
    "GetResponse",
    "SetRequest",
    "encode_message",
    "decode_message",
    "ERROR_NO_SUCH_NAME",
    "ERROR_BAD_VALUE",
    "ERROR_GEN_ERR",
]

SNMP_VERSION_1 = 0

TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_SEQUENCE = 0x30
TAG_GET_REQUEST = 0xA0
TAG_GET_NEXT_REQUEST = 0xA1
TAG_GET_RESPONSE = 0xA2
TAG_SET_REQUEST = 0xA3
TAG_GET_BULK_REQUEST = 0xA5  # SNMPv2 GetBulk (error fields reinterpreted)
TAG_TRAP_V2 = 0xA7  # SNMPv2-Trap-PDU structure (same body as requests)

ERROR_NONE = 0
ERROR_TOO_BIG = 1
ERROR_NO_SUCH_NAME = 2
ERROR_BAD_VALUE = 3
ERROR_GEN_ERR = 5

VarBind = tuple[Oid, Any]


@dataclass
class _Pdu:
    request_id: int
    varbinds: list[VarBind] = field(default_factory=list)
    error_status: int = ERROR_NONE
    error_index: int = 0
    community: str = "public"

    TAG = TAG_GET_REQUEST  # overridden


class GetRequest(_Pdu):
    """Read the values bound to the requested OIDs."""

    TAG = TAG_GET_REQUEST


class GetNextRequest(_Pdu):
    """Read the lexicographically next OID after each requested one."""

    TAG = TAG_GET_NEXT_REQUEST


class GetResponse(_Pdu):
    """Agent reply carrying varbinds and an error status/index."""

    TAG = TAG_GET_RESPONSE


class SetRequest(_Pdu):
    """Write values to writable OIDs."""

    TAG = TAG_SET_REQUEST


class TrapV2(_Pdu):
    """Unsolicited notification (SNMPv2c trap layout)."""

    TAG = TAG_TRAP_V2


class GetBulkRequest(_Pdu):
    """SNMPv2 GetBulk: ``error_status`` carries non-repeaters and
    ``error_index`` max-repetitions (exactly RFC 1905's reuse of the
    fields).  Convenience properties expose the real names."""

    TAG = TAG_GET_BULK_REQUEST

    @property
    def non_repeaters(self) -> int:
        return self.error_status

    @property
    def max_repetitions(self) -> int:
        return self.error_index


_PDU_BY_TAG = {
    TAG_GET_REQUEST: GetRequest,
    TAG_GET_NEXT_REQUEST: GetNextRequest,
    TAG_GET_RESPONSE: GetResponse,
    TAG_SET_REQUEST: SetRequest,
    TAG_GET_BULK_REQUEST: GetBulkRequest,
    TAG_TRAP_V2: TrapV2,
}


# --------------------------------------------------------------------- encode --


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    payload = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(payload)]) + payload


def _tlv(tag: int, content: bytes) -> bytes:
    return bytes([tag]) + _encode_length(len(content)) + content


def _encode_integer(value: int) -> bytes:
    if value == 0:
        return _tlv(TAG_INTEGER, b"\x00")
    length = (value.bit_length() + 8) // 8  # +1 bit for the sign
    return _tlv(TAG_INTEGER, value.to_bytes(length, "big", signed=True))


def _encode_oid(oid: Oid) -> bytes:
    parts = oid.parts
    out = bytearray([parts[0] * 40 + parts[1]])
    for sub in parts[2:]:
        chunk = bytearray([sub & 0x7F])
        sub >>= 7
        while sub:
            chunk.insert(0, 0x80 | (sub & 0x7F))
            sub >>= 7
        out.extend(chunk)
    return _tlv(TAG_OID, bytes(out))


def _encode_value(value: Any) -> bytes:
    if value is None:
        return _tlv(TAG_NULL, b"")
    if isinstance(value, bool):
        return _encode_integer(int(value))
    if isinstance(value, int):
        return _encode_integer(value)
    if isinstance(value, float):
        # SNMPv1 has no REAL type; agents report scaled integers.
        return _encode_integer(round(value))
    if isinstance(value, str):
        return _tlv(TAG_OCTET_STRING, value.encode("utf-8"))
    if isinstance(value, bytes):
        return _tlv(TAG_OCTET_STRING, value)
    if isinstance(value, Oid):
        return _encode_oid(value)
    raise CodecError(f"cannot encode value of type {type(value).__name__}")


def encode_message(pdu: _Pdu) -> bytes:
    """Encode a full SNMPv1 message: Sequence(version, community, PDU)."""
    varbind_bytes = b"".join(
        _tlv(TAG_SEQUENCE, _encode_oid(Oid(oid)) + _encode_value(value))
        for oid, value in pdu.varbinds
    )
    pdu_bytes = _tlv(
        pdu.TAG,
        _encode_integer(pdu.request_id)
        + _encode_integer(pdu.error_status)
        + _encode_integer(pdu.error_index)
        + _tlv(TAG_SEQUENCE, varbind_bytes),
    )
    return _tlv(
        TAG_SEQUENCE,
        _encode_integer(SNMP_VERSION_1)
        + _tlv(TAG_OCTET_STRING, pdu.community.encode("utf-8"))
        + pdu_bytes,
    )


# --------------------------------------------------------------------- decode --


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def byte(self) -> int:
        if self.eof():
            raise CodecError("truncated message")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def read(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CodecError("truncated content")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def tlv(self) -> tuple[int, bytes]:
        tag = self.byte()
        first = self.byte()
        if first < 0x80:
            length = first
        else:
            n_bytes = first & 0x7F
            if n_bytes == 0 or n_bytes > 4:
                raise CodecError(f"unsupported length-of-length {n_bytes}")
            length = int.from_bytes(self.read(n_bytes), "big")
        return tag, self.read(length)


def _decode_integer(content: bytes) -> int:
    if not content:
        raise CodecError("empty INTEGER")
    return int.from_bytes(content, "big", signed=True)


def _decode_oid(content: bytes) -> Oid:
    if not content:
        raise CodecError("empty OID")
    first = content[0]
    parts = [min(first // 40, 2), first - 40 * min(first // 40, 2)]
    sub = 0
    for byte in content[1:]:
        sub = (sub << 7) | (byte & 0x7F)
        if not byte & 0x80:
            parts.append(sub)
            sub = 0
    if sub:
        raise CodecError("OID subidentifier not terminated")
    return Oid(parts)


def _decode_value(tag: int, content: bytes) -> Any:
    if tag == TAG_NULL:
        return None
    if tag == TAG_INTEGER:
        return _decode_integer(content)
    if tag == TAG_OCTET_STRING:
        try:
            return content.decode("utf-8")
        except UnicodeDecodeError:
            return content
    if tag == TAG_OID:
        return _decode_oid(content)
    raise CodecError(f"unexpected value tag 0x{tag:02x}")


def decode_message(data: bytes) -> _Pdu:
    """Decode bytes produced by :func:`encode_message`."""
    outer_tag, outer = _Reader(data).tlv()
    if outer_tag != TAG_SEQUENCE:
        raise CodecError(f"message must be a SEQUENCE, got 0x{outer_tag:02x}")
    reader = _Reader(outer)

    tag, content = reader.tlv()
    if tag != TAG_INTEGER or _decode_integer(content) != SNMP_VERSION_1:
        raise CodecError("unsupported SNMP version")
    tag, content = reader.tlv()
    if tag != TAG_OCTET_STRING:
        raise CodecError("community must be OCTET STRING")
    community = content.decode("utf-8")

    pdu_tag, pdu_content = reader.tlv()
    pdu_class = _PDU_BY_TAG.get(pdu_tag)
    if pdu_class is None:
        raise CodecError(f"unknown PDU tag 0x{pdu_tag:02x}")
    pdu_reader = _Reader(pdu_content)
    tag, content = pdu_reader.tlv()
    request_id = _decode_integer(content)
    tag, content = pdu_reader.tlv()
    error_status = _decode_integer(content)
    tag, content = pdu_reader.tlv()
    error_index = _decode_integer(content)
    tag, varbind_content = pdu_reader.tlv()
    if tag != TAG_SEQUENCE:
        raise CodecError("varbind list must be a SEQUENCE")

    varbinds: list[VarBind] = []
    vb_reader = _Reader(varbind_content)
    while not vb_reader.eof():
        tag, vb = vb_reader.tlv()
        if tag != TAG_SEQUENCE:
            raise CodecError("varbind must be a SEQUENCE")
        inner = _Reader(vb)
        oid_tag, oid_content = inner.tlv()
        if oid_tag != TAG_OID:
            raise CodecError("varbind name must be an OID")
        value_tag, value_content = inner.tlv()
        varbinds.append(
            (_decode_oid(oid_content), _decode_value(value_tag, value_content))
        )

    pdu = pdu_class(
        request_id=request_id,
        varbinds=varbinds,
        error_status=error_status,
        error_index=error_index,
        community=community,
    )
    return pdu
