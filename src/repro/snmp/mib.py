"""Management information base.

A sorted map from :class:`Oid` to value providers.  Providers may be plain
values or zero-argument callables (sampled at query time), which is how
the CPU model exposes live utilization without coupling to SNMP.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Optional, Union

from repro.errors import NoSuchOidError
from repro.snmp.oid import Oid

__all__ = ["Mib", "HOST_RESOURCES"]

Provider = Union[Any, Callable[[], Any]]


class HOST_RESOURCES:
    """Well-known OIDs used by the monitoring agent (RFC 1514 flavour)."""

    SYS_DESCR = Oid("1.3.6.1.2.1.1.1.0")
    SYS_UPTIME = Oid("1.3.6.1.2.1.1.3.0")
    SYS_NAME = Oid("1.3.6.1.2.1.1.5.0")
    #: average CPU load (%) over the last minute, per processor
    HR_PROCESSOR_LOAD = Oid("1.3.6.1.2.1.25.3.3.1.2.1")
    HR_MEMORY_SIZE_KB = Oid("1.3.6.1.2.1.25.2.2.0")
    HR_STORAGE_USED_KB = Oid("1.3.6.1.2.1.25.2.3.1.6.1")
    #: enterprise extension: CPU load excluding the framework's own worker
    #: process — what the inference engine actually polls (see DESIGN.md §5)
    EXTERNAL_LOAD = Oid("1.3.6.1.4.1.20010.1.1.0")
    #: enterprise extension: instantaneous total CPU (%), plotted in Figs 9-11
    TOTAL_LOAD = Oid("1.3.6.1.4.1.20010.1.2.0")


class Mib:
    """Sorted OID→provider map with GET/GETNEXT/SET access."""

    def __init__(self) -> None:
        self._providers: dict[Oid, Provider] = {}
        self._sorted: list[Oid] = []
        self._writable: set[Oid] = set()

    def register(self, oid: Oid, provider: Provider, writable: bool = False) -> None:
        """Bind ``oid`` to a value or callable; re-registering replaces."""
        oid = Oid(oid)
        if oid not in self._providers:
            bisect.insort(self._sorted, oid)
        self._providers[oid] = provider
        if writable:
            self._writable.add(oid)

    def unregister(self, oid: Oid) -> None:
        oid = Oid(oid)
        if oid in self._providers:
            del self._providers[oid]
            self._sorted.remove(oid)
            self._writable.discard(oid)

    def get(self, oid: Oid) -> Any:
        provider = self._providers.get(Oid(oid))
        if provider is None:
            raise NoSuchOidError(str(oid))
        return provider() if callable(provider) else provider

    def get_next(self, oid: Oid) -> tuple[Oid, Any]:
        """First bound OID strictly after ``oid`` (lexicographic walk)."""
        index = bisect.bisect_right(self._sorted, Oid(oid))
        if index >= len(self._sorted):
            raise NoSuchOidError(f"end of MIB after {oid}")
        next_oid = self._sorted[index]
        return next_oid, self.get(next_oid)

    def set(self, oid: Oid, value: Any) -> None:
        oid = Oid(oid)
        if oid not in self._providers:
            raise NoSuchOidError(str(oid))
        if oid not in self._writable:
            raise NoSuchOidError(f"{oid} is read-only")
        self._providers[oid] = value

    def oids(self) -> list[Oid]:
        return list(self._sorted)

    def __contains__(self, oid: Oid) -> bool:
        return Oid(oid) in self._providers

    def __len__(self) -> int:
        return len(self._sorted)
