"""Network addresses."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Address:
    """A (host, port) endpoint on the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    def with_port(self, port: int) -> "Address":
        return Address(self.host, port)
