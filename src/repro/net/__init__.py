"""Simulated network substrate.

Provides the three transports the paper's framework uses:

* datagram sockets (SNMP request/response),
* multicast groups (Jini discovery announcements),
* stream sockets (the rule-base protocol between the network management
  module and the SNMP clients on workers — "Java sockets" in the paper).

All payloads are pickled across the wire, which (a) enforces the
JavaSpaces-style serializability requirement, (b) yields message sizes for
the latency model, and (c) isolates endpoints from shared mutable state
exactly like a real network would.
"""

from repro.net.address import Address
from repro.net.latency import LatencyModel
from repro.net.network import (
    ChaosProfile,
    DatagramSocket,
    Listener,
    MessageQueue,
    Network,
    StreamSocket,
)

__all__ = [
    "Address",
    "ChaosProfile",
    "LatencyModel",
    "Network",
    "DatagramSocket",
    "StreamSocket",
    "Listener",
    "MessageQueue",
]
