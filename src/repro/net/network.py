"""The simulated network: datagram, multicast and stream transports.

Endpoints exchange *pickled* payloads; delivery is scheduled through the
runtime's ``call_later`` after the latency model's delay, so the same code
works under virtual and wall-clock time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.errors import (
    AddressInUseError,
    ConnectionClosedError,
    ConnectionRefusedError_,
    NetworkError,
)
from repro.net.address import Address
from repro.net.latency import LatencyModel
from repro.runtime.base import Runtime
from repro.util.serialization import deserialize, serialize

__all__ = ["ChaosProfile", "Network", "DatagramSocket", "StreamSocket", "Listener",
           "MessageQueue"]


@dataclass(frozen=True)
class ChaosProfile:
    """Probabilistic misbehaviour layered on top of the latency model.

    Datagrams are dropped silently (UDP semantics).  Streams are reliable
    by contract, so a "dropped" stream message models a segment lost past
    the retry budget: the connection is reset and both endpoints observe
    :class:`ConnectionClosedError` — which is what a flaky link looks like
    to a TCP application.  Extra delay is exponential with mean
    ``extra_delay_ms``, applied with probability ``delay_probability``.
    """

    datagram_drop: float = 0.0
    stream_drop: float = 0.0
    extra_delay_ms: float = 0.0
    delay_probability: float = 1.0


class MessageQueue:
    """Blocking FIFO over a runtime condition; supports close semantics."""

    def __init__(self, runtime: Runtime) -> None:
        self._runtime = runtime
        self._cond = runtime.condition()
        self._items: deque[Any] = deque()
        self.closed = False

    def put(self, item: Any) -> None:
        with self._cond:
            if self.closed:
                return
            self._items.append(item)
            self._cond.notify_all()

    def get(self, timeout_ms: Optional[float] = None) -> Any:
        """Pop the oldest item; blocks up to ``timeout_ms``.

        Returns ``None`` on timeout; raises :class:`ConnectionClosedError`
        when the queue is closed and drained.
        """
        with self._cond:
            ok = self._runtime.wait_for(
                self._cond, lambda: bool(self._items) or self.closed, timeout_ms
            )
            if self._items:
                return self._items.popleft()
            if self.closed:
                raise ConnectionClosedError("endpoint closed")
            if not ok:
                return None
            return None  # pragma: no cover - defensive

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        return len(self._items)


class DatagramSocket:
    """Connectionless endpoint (UDP-like; used by SNMP and discovery)."""

    def __init__(self, network: "Network", address: Address) -> None:
        self._network = network
        self.address = address
        self._queue = MessageQueue(network.runtime)

    def send_to(self, destination: Address, payload: Any) -> None:
        self._network._send_datagram(self.address, destination, payload)

    def receive(self, timeout_ms: Optional[float] = None) -> Optional[tuple[Any, Address]]:
        """Return ``(payload, sender)`` or ``None`` on timeout."""
        return self._queue.get(timeout_ms)

    def close(self) -> None:
        self._queue.close()
        self._network._unbind_datagram(self.address)

    def _deliver(self, payload_bytes: bytes, sender: Address) -> None:
        self._queue.put((deserialize(payload_bytes), sender))


class StreamSocket:
    """One side of a reliable, ordered, message-oriented connection.

    Ordering is enforced twice over: arrival times are kept monotonic per
    receiver (virtual-time determinism), and messages carry sequence
    numbers reassembled in a reorder buffer (real ``threading.Timer``
    callbacks on the threaded runtime can fire out of order).
    """

    def __init__(self, network: "Network", local: Address, remote: Address) -> None:
        self._network = network
        self.local = local
        self.remote = remote
        self._queue = MessageQueue(network.runtime)
        self._peer: Optional["StreamSocket"] = None
        self.closed = False
        self._last_arrival = 0.0   # enforces FIFO delivery despite jitter
        self._seq_lock = network.runtime.lock()
        self._next_seq = 0         # stamped by senders targeting this socket
        self._expected_seq = 0     # next sequence to release to the queue
        self._reorder: dict[int, Optional[bytes]] = {}

    def send(self, payload: Any) -> None:
        if self.closed:
            raise ConnectionClosedError("socket closed")
        peer = self._peer
        if peer is None:
            raise NetworkError("socket not connected")
        self._network._send_stream(self, peer, payload)

    def receive(self, timeout_ms: Optional[float] = None) -> Any:
        """Return the next message, ``None`` on timeout.

        Raises :class:`ConnectionClosedError` once the peer closed and the
        queue drained.
        """
        return self._queue.get(timeout_ms)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        peer = self._peer
        if peer is not None and not peer.closed:
            # Propagate EOF after network delay, never overtaking data
            # already in flight (same FIFO rule as _send_stream).
            now = self._network.runtime.now()
            arrival = max(now + self._network.latency.base_ms, peer._last_arrival)
            peer._last_arrival = arrival
            seq = peer._alloc_seq()
            network = self._network
            network.runtime.call_later(
                arrival - now,
                lambda: network._run_or_hold(
                    self.local.host, peer.local.host,
                    lambda: peer._deliver(None, seq)),
            )
        self._queue.close()

    def _alloc_seq(self) -> int:
        with self._seq_lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def _deliver(self, payload_bytes: Optional[bytes], seq: int) -> None:
        """Release in sequence order; ``None`` payload is the EOF marker."""
        with self._seq_lock:
            self._reorder[seq] = payload_bytes
            ready: list[Optional[bytes]] = []
            while self._expected_seq in self._reorder:
                ready.append(self._reorder.pop(self._expected_seq))
                self._expected_seq += 1
        for data in ready:
            if data is None:
                self._queue.close()
            else:
                self._queue.put(deserialize(data))


class Listener:
    """Passive stream endpoint: accepts incoming connections."""

    def __init__(self, network: "Network", address: Address) -> None:
        self._network = network
        self.address = address
        self._pending = MessageQueue(network.runtime)

    def accept(self, timeout_ms: Optional[float] = None) -> Optional[StreamSocket]:
        return self._pending.get(timeout_ms)

    def close(self) -> None:
        self._pending.close()
        self._network._unbind_listener(self.address)


class Network:
    """A shared network segment connecting all endpoints of one experiment."""

    def __init__(
        self,
        runtime: Runtime,
        latency: LatencyModel = LatencyModel(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.runtime = runtime
        self.latency = latency
        self._rng = rng
        self._datagram: dict[Address, DatagramSocket] = {}
        self._listeners: dict[Address, Listener] = {}
        self._multicast: dict[Address, set[DatagramSocket]] = {}
        self._egress_free_at: dict[str, float] = {}  # bandwidth contention
        self._isolated: set[str] = set()             # partitioned hosts
        self._blocked: set[tuple[str, str]] = set()  # directed (src, dst) cuts
        self._paused: set[str] = set()               # stalled hosts
        self._held: dict[str, list] = {}             # per-host held deliveries
        self._slow: dict[str, float] = {}            # gray-failure multipliers
        self._chaos: Optional[ChaosProfile] = None
        self._chaos_rng: Optional[np.random.Generator] = None
        self._ephemeral_port = 49152
        self.stats = {"datagrams": 0, "datagram_bytes": 0, "messages": 0, "message_bytes": 0,
                      "dropped": 0, "partition_dropped": 0, "resets": 0}

    # -- fault injection ----------------------------------------------------------

    def set_chaos(self, profile: ChaosProfile,
                  rng: Optional[np.random.Generator] = None) -> None:
        """Enable probabilistic drop/delay injection.

        ``rng`` should be a dedicated seeded stream (e.g.
        ``RandomStreams.stream("chaos")``) so enabling chaos never perturbs
        the draws of the baseline latency model.
        """
        self._chaos = profile
        if rng is not None:
            self._chaos_rng = rng

    def clear_chaos(self) -> None:
        self._chaos = None

    def _chaos_drops(self, probability: float) -> bool:
        if self._chaos is None or probability <= 0.0 or self._chaos_rng is None:
            return False
        return bool(self._chaos_rng.random() < probability)

    def _chaos_delay_ms(self) -> float:
        chaos = self._chaos
        if chaos is None or chaos.extra_delay_ms <= 0.0 or self._chaos_rng is None:
            return 0.0
        if chaos.delay_probability < 1.0 and \
                self._chaos_rng.random() >= chaos.delay_probability:
            return 0.0
        return float(self._chaos_rng.exponential(chaos.extra_delay_ms))

    def _reset_stream(self, a: "StreamSocket", b: "StreamSocket") -> None:
        """Tear down both endpoints at once (TCP reset, not graceful EOF)."""
        self.stats["resets"] += 1
        for sock in (a, b):
            if not sock.closed:
                sock.closed = True
                sock._queue.close()

    def isolate(self, host: str) -> None:
        """Partition ``host`` off the segment: all its traffic (both
        directions) silently disappears until :meth:`heal`.  Established
        stream sockets stay open but their messages never arrive —
        exactly how a yanked cable looks to the endpoints."""
        self._isolated.add(host)

    def heal(self, host: str) -> None:
        self._isolated.discard(host)

    def is_isolated(self, host: str) -> bool:
        return host in self._isolated

    def partition(self, src: str, dst: str) -> None:
        """Cut the *directed* link ``src → dst``: traffic that way vanishes,
        replies the other way still flow — the asymmetric partition that
        turns naive failure detectors into split-brain generators.  Use
        :meth:`partition_pair` for the symmetric cut.  Either side may be
        the wildcard ``"*"`` (``partition(h, "*")`` = h's egress dies).
        Loopback (same-host) traffic is never partitioned — a dead NIC
        does not cut a host off from itself."""
        self._blocked.add((src, dst))

    def partition_pair(self, a: str, b: str) -> None:
        """Cut both directions between ``a`` and ``b`` (symmetric partial
        partition — the rest of the segment still sees both hosts)."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def heal_partition(self, a: str, b: str) -> None:
        """Restore both directions between ``a`` and ``b``."""
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    def heal_all_partitions(self) -> None:
        self._blocked.clear()
        self._isolated.clear()

    def is_partitioned(self, src: str, dst: str) -> bool:
        return self._partitioned(src, dst)

    def pause(self, host: str) -> None:
        """Stall ``host``: every delivery to or from it is *held* (not
        dropped) until :meth:`resume` releases the backlog in arrival
        order.  Models a GC pause / SIGSTOP — heartbeats go unanswered,
        but no state is lost and the mail all arrives late."""
        self._paused.add(host)

    def resume(self, host: str) -> None:
        """Un-stall ``host`` and flush its held deliveries in order."""
        self._paused.discard(host)
        for sender_host, receiver_host, fn in self._held.pop(host, []):
            self._run_or_hold(sender_host, receiver_host, fn)

    def is_paused(self, host: str) -> bool:
        return host in self._paused

    def slow(self, host: str, factor: float) -> None:
        """Gray failure: multiply every delay touching ``host`` by
        ``factor``.  Nothing fails outright — the host is just N× slower
        on the wire, the failure mode detectors are worst at."""
        self._slow[host] = factor

    def heal_slow(self, host: str) -> None:
        self._slow.pop(host, None)

    def heal_all_slow(self) -> None:
        self._slow.clear()

    def resume_all(self) -> None:
        for host in list(self._paused):
            self.resume(host)

    def _slow_factor(self, a: str, b: str) -> float:
        return max(self._slow.get(a, 1.0), self._slow.get(b, 1.0))

    def _partitioned(self, a: str, b: str) -> bool:
        if a == b:
            return False  # loopback survives any partition
        if a in self._isolated or b in self._isolated:
            return True
        blocked = self._blocked
        return ((a, b) in blocked or (a, "*") in blocked
                or ("*", b) in blocked)

    def _run_or_hold(self, sender_host: str, receiver_host: str, fn) -> None:
        """Deliver now, unless either endpoint is paused — then park the
        delivery on the paused host's hold queue (receiver first, so a
        both-paused message re-holds correctly on partial resume)."""
        if receiver_host in self._paused:
            self._held.setdefault(receiver_host, []).append(
                (sender_host, receiver_host, fn))
            return
        if sender_host in self._paused:
            self._held.setdefault(sender_host, []).append(
                (sender_host, receiver_host, fn))
            return
        fn()

    def _egress_delay(self, host: str, size_bytes: int) -> float:
        """Extra delay from the sender's serial egress link (if modelled).

        Messages from one host transmit back-to-back: each send occupies
        the link for ``transmission_ms`` starting when the link frees up.
        """
        tx = self.latency.transmission_ms(size_bytes)
        if tx <= 0.0:
            return 0.0
        now = self.runtime.now()
        start = max(now, self._egress_free_at.get(host, 0.0))
        self._egress_free_at[host] = start + tx
        return (start + tx) - now

    # -- ports ------------------------------------------------------------------

    def ephemeral(self, host: str) -> Address:
        """Allocate a fresh ephemeral address on ``host``."""
        self._ephemeral_port += 1
        return Address(host, self._ephemeral_port)

    # -- datagram ---------------------------------------------------------------

    def bind_datagram(self, address: Address) -> DatagramSocket:
        if address in self._datagram:
            raise AddressInUseError(f"datagram address in use: {address}")
        sock = DatagramSocket(self, address)
        self._datagram[address] = sock
        return sock

    def _unbind_datagram(self, address: Address) -> None:
        self._datagram.pop(address, None)

    def _send_datagram(self, source: Address, destination: Address, payload: Any) -> None:
        data = serialize(payload)
        self.stats["datagrams"] += 1
        self.stats["datagram_bytes"] += len(data)
        if destination in self._multicast:
            members = list(self._multicast[destination])
            for member in members:
                if self._partitioned(source.host, member.address.host):
                    self.stats["dropped"] += 1
                    self.stats["partition_dropped"] += 1
                    continue
                self._schedule_datagram(data, source, member)
            return
        if self._partitioned(source.host, destination.host):
            self.stats["dropped"] += 1
            self.stats["partition_dropped"] += 1
            return
        if self.latency.drops(self._rng):
            self.stats["dropped"] += 1
            return
        target = self._datagram.get(destination)
        if target is None:
            return  # UDP: silently dropped
        self._schedule_datagram(data, source, target)

    def _schedule_datagram(self, data: bytes, source: Address, target: DatagramSocket) -> None:
        if self._chaos is not None and self._chaos_drops(self._chaos.datagram_drop):
            self.stats["dropped"] += 1
            return
        delay = self.latency.delay_ms(len(data), self._rng)
        delay += self._egress_delay(source.host, len(data))
        delay += self._chaos_delay_ms()
        delay *= self._slow_factor(source.host, target.address.host)
        self.runtime.call_later(
            delay,
            lambda: self._run_or_hold(source.host, target.address.host,
                                      lambda: target._deliver(data, source)),
        )

    # -- multicast ----------------------------------------------------------------

    def join_multicast(self, group: Address, socket: DatagramSocket) -> None:
        """Subscribe ``socket`` to datagrams addressed to ``group``."""
        self._multicast.setdefault(group, set()).add(socket)

    def leave_multicast(self, group: Address, socket: DatagramSocket) -> None:
        self._multicast.get(group, set()).discard(socket)

    # -- stream -------------------------------------------------------------------

    def listen(self, address: Address) -> Listener:
        if address in self._listeners:
            raise AddressInUseError(f"listener address in use: {address}")
        listener = Listener(self, address)
        self._listeners[address] = listener
        return listener

    def _unbind_listener(self, address: Address) -> None:
        self._listeners.pop(address, None)

    def connect(self, source_host: str, destination: Address) -> StreamSocket:
        """Open a connection to a listener; raises if nobody listens."""
        if self._partitioned(source_host, destination.host):
            raise ConnectionRefusedError_(
                f"host unreachable (partitioned): {destination}"
            )
        listener = self._listeners.get(destination)
        if listener is None:
            raise ConnectionRefusedError_(f"connection refused: {destination}")
        local = self.ephemeral(source_host)
        client = StreamSocket(self, local, destination)
        server = StreamSocket(self, destination, local)
        client._peer = server
        server._peer = client
        listener._pending.put(server)
        return client

    def _send_stream(self, sender: StreamSocket, receiver: StreamSocket, payload: Any) -> None:
        data = serialize(payload)
        self.stats["messages"] += 1
        self.stats["message_bytes"] += len(data)
        if self._partitioned(sender.local.host, receiver.local.host):
            self.stats["dropped"] += 1
            self.stats["partition_dropped"] += 1
            return  # vanishes on the wire; the receiver just waits
        if self._chaos is not None and self._chaos_drops(self._chaos.stream_drop):
            # A reliable stream that loses a segment for good is a dead
            # connection: reset both endpoints after the one-way delay.
            # (No sequence number is allocated, so the reorder buffer of
            # messages already in flight is not poisoned.)
            self.stats["dropped"] += 1
            self.runtime.call_later(
                self.latency.base_ms,
                lambda: self._reset_stream(sender, receiver),
            )
            return
        now = self.runtime.now()
        delay = self.latency.delay_ms(len(data), self._rng)
        delay += self._egress_delay(sender.local.host, len(data))
        delay += self._chaos_delay_ms()
        delay *= self._slow_factor(sender.local.host, receiver.local.host)
        # Reliable ordered delivery: never deliver before an earlier message.
        arrival = max(now + delay, receiver._last_arrival)
        receiver._last_arrival = arrival
        seq = receiver._alloc_seq()
        self.runtime.call_later(
            arrival - now,
            lambda: self._run_or_hold(sender.local.host, receiver.local.host,
                                      lambda: receiver._deliver(data, seq)),
        )
