"""Network latency / loss model.

A simple affine model suited to the paper's 100 Mb/s LAN setting:
``delay = base + jitter·U(0,1) + per_kb · size/1024``.  Loss applies to
datagrams only (streams are reliable, as TCP is).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LatencyModel:
    base_ms: float = 0.3
    jitter_ms: float = 0.1
    per_kb_ms: float = 0.08
    loss_probability: float = 0.0
    #: When set, each host's egress is a serial link of this capacity:
    #: concurrent sends from one host queue behind each other.  ``None``
    #: keeps the simple affine model (no contention).
    egress_kb_per_ms: Optional[float] = None

    def transmission_ms(self, size_bytes: int) -> float:
        """Time the egress link is occupied by this message."""
        if self.egress_kb_per_ms is None:
            return 0.0
        return (size_bytes / 1024.0) / self.egress_kb_per_ms

    def delay_ms(self, size_bytes: int, rng: Optional[np.random.Generator] = None) -> float:
        jitter = 0.0
        if self.jitter_ms > 0.0 and rng is not None:
            jitter = self.jitter_ms * float(rng.random())
        return self.base_ms + jitter + self.per_kb_ms * (size_bytes / 1024.0)

    def drops(self, rng: Optional[np.random.Generator] = None) -> bool:
        if self.loss_probability <= 0.0 or rng is None:
            return False
        return bool(rng.random() < self.loss_probability)


#: Zero-latency, lossless model for unit tests.
IDEAL = LatencyModel(base_ms=0.0, jitter_ms=0.0, per_kb_ms=0.0, loss_probability=0.0)
